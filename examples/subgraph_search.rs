//! Pattern-search scenario: subgraph isomorphism on a labeled target
//! (the §8.5 setup, scaled to laptop size), comparing the §6.4
//! optimizations — work splitting, work stealing, galloping
//! membership, candidate precompute.
//!
//! ```sh
//! cargo run --release --example subgraph_search
//! ```

use gms::matching::{
    count_embeddings, count_embeddings_parallel, IsoMode, IsoOptions, LabeledGraph,
    ParallelIsoConfig,
};
use std::time::Instant;

fn main() {
    // Labeled ER target (the original uses n=10000, p=0.2 on a 36-core
    // server; we scale to laptop size, preserving density and labels).
    let target = LabeledGraph::random_labels(gms::gen::gnp(250, 0.2, 5), 5, 5);
    // Induced query sampled from the target, so embeddings exist.
    let query = target.induced(&[3, 57, 101, 200, 211, 17]);
    println!(
        "target: n={}, labels=5; query: n={}",
        target.num_vertices(),
        query.num_vertices()
    );

    let t = Instant::now();
    let options = IsoOptions {
        mode: IsoMode::Induced,
        ..IsoOptions::default()
    };
    let expected = count_embeddings(&query, &target, &options);
    println!(
        "sequential VF2: {} embeddings in {:.2?}\n",
        expected,
        t.elapsed()
    );

    println!(
        "{:<34} {:>10} {:>12}",
        "configuration", "embeddings", "time"
    );
    let configs: [(&str, ParallelIsoConfig); 4] = [
        (
            "1 thread (baseline)",
            ParallelIsoConfig {
                threads: 1,
                work_stealing: false,
                options,
            },
        ),
        (
            "4 threads, work splitting",
            ParallelIsoConfig {
                threads: 4,
                work_stealing: false,
                options,
            },
        ),
        (
            "4 threads, + work stealing",
            ParallelIsoConfig {
                threads: 4,
                work_stealing: true,
                options,
            },
        ),
        (
            "4 threads, stealing, no precompute",
            ParallelIsoConfig {
                threads: 4,
                work_stealing: true,
                options: IsoOptions {
                    precompute: false,
                    ..options
                },
            },
        ),
    ];
    for (label, config) in configs {
        let t = Instant::now();
        let found = count_embeddings_parallel(&query, &target, &config);
        println!("{label:<34} {found:>10} {:>12.2?}", t.elapsed());
        assert_eq!(found, expected, "all drivers must agree");
    }
}
