//! Quickstart: generate a graph, characterize it, and mine maximal
//! cliques with every Bron–Kerbosch variant in the suite.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gms::prelude::*;

fn main() {
    // 1. Input: a social-network stand-in — sparse background with
    //    planted 9-cliques (high T-skew, the regime where the paper's
    //    BK variants shine).
    let (graph, planted) = gms::gen::planted_cliques(2_000, 0.004, 5, 9, 7);

    // 2. Dataset characterization (Table 7 axes).
    let stats = GraphStats::compute("quickstart", &graph);
    println!("{}", GraphStats::header());
    println!("{}", stats.row());
    println!(
        "T-skew (max/avg per-vertex triangles): {:.1}\n",
        stats.t_skew()
    );

    // 3. Maximal clique listing, all five variants (Fig. 4 shape).
    println!(
        "{:<14} {:>9} {:>8} {:>12} {:>12} {:>14}",
        "variant", "cliques", "largest", "preprocess", "mine", "cliques/s"
    );
    for variant in BkVariant::ALL {
        let outcome = variant.run(&graph);
        println!(
            "{:<14} {:>9} {:>8} {:>10.2?} {:>10.2?} {:>14.0}",
            variant.label(),
            outcome.clique_count,
            outcome.largest,
            outcome.preprocess,
            outcome.mine,
            outcome.throughput(),
        );
        assert!(outcome.largest >= 9, "planted 9-cliques must be found");
    }
    println!(
        "\nplanted {} cliques of size 9 — all recovered",
        planted.len()
    );

    // 4. The same graph through the k-clique kernel (Fig. 5 shape).
    println!("\nk-clique counts (edge-parallel, ADG order):");
    for k in 3..=6 {
        let outcome = k_clique_count(&graph, k, &KcConfig::default());
        println!(
            "  k={k}: {:>10} cliques  ({:.0}/s)",
            outcome.count,
            outcome.throughput()
        );
    }
}
