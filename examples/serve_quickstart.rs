//! Serving quick start: boot a `gms-serve` instance in-process, ship
//! a graph over the wire, mine it by name, watch the shared result
//! cache work, and shut the server down gracefully.
//!
//! ```sh
//! cargo run --example serve_quickstart
//! ```
//!
//! The same protocol works against a standalone server
//! (`cargo run --release -p gms-serve`), from any language that can
//! write one JSON object per line to a TCP socket.

use gms::serve::{Client, Json, ServeConfig, Server};

fn main() -> std::io::Result<()> {
    // An ephemeral-port server: two worker sessions sharing one
    // result cache behind a 16-deep admission queue.
    let handle = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    println!("serving on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;

    // Ship a clique-rich social graph inline as an edge list.
    let (graph, _) = gms::gen::planted_cliques(400, 0.01, 3, 7, 42);
    let mut text = Vec::new();
    gms::graph::io::write_edge_list(&graph, &mut text)?;
    let loaded = client.load_inline("social", "edge-list", std::str::from_utf8(&text).unwrap())?;
    println!(
        "loaded {} vertices / {} edges, fingerprint {}",
        loaded.get("vertices").and_then(Json::as_i64).unwrap(),
        loaded.get("edges").and_then(Json::as_i64).unwrap(),
        loaded.get("fingerprint").and_then(Json::as_str).unwrap(),
    );

    // Mine it by kernel name with typed parameters.
    let cliques = client.run("bk-gms-adg", "social", &[])?;
    println!(
        "bk-gms-adg: {} maximal cliques in {:.2} ms",
        cliques.get("patterns").and_then(Json::as_i64).unwrap(),
        cliques.get("kernel_ms").and_then(Json::as_f64).unwrap(),
    );

    // The identical request again is a cache hit: zero kernel time.
    let again = client.run("bk-gms-adg", "social", &[])?;
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)));

    // k-clique with a parameter override.
    let k4 = client.run("k-clique", "social", &[("k", Json::Int(4))])?;
    println!(
        "k-clique(k=4): {} cliques",
        k4.get("patterns").and_then(Json::as_i64).unwrap()
    );

    // The stats endpoint exposes the shared cache's counters.
    let stats = client.stats()?;
    let cache = stats.get("cache").unwrap();
    println!(
        "cache: {} hits / {} misses, {} entries",
        cache.get("hits").and_then(Json::as_i64).unwrap(),
        cache.get("misses").and_then(Json::as_i64).unwrap(),
        cache.get("entries").and_then(Json::as_i64).unwrap(),
    );

    // Graceful shutdown over the wire; join waits for the drain.
    client.shutdown()?;
    handle.join();
    println!("server shut down cleanly");
    Ok(())
}
