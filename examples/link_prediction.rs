//! Graph-learning scenario: vertex similarity, link prediction and
//! community detection on a graph with planted community structure —
//! the §6.5/§6.7 pipeline end to end.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use gms::learn::{
    evaluate_accuracy, jarvis_patrick, label_propagation, louvain, modularity, rand_index,
    JarvisPatrickConfig,
};
use gms::prelude::*;

fn main() {
    // A planted-partition graph: 6 communities, dense inside.
    let (graph, truth) = gms::gen::planted_partition(600, 6, 0.25, 0.004, 11);
    let stats = GraphStats::compute("partition", &graph);
    println!("{}", GraphStats::header());
    println!("{}\n", stats.row());

    // Link prediction accuracy (§6.7): remove 10% of edges, score
    // candidates with each similarity measure, count recovered edges.
    println!("link prediction, eff = |E_predict ∩ E_rndm| (higher is better):");
    for measure in SimilarityMeasure::ALL {
        let (hits, k) = evaluate_accuracy(&graph, measure, 0.1, 3);
        println!(
            "  {:<24} {:>5} / {:<5} ({:>5.1}%)",
            measure.label(),
            hits,
            k,
            100.0 * hits as f64 / k as f64
        );
    }

    // Community detection: Louvain vs Label Propagation vs ground
    // truth, scored by modularity and pair-counting Rand index.
    let lp = label_propagation(&graph, 100);
    let lv = louvain(&graph);
    println!("\ncommunity detection:");
    println!(
        "  {:<18} modularity {:>6.3}   rand-index vs truth {:>6.3}",
        "label propagation",
        modularity(&graph, &lp),
        rand_index(&lp, &truth)
    );
    println!(
        "  {:<18} modularity {:>6.3}   rand-index vs truth {:>6.3}",
        "louvain",
        modularity(&graph, &lv),
        rand_index(&lv, &truth)
    );
    println!(
        "  {:<18} modularity {:>6.3}",
        "ground truth",
        modularity(&graph, &truth)
    );

    // Jarvis–Patrick clustering (§4.1.2) on shared near-neighbors.
    let jp = jarvis_patrick(
        &graph,
        &JarvisPatrickConfig {
            k: 12,
            min_shared: 2,
            measure: SimilarityMeasure::Jaccard,
        },
    );
    println!(
        "\nJarvis-Patrick: {} clusters, rand-index vs truth {:.3}",
        gms::learn::num_clusters(&jp),
        rand_index(&jp, &truth)
    );
}
