//! Frequent-subgraph-mining scenario (§4.1.1): mine all frequent
//! labeled motifs of a protein-interaction-like graph with both
//! exploration strategies, then drill into dense structure with
//! k-truss and densest-subgraph analysis.
//!
//! ```sh
//! cargo run --release --example frequent_motifs
//! ```

use gms::matching::{frequent_subgraphs, ExplorationStrategy, FsmConfig, LabeledGraph};
use gms::pattern::{densest_subgraph, max_truss, truss_decomposition};
use gms::prelude::*;

fn main() {
    // A "protein-interaction-like" graph: clustered topology, few
    // vertex types (labels = protein families).
    let (graph, _) = gms::gen::planted_partition(160, 8, 0.35, 0.01, 13);
    let target = LabeledGraph::random_labels(graph.clone(), 3, 7);
    println!(
        "target: n={}, m={}, 3 labels",
        target.num_vertices(),
        graph.num_edges_undirected()
    );

    // FSM with both exploration strategies (§A: BFS vs DFS).
    for strategy in [ExplorationStrategy::Bfs, ExplorationStrategy::Dfs] {
        let config = FsmConfig {
            min_support: 8,
            max_vertices: 3,
            strategy,
        };
        let start = std::time::Instant::now();
        let frequent = frequent_subgraphs(&target, &config);
        println!(
            "\n{strategy:?}: {} frequent patterns (≤3 vertices, MNI support ≥ 8) in {:.2?}",
            frequent.len(),
            start.elapsed()
        );
        for f in frequent.iter().take(8) {
            let shape = match (f.pattern.num_vertices(), f.pattern.graph.num_arcs() / 2) {
                (1, _) => "vertex",
                (2, _) => "edge",
                (3, 2) => "path",
                (3, 3) => "triangle",
                _ => "pattern",
            };
            println!(
                "  {:<8} labels {:?} support {}",
                shape, f.pattern.labels, f.support
            );
        }
    }

    // Dense-structure drill-down on the unlabeled topology.
    let truss = truss_decomposition(&graph);
    println!("\nmax truss number: {}", max_truss(&graph));
    let mut histogram: std::collections::BTreeMap<u32, usize> = Default::default();
    for &t in truss.values() {
        *histogram.entry(t).or_default() += 1;
    }
    for (k, count) in histogram {
        println!("  truss {k}: {count} edges");
    }

    let densest = densest_subgraph(&graph);
    println!(
        "\ndensest subgraph: {} vertices at density {:.2} (avg degree {:.2})",
        densest.vertices.len(),
        densest.density,
        2.0 * densest.density
    );
}
