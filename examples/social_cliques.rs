//! Social-network scenario: dense-group discovery end to end.
//!
//! The paper motivates graph mining with social analysis — finding
//! tightly-knit groups (cliques, clique-stars, k-cores) in friendship
//! graphs. This example builds a power-law "social" graph, compares
//! orderings, and walks the dense-subgraph toolchain.
//!
//! ```sh
//! cargo run --release --example social_cliques
//! ```

use gms::order::{approx_degeneracy_order, degeneracy_order, k_core_by_peeling};
use gms::pattern::{k_clique_stars, KcConfig};
use gms::prelude::*;

fn main() {
    // A power-law (Kronecker/RMAT) graph: hubs + skewed degrees, the
    // load-balancing stress case of §4.2.
    let graph = gms::gen::kronecker_default(12, 10, 99);
    let stats = GraphStats::compute("kron-12", &graph);
    println!("{}", GraphStats::header());
    println!("{}\n", stats.row());

    // Exact vs approximate degeneracy: the §6.1 trade-off. ADG runs in
    // O(log n) rounds and its order bound stays within (2+ε)·d.
    let exact = degeneracy_order(&graph);
    println!("exact degeneracy d = {}", exact.degeneracy);
    for epsilon in [0.5, 0.1, 0.01] {
        let adg = approx_degeneracy_order(&graph, epsilon);
        println!(
            "ADG(ε={epsilon:<4}) rounds = {:>3}   out-degree bound = {:>3}  (≤ (2+ε)d = {:.0})",
            adg.rounds,
            adg.out_degree_bound,
            (2.0 + epsilon) * exact.degeneracy as f64
        );
    }

    // Community cores: the k-core hierarchy.
    println!("\nk-core sizes:");
    for k in [2, 4, 8, 16] {
        let core = k_core_by_peeling(&graph, k);
        println!("  {k:>2}-core: {:>6} vertices", core.len());
    }

    // Maximal cliques with the paper's best variant.
    let outcome = BkVariant::GmsAdgS.run(&graph);
    println!(
        "\nmaximal cliques: {} (largest {}), {:.0} cliques/s",
        outcome.clique_count,
        outcome.largest,
        outcome.throughput()
    );

    // Clique-stars (§6.6): relaxed communities around triangle cores.
    let stars = k_clique_stars(&graph, 3, 2, &KcConfig::default());
    println!(
        "3-clique-stars with ≥2 satellites: {} (largest satellite set: {})",
        stars.len(),
        stars.iter().map(|s| s.satellites.len()).max().unwrap_or(0)
    );
}
