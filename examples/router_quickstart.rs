//! Routing quick start: boot a two-shard fleet in-process — two
//! `gms-serve` backends behind one `gms-router` — load graphs
//! through the router, watch the ring place them on different
//! shards, scatter-gather a batch, and survive killing a backend.
//!
//! ```sh
//! cargo run --example router_quickstart
//! ```
//!
//! The same topology runs from the shell: `gms-router --spawn 2`
//! forks two local `gms-serve` children and fronts them on one
//! address, speaking the unchanged `gms-serve` protocol.

use gms::prelude::{Router, RouterConfig};
use gms::serve::{Client, Json, ServeConfig, Server};

fn edge_list(graph: &gms::core::CsrGraph) -> String {
    let mut text = Vec::new();
    gms::graph::io::write_edge_list(graph, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

fn main() -> std::io::Result<()> {
    // Two backend shards, each its own admission queue + worker
    // sessions + result cache...
    let shard_a = Server::start(ServeConfig::default()).expect("start shard A");
    let shard_b = Server::start(ServeConfig::default()).expect("start shard B");

    // ...and one router fronting them. Clients only ever see the
    // router's address.
    let router = Router::start(RouterConfig {
        backends: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");
    println!("fleet of 2 behind {}", router.addr());

    let mut client = Client::connect(router.addr())?;

    // Load a handful of graphs through the router: each is placed on
    // the consistent-hash owner of its content fingerprint.
    for i in 0..4 {
        let graph = gms::gen::gnp(300 + 20 * i, 0.05, 70 + i as u64);
        let loaded = client.load_inline(&format!("g{i}"), "edge-list", &edge_list(&graph))?;
        println!(
            "g{i} → shard {}",
            loaded.get("shard").and_then(Json::as_str).unwrap(),
        );
    }

    // One batch over all four graphs: the router scatters it by
    // ownership, the shards mine their slices concurrently, and the
    // results come back in request order.
    let batch = Json::object([
        ("op", Json::from("batch")),
        (
            "requests",
            Json::Array(
                (0..4)
                    .map(|i| {
                        Json::object([
                            ("op", Json::from("run")),
                            ("kernel", Json::from("triangle-count")),
                            ("graph", Json::from(format!("g{i}"))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let response = client.request(&batch)?;
    let results = response.get("results").and_then(Json::as_array).unwrap();
    for (i, result) in results.iter().enumerate() {
        println!(
            "g{i}: {} triangles",
            result.get("patterns").and_then(Json::as_i64).unwrap()
        );
    }
    println!(
        "batch fanned out over {} shard(s)",
        response.get("shards").and_then(Json::as_i64).unwrap()
    );

    // Kill shard A out from under the fleet. The router notices on
    // the next request touching it, re-places A's graphs on B from
    // its spill snapshots, and answers — no hang, same counts.
    let victim = shard_a.addr();
    let mut direct = Client::connect(victim)?;
    let _ = direct.shutdown();
    shard_a.join();
    println!("killed shard {victim}");

    for i in 0..4 {
        let response = client.run("triangle-count", &format!("g{i}"), &[])?;
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        println!(
            "g{i}: {} triangles, now served by {}",
            response.get("patterns").and_then(Json::as_i64).unwrap(),
            response.get("shard").and_then(Json::as_str).unwrap(),
        );
    }

    // Fleet stats: the router's failover counters plus per-shard and
    // aggregated backend counters.
    let stats = client.stats()?;
    let router_block = stats.get("router").unwrap();
    println!(
        "failovers: {}, graphs re-placed: {}",
        router_block
            .get("failovers")
            .and_then(Json::as_i64)
            .unwrap(),
        router_block
            .get("graphs_replaced")
            .and_then(Json::as_i64)
            .unwrap(),
    );

    router.shutdown();
    router.join();
    let mut b = Client::connect(shard_b.addr())?;
    let _ = b.shutdown();
    shard_b.join();
    println!("fleet shut down cleanly");
    Ok(())
}
