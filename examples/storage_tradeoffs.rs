//! Storage scenario: the representation/compression trade-offs of
//! §6.8 and Appendix B — the same graph through CSR, compressed CSR,
//! the set-centric representations, reference encoding and k²-trees,
//! with sizes and a mining kernel run on each to show the access-cost
//! side of the trade-off.
//!
//! ```sh
//! cargo run --release --example storage_tradeoffs
//! ```

use gms::graph::compress::{K2Tree, ReferenceEncodedGraph};
use gms::graph::CompressedCsr;
use gms::pattern::triangle_count_node_iterator;
use gms::prelude::*;
use std::time::Instant;

fn main() {
    // A clustered graph with locality (good for gap encoding) plus a
    // power-law tail.
    let (graph, _) = gms::gen::planted_cliques(3_000, 0.003, 10, 8, 21);
    let raw_bytes = graph.heap_bytes();
    println!(
        "graph: n={}, m={}\n",
        graph.num_vertices(),
        graph.num_edges_undirected()
    );
    println!(
        "{:<24} {:>12} {:>9}",
        "representation", "heap bytes", "vs CSR"
    );

    let report = |name: &str, bytes: usize| {
        println!(
            "{name:<24} {bytes:>12} {:>8.2}x",
            bytes as f64 / raw_bytes as f64
        );
    };
    report("CSR (baseline)", raw_bytes);

    let compressed = CompressedCsr::from_csr(&graph);
    report("gap+varint CSR", compressed.heap_bytes());

    let reference = ReferenceEncodedGraph::encode(&graph);
    report("reference encoding", reference.payload_bytes());

    let k2 = K2Tree::from_graph(&graph);
    report("k²-tree (packed)", k2.packed_bytes());

    let sorted: SetGraph<SortedVecSet> = SetGraph::from_csr(&graph);
    report("SetGraph<SortedVecSet>", sorted.heap_bytes());

    let roaring: SetGraph<RoaringSet> = SetGraph::from_csr(&graph);
    report("SetGraph<RoaringSet>", roaring.heap_bytes());

    let dense: SetGraph<DenseBitSet> = SetGraph::from_csr(&graph);
    report("SetGraph<DenseBitSet>", dense.heap_bytes());

    // The performance side (§8.9): run the same set-algebra kernel
    // (node-iterator triangle counting) over each set layout.
    println!("\ntriangle counting over each set layout:");
    let t = Instant::now();
    let t_sorted = triangle_count_node_iterator(&sorted);
    println!(
        "  {:<22} {:>10} triangles in {:.2?}",
        "SortedVecSet",
        t_sorted,
        t.elapsed()
    );
    let t = Instant::now();
    let t_roaring = triangle_count_node_iterator(&roaring);
    println!(
        "  {:<22} {:>10} triangles in {:.2?}",
        "RoaringSet",
        t_roaring,
        t.elapsed()
    );
    let t = Instant::now();
    let t_dense = triangle_count_node_iterator(&dense);
    println!(
        "  {:<22} {:>10} triangles in {:.2?}",
        "DenseBitSet",
        t_dense,
        t.elapsed()
    );
    assert_eq!(t_sorted, t_roaring);
    assert_eq!(t_sorted, t_dense);

    // Compressed representations answer the same access interface.
    let v = 42;
    assert_eq!(
        compressed.neighborhood_vec(v),
        graph.neighbors_slice(v).to_vec()
    );
    assert_eq!(reference.neighborhood(v), graph.neighbors_slice(v).to_vec());
    println!("\nall representations agree on N({v}) — modularity ①–② holds");
}
