//! # GraphMineSuite-rs (`gms`)
//!
//! A Rust reproduction of **GraphMineSuite** (Besta et al., VLDB
//! 2021): a benchmarking suite for high-performance, programmable
//! graph mining built on *set algebra*. Algorithms are written against
//! a small [`Set`](gms_core::Set) interface; swapping the set layout (sorted arrays,
//! roaring bitmaps, dense bitvectors, hash sets), the vertex order
//! (degree, exact or approximate degeneracy, triangle rank), or the
//! graph representation changes no algorithm code.
//!
//! ## Quick start
//!
//! Every mining kernel is served through one typed entry point: a
//! [`Session`](gms_platform::kernel::Session) owns loaded graphs, a
//! [`Registry`](gms_platform::kernel::Registry) maps kernel names
//! to implementations, and results are memoized by
//! `(graph fingerprint, kernel, params)`.
//!
//! ```
//! use gms::prelude::*;
//!
//! // A social-network-like graph with planted 8-cliques, loaded
//! // into a serving session (pipeline step 1).
//! let (graph, _) = gms::gen::planted_cliques(500, 0.01, 3, 8, 42);
//! let mut session = Session::new();
//! let g = session.add_graph(graph);
//!
//! // Maximal clique listing — the paper's BK-GMS-ADG variant — by
//! // name, through the same API as every other kernel.
//! let bk = session.run("bk-gms-adg", g, &Params::new()).unwrap();
//! assert!(bk.patterns >= 3);
//! println!("{} maximal cliques at {:.0}/s", bk.patterns, bk.throughput());
//!
//! // k-clique counting with typed parameters — swapping k or the
//! // preprocessing order is one `with` away.
//! let params = Params::new().with("k", 4).with("ordering", "degeneracy");
//! let kc = session.run("k-clique", g, &params).unwrap();
//! assert!(kc.patterns > 0);
//!
//! // The same request again is a cache hit: same result, no kernel
//! // time spent.
//! let hit = session.run("k-clique", g, &params).unwrap();
//! assert!(hit.cached && hit.same_result(&kc));
//!
//! // The registry enumerates the whole suite by category.
//! let pattern_kernels = session.registry().by_category(Category::Pattern);
//! assert!(pattern_kernels.iter().any(|k| k.name() == "triangle-count"));
//! ```
//!
//! Batches ride the work-stealing pool and share the same cache:
//!
//! ```
//! use gms::prelude::*;
//!
//! let mut session = Session::new();
//! let g = session.add_graph(gms::gen::gnp(300, 0.03, 7));
//! let batch: Vec<BatchRequest> = ["triangle-count", "order-degree", "coloring"]
//!     .iter()
//!     .map(|name| BatchRequest::new(name, g, Params::new()))
//!     .collect();
//! let outcomes = BatchRunner::new(2).run(&mut session, &batch);
//! assert!(outcomes.iter().all(|r| r.is_ok()));
//! ```
//!
//! And the whole platform serves over the network: [`serve`] wraps
//! the session machinery in a TCP front end speaking
//! newline-delimited JSON, with a bounded admission queue in front of
//! a fixed pool of worker sessions that share one result cache.
//!
//! ```
//! use gms::serve::{Client, Json, ServeConfig, Server};
//!
//! // An ephemeral-port server with two worker sessions.
//! let handle = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//!
//! // Ship a graph inline and mine it by name.
//! let mut text = Vec::new();
//! gms::graph::io::write_edge_list(&gms::gen::gnp(120, 0.06, 3), &mut text).unwrap();
//! let loaded = client
//!     .load_inline("demo", "edge-list", std::str::from_utf8(&text).unwrap())
//!     .unwrap();
//! assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));
//!
//! // Identical requests are served from the shared result cache.
//! let first = client.run("triangle-count", "demo", &[]).unwrap();
//! let again = client.run("triangle-count", "demo", &[]).unwrap();
//! assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
//! assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));
//!
//! // Graceful shutdown over the wire.
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! The legacy per-crate entry points (`BkVariant::run`,
//! `k_clique_count`, ...) remain available for direct use; the
//! kernel API wraps them.
//!
//! ## Crate map
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`core`] | `Set` trait + 4 layouts, CSR, set-centric graphs | §5.1–5.3 |
//! | [`graph`] | transforms, dataset I/O (edge list / METIS / `.gcsr` snapshots + mmap), compression (varint/gap/RLE/reference/bit-packing/k²-trees) | §5, App. B |
//! | [`gen`] | ER, Kronecker, planted structures, grids | §4.2 |
//! | [`order`] | DEG / DGR / ADG / triangle rank, k-cores | §6.1 |
//! | [`pattern`] | Bron–Kerbosch, k-cliques, clique-stars, triangles | §6.2–6.3, 6.6 |
//! | [`matching`] | VF2 + parallel VF3-Light-style isomorphism | §6.4 |
//! | [`learn`] | similarity, link prediction, clustering, communities | §6.5, 6.7 |
//! | [`opt`] | coloring, Borůvka MST, Karger–Stein min cut | §4.1.4 |
//! | [`platform`] | pipeline, metrics, counters, scaling, stats | §4.3, 5.4–5.5 |
//! | [`platform::kernel`] | unified kernel API: registry, session + shared result cache, batch runner | §5 (service layer) |
//! | [`serve`] | TCP front end: NDJSON protocol, admission control, concurrent worker sessions | north star |
//! | [`router`] | fleet front end: consistent-hash sharding over N `serve` backends, scatter-gather batches, failover | north star |
//!
//! Scale past one process by putting [`router`] in front of several
//! [`serve`] backends — same wire protocol, one address:
//!
//! ```text
//!   clients ──► gms-router ──► gms-serve × N
//!              (placement,    (admission queue,
//!               scatter-       worker sessions,
//!               gather,        shared result cache)
//!               failover)
//! ```

#![warn(missing_docs)]

pub use gms_core as core;
pub use gms_gen as gen;
pub use gms_graph as graph;
pub use gms_learn as learn;
pub use gms_match as matching;
pub use gms_opt as opt;
pub use gms_order as order;
pub use gms_pattern as pattern;
pub use gms_platform as platform;
pub use gms_router as router;
pub use gms_serve as serve;

/// The most common imports in one place.
pub mod prelude {
    pub use gms_core::{
        CsrGraph, DenseBitSet, Graph, HashVertexSet, NodeId, RoaringSet, Set, SetGraph,
        SetNeighborhoods, SortedVecSet,
    };
    pub use gms_graph::io::{GraphIoCause, GraphIoError};
    pub use gms_graph::{orient_by_rank, relabel, CompressedCsr, Rank};
    pub use gms_learn::SimilarityMeasure;
    pub use gms_match::{IsoMode, IsoOptions, LabeledGraph};
    pub use gms_order::OrderingKind;
    pub use gms_pattern::{
        bron_kerbosch, k_clique_count, BkConfig, BkVariant, KcConfig, KcParallel, KcVariant,
        SubgraphMode,
    };
    pub use gms_platform::kernel::{
        BatchRequest, BatchRunner, CacheKey, CacheStats, Category, GraphHandle, GraphStore, Kernel,
        KernelError, Outcome, ParamSpec, Params, Payload, Registry, ResultCache, Session,
        SessionStats, SnapshotCompression, Value, ValueKind,
    };
    pub use gms_platform::{GraphStats, Measurement, Pipeline, Throughput};
    pub use gms_router::{Router, RouterConfig, RouterHandle};
    pub use gms_serve::{Client, ServeConfig, Server, ServerHandle};
}
