//! # GraphMineSuite-rs (`gms`)
//!
//! A Rust reproduction of **GraphMineSuite** (Besta et al., VLDB
//! 2021): a benchmarking suite for high-performance, programmable
//! graph mining built on *set algebra*. Algorithms are written against
//! a small [`Set`] interface; swapping the set layout (sorted arrays,
//! roaring bitmaps, dense bitvectors, hash sets), the vertex order
//! (degree, exact or approximate degeneracy, triangle rank), or the
//! graph representation changes no algorithm code.
//!
//! ## Quick start
//!
//! ```
//! use gms::prelude::*;
//!
//! // A social-network-like graph with planted 8-cliques.
//! let (graph, _) = gms::gen::planted_cliques(500, 0.01, 3, 8, 42);
//!
//! // Maximal clique listing: the paper's BK-GMS-ADG variant
//! // (Bron-Kerbosch over roaring bitmaps + approximate degeneracy).
//! let outcome = BkVariant::GmsAdg.run(&graph);
//! assert!(outcome.largest >= 8);
//! println!(
//!     "{} maximal cliques at {:.0} cliques/s",
//!     outcome.clique_count,
//!     outcome.throughput()
//! );
//!
//! // k-clique counting with a different ordering — one line to swap.
//! let kc = k_clique_count(&graph, 4, &KcConfig::default());
//! assert!(kc.count > 0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`core`] | `Set` trait + 4 layouts, CSR, set-centric graphs | §5.1–5.3 |
//! | [`graph`] | transforms, I/O, compression (varint/gap/RLE/reference/bit-packing/k²-trees) | §5, App. B |
//! | [`gen`] | ER, Kronecker, planted structures, grids | §4.2 |
//! | [`order`] | DEG / DGR / ADG / triangle rank, k-cores | §6.1 |
//! | [`pattern`] | Bron–Kerbosch, k-cliques, clique-stars, triangles | §6.2–6.3, 6.6 |
//! | [`matching`] | VF2 + parallel VF3-Light-style isomorphism | §6.4 |
//! | [`learn`] | similarity, link prediction, clustering, communities | §6.5, 6.7 |
//! | [`opt`] | coloring, Borůvka MST, Karger–Stein min cut | §4.1.4 |
//! | [`platform`] | pipeline, metrics, counters, scaling, stats | §4.3, 5.4–5.5 |

#![warn(missing_docs)]

pub use gms_core as core;
pub use gms_gen as gen;
pub use gms_graph as graph;
pub use gms_learn as learn;
pub use gms_match as matching;
pub use gms_opt as opt;
pub use gms_order as order;
pub use gms_pattern as pattern;
pub use gms_platform as platform;

/// The most common imports in one place.
pub mod prelude {
    pub use gms_core::{
        CsrGraph, DenseBitSet, Graph, HashVertexSet, NodeId, RoaringSet, Set, SetGraph,
        SetNeighborhoods, SortedVecSet,
    };
    pub use gms_graph::{orient_by_rank, relabel, Rank};
    pub use gms_learn::SimilarityMeasure;
    pub use gms_match::{IsoMode, IsoOptions, LabeledGraph};
    pub use gms_order::OrderingKind;
    pub use gms_pattern::{
        bron_kerbosch, k_clique_count, BkConfig, BkVariant, KcConfig, KcParallel, KcVariant,
        SubgraphMode,
    };
    pub use gms_platform::{GraphStats, Measurement, Pipeline, Throughput};
}
