//! Integration tests spanning crates: the full GMS pipeline
//! (generate → characterize → reorder → mine → verify) with every
//! stage from a different crate.

use gms::order::{approx_degeneracy_order, degeneracy_order, later_neighbor_bound};
use gms::pattern::brute::{is_maximal_clique, maximal_cliques_brute};
use gms::platform::{run_pipeline, Pipeline};
use gms::prelude::*;

#[test]
fn generate_reorder_mine_verify() {
    let (graph, planted) = gms::gen::planted_cliques(400, 0.01, 4, 8, 17);

    // Preprocess: ADG order; check its (2+ε)d invariant against the
    // exact degeneracy.
    let exact = degeneracy_order(&graph);
    let adg = approx_degeneracy_order(&graph, 0.25);
    assert!(
        adg.out_degree_bound as f64 <= (2.0 + 0.25) * exact.degeneracy as f64 + 1.0,
        "ADG bound {} vs (2+ε)d = {}",
        adg.out_degree_bound,
        (2.0 + 0.25) * exact.degeneracy as f64
    );

    // Mine: all BK variants agree and recover the planted cliques.
    let reference = BkVariant::Das.run_with(&graph, true);
    for variant in [
        BkVariant::GmsDeg,
        BkVariant::GmsDgr,
        BkVariant::GmsAdg,
        BkVariant::GmsAdgS,
    ] {
        let outcome = variant.run_with(&graph, true);
        assert_eq!(outcome.cliques, reference.cliques, "{}", variant.label());
    }
    let cliques = reference.cliques.unwrap();
    for group in &planted {
        let mut sorted = group.clone();
        sorted.sort_unstable();
        assert!(
            cliques.iter().any(|c| sorted.iter().all(|v| c.contains(v))),
            "planted clique missing"
        );
    }
    // Verify: every clique is maximal (cross-checked by the oracle
    // predicate from a third crate).
    for clique in cliques.iter().take(50) {
        assert!(is_maximal_clique(&graph, clique));
    }
}

#[test]
fn bk_through_the_pipeline_interface() {
    struct BkPipeline {
        graph: CsrGraph,
        rank: Option<Rank>,
        relabeled: Option<CsrGraph>,
        cliques: u64,
    }
    impl Pipeline for BkPipeline {
        fn preprocess(&mut self) {
            self.rank = Some(OrderingKind::ApproxDegeneracy(0.25).compute(&self.graph));
        }
        fn convert(&mut self) {}
        fn kernel(&mut self) {
            let rank = self.rank.as_ref().expect("preprocess ran");
            self.relabeled = Some(relabel(&self.graph, rank));
            let config = BkConfig {
                ordering: OrderingKind::Natural,
                subgraph: SubgraphMode::None,
                collect: false,
                ..BkConfig::default()
            };
            self.cliques =
                bron_kerbosch::<RoaringSet>(self.relabeled.as_ref().unwrap(), &config).clique_count;
        }
        fn patterns_found(&self) -> u64 {
            self.cliques
        }
    }

    let graph = gms::gen::gnp(120, 0.08, 5);
    let expected = maximal_cliques_brute(&graph).len() as u64;
    let mut pipeline = BkPipeline {
        graph,
        rank: None,
        relabeled: None,
        cliques: 0,
    };
    let (timings, patterns) = run_pipeline(&mut pipeline);
    assert_eq!(patterns, expected, "pipeline-run BK equals oracle");
    assert!(timings.total() > std::time::Duration::ZERO);
}

#[test]
fn ordering_quality_ladder() {
    // On a skewed graph: degeneracy-based orders bound later-neighbors
    // by d and (2+ε)d; degree order gives no such guarantee but is
    // still a valid permutation. (The Fig. 6 relationships.)
    let graph = gms::gen::kronecker_default(10, 8, 13);
    let exact = degeneracy_order(&graph);
    let dgr_bound = later_neighbor_bound(&graph, &exact.rank);
    assert_eq!(dgr_bound, exact.degeneracy);
    for eps in [0.01, 0.1, 0.5] {
        let adg = approx_degeneracy_order(&graph, eps);
        assert!(
            adg.out_degree_bound >= dgr_bound,
            "approximation cannot beat exact"
        );
        assert!(
            adg.out_degree_bound as f64 <= (2.0 + eps) * exact.degeneracy as f64 + 1.0,
            "ε = {eps}"
        );
        // O(log n) rounds — generous constant.
        assert!(adg.rounds <= 48, "rounds {} for ε {eps}", adg.rounds);
    }
}

#[test]
fn compressed_representations_mine_identically() {
    use gms::graph::CompressedCsr;
    let graph = gms::gen::gnp(150, 0.06, 23);
    let compressed = CompressedCsr::from_csr(&graph);
    let roundtrip = compressed.to_csr();
    assert_eq!(roundtrip, graph);
    // Mine on the decompressed graph; counts must match the original.
    let a = BkVariant::GmsAdg.run(&graph).clique_count;
    let b = BkVariant::GmsAdg.run(&roundtrip).clique_count;
    assert_eq!(a, b);
}

#[test]
fn edge_list_io_roundtrip_preserves_mining_results() {
    let graph = gms::gen::gnp(100, 0.1, 31);
    let mut buffer = Vec::new();
    gms::graph::io::write_edge_list(&graph, &mut buffer).unwrap();
    let edges = gms::graph::io::read_edge_list(buffer.as_slice()).unwrap();
    let reloaded = CsrGraph::from_undirected_edges(graph.num_vertices(), &edges);
    assert_eq!(reloaded, graph);
    assert_eq!(
        k_clique_count(&graph, 4, &KcConfig::default()).count,
        k_clique_count(&reloaded, 4, &KcConfig::default()).count
    );
}
