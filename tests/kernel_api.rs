//! Integration suite for the unified kernel API (tier 1).
//!
//! The contract under test: **every** public mining kernel is
//! runnable by string name through the [`Registry`] with typed
//! [`Params`], produces a non-trivial [`Outcome`] on a seeded
//! planted-clique graph at default parameters, and a second
//! identical request is a cache hit — same result, no kernel time.
//! Because the suite *enumerates* the registry, a newly registered
//! kernel is covered automatically (and fails fast if it returns
//! trivial outcomes).

use gms::prelude::*;

/// A seeded planted-clique graph with a Hamiltonian ring stitched
/// through it, so it is connected (min-cut must find a real cut and
/// every component-based kernel sees one structure).
fn planted_connected() -> CsrGraph {
    let n = 160usize;
    let (g, _) = gms::gen::planted_cliques(n, 0.02, 3, 8, 11);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges_undirected().collect();
    for v in 0..n as NodeId {
        edges.push((v, (v + 1) % n as NodeId));
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

#[test]
fn every_registered_kernel_runs_and_caches() {
    let mut session = Session::new();
    let g = session.add_graph(planted_connected());
    let names: Vec<&'static str> = session.registry().names();
    assert!(names.len() >= 20, "expected the full built-in suite");

    for name in names {
        let first = session
            .run(name, g, &Params::new())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(!first.cached, "{name}: first request must not be cached");
        assert!(
            first.patterns > 0,
            "{name}: trivial outcome (0 patterns) on the planted graph"
        );

        // The identical request again: a hit with the same mined
        // result and ~zero kernel time (nothing ran).
        let second = session.run(name, g, &Params::new()).unwrap();
        assert!(second.cached, "{name}: second request must hit the cache");
        assert!(
            second.same_result(&first),
            "{name}: cache returned a different result"
        );
        assert_eq!(
            second.timings.total(),
            std::time::Duration::ZERO,
            "{name}: cache hit reported kernel time"
        );
    }

    let stats = session.stats();
    assert_eq!(stats.hits, stats.misses, "one hit per miss");
}

#[test]
fn registry_results_match_legacy_entry_points() {
    let graph = planted_connected();
    let registry = Registry::with_builtins();

    // Maximal cliques: named variant vs. the legacy BkVariant call.
    let via_registry = registry.run("bk-gms-adg", &graph, &Params::new()).unwrap();
    let legacy = BkVariant::GmsAdg.run(&graph);
    assert_eq!(via_registry.patterns, legacy.clique_count);

    // k-cliques: typed params vs. the legacy config struct.
    let via_registry = registry
        .run("k-clique", &graph, &Params::new().with("k", 5))
        .unwrap();
    let legacy = k_clique_count(&graph, 5, &KcConfig::default());
    assert_eq!(via_registry.patterns, legacy.count);

    // Triangles: the registry's default method vs. the direct call.
    let via_registry = registry
        .run("triangle-count", &graph, &Params::new())
        .unwrap();
    let legacy = gms::pattern::triangle_count_rank_merge(&graph);
    assert_eq!(via_registry.patterns, legacy);
}

#[test]
fn categories_partition_the_suite() {
    let registry = Registry::with_builtins();
    let mut total = 0;
    for category in Category::ALL {
        let kernels = registry.by_category(category);
        assert!(!kernels.is_empty(), "{category:?} has no kernels");
        total += kernels.len();
    }
    assert_eq!(total, registry.len(), "every kernel has one category");
}

#[test]
fn bad_requests_fail_with_typed_errors() {
    let mut session = Session::new();
    let g = session.add_graph(planted_connected());
    assert!(matches!(
        session.run("bron-kerbosch-typo", g, &Params::new()),
        Err(KernelError::UnknownKernel(_))
    ));
    assert!(matches!(
        session.run("bk", g, &Params::new().with("layoutt", "dense")),
        Err(KernelError::UnknownParam { .. })
    ));
    assert!(matches!(
        session.run("bk", g, &Params::new().with("layout", "cuckoo")),
        Err(KernelError::BadParam { .. })
    ));
}

#[test]
fn reloading_the_same_dataset_reuses_cached_results() {
    // Serialize a graph as a SNAP-style edge list, load it twice
    // through the streaming loader: the CSR fingerprint makes the
    // second handle hit the first handle's cached outcomes.
    let graph = planted_connected();
    let mut text = Vec::new();
    gms::graph::io::write_edge_list(&graph, &mut text).unwrap();

    let mut session = Session::new();
    let a = session.load_edge_list_from(text.as_slice()).unwrap();
    let b = session.load_edge_list_from(text.as_slice()).unwrap();
    assert_ne!(a, b, "distinct handles");

    let miss = session.run("triangle-count", a, &Params::new()).unwrap();
    let hit = session.run("triangle-count", b, &Params::new()).unwrap();
    assert!(!miss.cached);
    assert!(hit.cached, "same content must share cache lines");
    assert!(hit.same_result(&miss));
}

#[test]
fn kernel_results_are_format_independent() {
    // The same graph written as a SNAP edge list, a METIS file, and a
    // .gcsr binary snapshot, then loaded back through each format's
    // Session entry point: every registry kernel must produce an
    // identical Outcome, and — because all three loads fingerprint
    // identically — only the first format actually runs a kernel; the
    // others are cache hits.
    let graph = planted_connected();
    let dir = std::env::temp_dir().join(format!("gms_kernel_api_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut session = Session::new();
    let seed = session.add_graph(graph.clone());
    session.save_snapshot(seed, dir.join("g.gcsr")).unwrap();
    let mut edge_list = Vec::new();
    gms::graph::io::write_edge_list(&graph, &mut edge_list).unwrap();
    std::fs::write(dir.join("g.el"), &edge_list).unwrap();
    let mut metis = Vec::new();
    gms::graph::io::write_metis(&graph, &mut metis).unwrap();
    std::fs::write(dir.join("g.metis"), &metis).unwrap();

    let from_text = session.load_edge_list(dir.join("g.el")).unwrap();
    let from_metis = session.load_metis(dir.join("g.metis")).unwrap();
    let from_snapshot = session.load_snapshot(dir.join("g.gcsr")).unwrap();

    let fp = session.graph_fingerprint(seed).unwrap();
    for (name, handle) in [
        ("edge list", from_text),
        ("METIS", from_metis),
        ("snapshot", from_snapshot),
    ] {
        assert_eq!(
            session.graph_fingerprint(handle).unwrap(),
            fp,
            "{name}: loaded CSR fingerprint differs"
        );
    }

    for kernel in ["triangle-count", "k-clique", "bk-gms-adg"] {
        let baseline = session.run(kernel, from_text, &Params::new()).unwrap();
        assert!(!baseline.cached, "{kernel}: fresh session state expected");
        for (name, handle) in [("METIS", from_metis), ("snapshot", from_snapshot)] {
            let other = session.run(kernel, handle, &Params::new()).unwrap();
            assert!(
                other.cached,
                "{kernel} via {name}: same content must be a cache hit"
            );
            assert!(
                other.same_result(&baseline),
                "{kernel} via {name}: outcome differs across formats"
            );
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn compressed_backend_shares_cache_lines_with_the_raw_csr() {
    // The same content resident two ways — raw CSR arrays and the
    // gap+varint compressed backend loaded from a v2 .gcsr snapshot —
    // must fingerprint identically, so a kernel computed on one
    // representation is a cache hit on the other. This is the
    // cross-format guarantee of `kernel_results_are_format_independent`
    // extended across *representations*, not just file formats.
    let graph = planted_connected();
    let dir = std::env::temp_dir().join(format!("gms_kernel_api_gcsr2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut session = Session::new();
    let raw = session.add_graph(graph.clone());
    session
        .save_snapshot_with(raw, dir.join("g2.gcsr"), SnapshotCompression::Gap)
        .unwrap();
    let compressed = session.load_snapshot(dir.join("g2.gcsr")).unwrap();

    // The v2 snapshot stays compressed in the session...
    let store = session.store(compressed).unwrap();
    assert!(
        matches!(store, GraphStore::Compressed(_)),
        "v2 snapshot should load into the compressed backend"
    );
    assert!(store.resident_bytes() > 0);
    // ...and gap encoding (no reordering) preserves the fingerprint.
    assert_eq!(
        session.graph_fingerprint(compressed).unwrap(),
        session.graph_fingerprint(raw).unwrap(),
        "compression must not change the content fingerprint"
    );

    for kernel in ["triangle-count", "k-clique", "bk-gms-adg"] {
        let miss = session.run(kernel, raw, &Params::new()).unwrap();
        assert!(!miss.cached, "{kernel}: fresh session state expected");
        let hit = session.run(kernel, compressed, &Params::new()).unwrap();
        assert!(
            hit.cached,
            "{kernel}: compressed backend must reuse the raw run's cache line"
        );
        assert!(hit.same_result(&miss));
    }

    // And the other direction: a kernel computed *on* the compressed
    // backend serves a later raw-handle request.
    let params = Params::new().with("k", 3);
    let miss = session.run("k-clique", compressed, &params).unwrap();
    assert!(!miss.cached);
    let hit = session.run("k-clique", raw, &params).unwrap();
    assert!(hit.cached, "raw handle must hit the compressed run's line");
    assert!(hit.same_result(&miss));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn batch_runner_serves_mixed_requests_through_the_facade() {
    let mut session = Session::new();
    let g = session.add_graph(planted_connected());
    let batch: Vec<BatchRequest> = ["bk-gms-adg", "k-clique", "triangle-count", "bk-gms-adg"]
        .iter()
        .map(|name| BatchRequest::new(name, g, Params::new()))
        .collect();
    let outcomes = BatchRunner::new(2).run(&mut session, &batch);
    assert_eq!(outcomes.len(), 4);
    for outcome in &outcomes {
        assert!(outcome.as_ref().unwrap().patterns > 0);
    }
    // The duplicate bk request was deduplicated, not re-run.
    assert!(outcomes[3].as_ref().unwrap().cached);
    assert!(outcomes[3]
        .as_ref()
        .unwrap()
        .same_result(outcomes[0].as_ref().unwrap()));
}
