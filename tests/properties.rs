//! Workspace-level property-based tests (proptest): invariants that
//! must hold for arbitrary generated graphs and arbitrary operation
//! sequences, spanning multiple crates.

use gms::graph::compress::{gap, rle, varint, BitPacked};
use gms::graph::CompressedCsr;
use gms::order::{approx_degeneracy_order, degeneracy_order, later_neighbor_bound};
use gms::prelude::*;
use proptest::prelude::*;

/// Strategy: a small undirected graph as (n, edge list).
fn small_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..60);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bk_count_is_invariant_under_any_ordering((n, edges) in small_graph()) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        let orderings = [
            OrderingKind::Natural,
            OrderingKind::Degree,
            OrderingKind::Degeneracy,
            OrderingKind::ApproxDegeneracy(0.3),
            OrderingKind::TriangleCount,
        ];
        let counts: Vec<u64> = orderings
            .iter()
            .map(|&ordering| {
                bron_kerbosch::<SortedVecSet>(
                    &graph,
                    &BkConfig {
                        ordering,
                        subgraph: SubgraphMode::None,
                        collect: false,
                        ..BkConfig::default()
                    },
                )
                .clique_count
            })
            .collect();
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn bk_set_layouts_agree((n, edges) in small_graph()) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        let config = BkConfig {
            ordering: OrderingKind::Degeneracy,
            subgraph: SubgraphMode::None,
            collect: true,
            ..BkConfig::default()
        };
        let sorted = bron_kerbosch::<SortedVecSet>(&graph, &config);
        let roaring = bron_kerbosch::<RoaringSet>(&graph, &config);
        let dense = bron_kerbosch::<DenseBitSet>(&graph, &config);
        prop_assert_eq!(&sorted.cliques, &roaring.cliques);
        prop_assert_eq!(&sorted.cliques, &dense.cliques);
    }

    #[test]
    fn kclique_drivers_and_orders_agree((n, edges) in small_graph(), k in 3usize..6) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        let reference = k_clique_count(
            &graph,
            k,
            &KcConfig { ordering: OrderingKind::Natural, parallel: KcParallel::Node },
        ).count;
        for parallel in [KcParallel::Node, KcParallel::Edge] {
            for ordering in [OrderingKind::Degree, OrderingKind::ApproxDegeneracy(0.5)] {
                let got = k_clique_count(&graph, k, &KcConfig { ordering, parallel }).count;
                prop_assert_eq!(got, reference);
            }
        }
    }

    #[test]
    fn degeneracy_invariants((n, edges) in small_graph()) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        let exact = degeneracy_order(&graph);
        // The peeling order achieves its bound.
        prop_assert_eq!(later_neighbor_bound(&graph, &exact.rank), exact.degeneracy);
        // Core numbers peak at the degeneracy.
        let max_core = exact.core_numbers.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(max_core as usize, exact.degeneracy);
        // ADG respects (2+ε)d for several ε.
        for eps in [0.1, 0.5] {
            let adg = approx_degeneracy_order(&graph, eps);
            let bound = ((2.0 + eps) * exact.degeneracy as f64).ceil() as usize;
            prop_assert!(adg.out_degree_bound <= bound.max(1));
        }
    }

    #[test]
    fn relabel_preserves_structure((n, edges) in small_graph(), seed in 0u64..1000) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        // Pseudo-random permutation from the seed.
        let mut order: Vec<NodeId> = (0..n as u32).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let rank = Rank::from_order(&order);
        let relabeled = relabel(&graph, &rank);
        prop_assert_eq!(relabeled.num_arcs(), graph.num_arcs());
        // Edge (u,v) exists iff (rank(u), rank(v)) exists.
        for (u, v) in graph.edges_undirected() {
            prop_assert!(relabeled.has_edge(rank.rank_of(u), rank.rank_of(v)));
        }
        // Mining results are permutation-invariant.
        prop_assert_eq!(
            BkVariant::GmsDgr.run(&graph).clique_count,
            BkVariant::GmsDgr.run(&relabeled).clique_count
        );
    }

    #[test]
    fn compression_roundtrips((n, edges) in small_graph()) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        let compressed = CompressedCsr::from_csr(&graph);
        prop_assert_eq!(compressed.to_csr(), graph);
    }

    #[test]
    fn varint_gap_rle_roundtrip(values in proptest::collection::btree_set(0u32..1_000_000, 0..200)) {
        let sorted: Vec<u32> = values.into_iter().collect();
        // Varint.
        let encoded = varint::encode_slice(&sorted);
        prop_assert_eq!(varint::decode_slice(&encoded, sorted.len()), Some(sorted.clone()));
        // Gap.
        let encoded = gap::encode(&sorted);
        prop_assert_eq!(gap::decode(&encoded, sorted.len()), Some(sorted.clone()));
        // RLE.
        let (encoded, runs) = rle::encode(&sorted);
        prop_assert_eq!(rle::decode(&encoded, runs), Some(sorted.clone()));
        // Bit packing.
        if !sorted.is_empty() {
            let packed = BitPacked::pack_for_universe(&sorted, 1_000_000);
            prop_assert_eq!(packed.iter().collect::<Vec<_>>(), sorted);
        }
    }

    #[test]
    fn set_ops_respect_algebra_laws(
        a in proptest::collection::btree_set(0u32..500, 0..80),
        b in proptest::collection::btree_set(0u32..500, 0..80),
    ) {
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        fn laws<S: Set>(av: &[u32], bv: &[u32]) {
            let sa = S::from_sorted(av);
            let sb = S::from_sorted(bv);
            // Commutativity.
            assert_eq!(sa.intersect(&sb), sb.intersect(&sa));
            assert_eq!(sa.union(&sb), sb.union(&sa));
            // De Morgan-ish: |A| = |A ∩ B| + |A \ B|.
            assert_eq!(
                sa.cardinality(),
                sa.intersect_count(&sb) + sa.diff_count(&sb)
            );
            // Absorption: A ∪ (A ∩ B) = A.
            assert_eq!(sa.union(&sa.intersect(&sb)), sa);
            // Distribution over the empty set.
            assert_eq!(sa.intersect(&S::empty()), S::empty());
            assert_eq!(sa.union(&S::empty()), sa);
        }
        laws::<SortedVecSet>(&av, &bv);
        laws::<RoaringSet>(&av, &bv);
        laws::<DenseBitSet>(&av, &bv);
        laws::<HashVertexSet>(&av, &bv);
    }

    #[test]
    fn triangle_counters_agree((n, edges) in small_graph()) {
        let graph = CsrGraph::from_undirected_edges(n, &edges);
        let a = gms::order::triangle_count(&graph);
        let b = gms::pattern::triangle_count_rank_merge(&graph);
        let sg: SetGraph<SortedVecSet> = SetGraph::from_csr(&graph);
        let c = gms::pattern::triangle_count_node_iterator(&sg);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }
}
