//! Serving-layer integration: N concurrent sessions hammering one
//! shared [`ResultCache`] — single-flight deduplication of identical
//! in-flight requests, cross-session hits, invalidation on reload —
//! plus one facade-level round trip through the `gms-serve` TCP
//! front end.

use gms::prelude::*;
use gms::serve::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A kernel that counts its own executions and is deliberately slow,
/// so concurrently arriving identical requests overlap reliably.
struct CountingKernel {
    executions: Arc<AtomicUsize>,
    delay: Duration,
}

impl Kernel for CountingKernel {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn category(&self) -> Category {
        Category::Pattern
    }

    fn about(&self) -> &'static str {
        "execution-counting test kernel"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::int("x", 0, "distinguishes requests")]
    }

    fn run(&self, _graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        Ok(Outcome::new(
            "counting",
            100 + params.get_int("x", 0) as u64,
        ))
    }
}

fn counting_registry(executions: &Arc<AtomicUsize>, delay: Duration) -> Registry {
    let mut registry = Registry::empty();
    registry.register(Box::new(CountingKernel {
        executions: Arc::clone(executions),
        delay,
    }));
    registry
}

fn small_graph() -> CsrGraph {
    gms::gen::planted_cliques(100, 0.04, 2, 5, 13).0
}

#[test]
fn identical_inflight_requests_execute_once_across_sessions() {
    let executions = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(ResultCache::new(64));
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let executions = Arc::clone(&executions);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut session = Session::with_registry_and_cache(
                    counting_registry(&executions, Duration::from_millis(60)),
                    cache,
                );
                let g = session.add_graph(small_graph());
                barrier.wait();
                session.run("counting", g, &Params::new()).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<Outcome> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "single-flight: one leader, everyone else coalesces"
    );
    assert_eq!(outcomes.iter().filter(|o| !o.cached).count(), 1);
    assert!(outcomes.iter().all(|o| o.patterns == 100));
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits as usize, n - 1);
    assert!(
        stats.cross_hits >= 1,
        "hits landed on sessions that did not pay: {stats:?}"
    );
    assert!(
        stats.coalesced >= 1,
        "at least one request waited for the in-flight leader: {stats:?}"
    );
}

#[test]
fn distinct_requests_all_execute() {
    let executions = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(ResultCache::new(64));
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|i| {
            let executions = Arc::clone(&executions);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut session = Session::with_registry_and_cache(
                    counting_registry(&executions, Duration::from_millis(5)),
                    cache,
                );
                let g = session.add_graph(small_graph());
                barrier.wait();
                session
                    .run("counting", g, &Params::new().with("x", i as i64))
                    .unwrap()
            })
        })
        .collect();
    let outcomes: Vec<Outcome> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(executions.load(Ordering::SeqCst), n, "no false sharing");
    assert!(outcomes.iter().all(|o| !o.cached));
    let mut patterns: Vec<u64> = outcomes.iter().map(|o| o.patterns).collect();
    patterns.sort_unstable();
    assert_eq!(patterns, (100..100 + n as u64).collect::<Vec<_>>());
    assert_eq!(cache.stats().entries, n);
}

#[test]
fn sequential_cross_session_hits_and_per_session_stats() {
    let cache = Arc::new(ResultCache::new(64));
    let mut payer = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let mut rider = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let pg = payer.add_graph(small_graph());
    let rg = rider.add_graph(small_graph());

    let paid = payer.run("triangle-count", pg, &Params::new()).unwrap();
    let served = rider.run("triangle-count", rg, &Params::new()).unwrap();
    assert!(!paid.cached && served.cached);
    assert!(served.same_result(&paid));
    assert_eq!(payer.stats(), SessionStats { hits: 0, misses: 1 });
    assert_eq!(rider.stats(), SessionStats { hits: 1, misses: 0 });
    assert_eq!(cache.stats().cross_hits, 1);
}

#[test]
fn invalidation_on_reload_forces_recomputation() {
    let executions = Arc::new(AtomicUsize::new(0));
    let mut session = Session::with_registry_and_cache(
        counting_registry(&executions, Duration::ZERO),
        Arc::new(ResultCache::new(64)),
    );
    let g = session.add_graph(small_graph());
    session.run("counting", g, &Params::new()).unwrap();
    assert_eq!(executions.load(Ordering::SeqCst), 1);

    // Reload with different content: cached outcome is invalidated.
    session
        .replace_graph(g, gms::gen::gnp(80, 0.05, 21))
        .unwrap();
    assert_eq!(session.cached_outcomes(), 0);
    assert_eq!(session.cache_stats().invalidated, 1);
    let after = session.run("counting", g, &Params::new()).unwrap();
    assert!(!after.cached);
    assert_eq!(executions.load(Ordering::SeqCst), 2);

    // Reload with identical content: nothing invalidated, still hot.
    session
        .replace_graph(g, gms::gen::gnp(80, 0.05, 21))
        .unwrap();
    let hit = session.run("counting", g, &Params::new()).unwrap();
    assert!(hit.cached);
    assert_eq!(executions.load(Ordering::SeqCst), 2);
}

#[test]
fn batch_runner_rides_the_shared_cache() {
    let cache = Arc::new(ResultCache::new(64));
    let mut a = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let mut b = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let ga = a.add_graph(small_graph());
    let gb = b.add_graph(small_graph());

    let requests = |g: GraphHandle| vec![BatchRequest::new("triangle-count", g, Params::new())];
    let first = BatchRunner::new(2).run(&mut a, &requests(ga));
    let second = BatchRunner::new(2).run(&mut b, &requests(gb));
    assert!(!first[0].as_ref().unwrap().cached);
    assert!(
        second[0].as_ref().unwrap().cached,
        "a batch on session B reuses session A's batch results"
    );
    assert!(cache.stats().cross_hits >= 1);
}

#[test]
fn facade_serves_over_tcp() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut text = Vec::new();
    gms::graph::io::write_edge_list(&small_graph(), &mut text).unwrap();
    let loaded = client
        .load_inline("g", "edge-list", std::str::from_utf8(&text).unwrap())
        .unwrap();
    assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));

    // The server answer matches the in-process session answer.
    let mut session = Session::new();
    let local = session.add_graph(small_graph());
    let expected = session
        .run("triangle-count", local, &Params::new())
        .unwrap();
    let remote = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(
        remote.get("patterns").and_then(Json::as_i64),
        Some(expected.patterns as i64),
        "wire answers equal in-process answers"
    );

    client.shutdown().unwrap();
    handle.join();
}

/// Placement is a pure function of (fleet membership, graph
/// content): the same graph built twice fingerprints identically,
/// and two independently constructed rings over the same fleet agree
/// on its owner — so a router restart (or a second router over the
/// same backends) places every graph where the first one did.
#[test]
fn router_placement_is_deterministic() {
    use gms::router::{HashRing, RingMember};

    let fleet: Vec<RingMember> = (0..4)
        .map(|i| RingMember {
            name: format!("10.1.0.{i}:7400"),
            weight: 2 + i % 3,
        })
        .collect();
    let ring_a = HashRing::build(fleet.iter().map(Some));
    let ring_b = HashRing::build(fleet.iter().map(Some));

    let fp_a = gms::platform::kernel::fingerprint(&small_graph());
    let fp_b = gms::platform::kernel::fingerprint(&small_graph());
    assert_eq!(fp_a, fp_b, "content fingerprints are stable");
    assert_eq!(
        ring_a.owner(fp_a),
        ring_b.owner(fp_b),
        "identical fleets place identical graphs identically"
    );
    // And across many fingerprints, not just this one.
    for key in 0..5_000u64 {
        assert_eq!(ring_a.owner(key), ring_b.owner(key));
    }
}

/// Fleet-wide `stats` through the router: per-backend counter blocks
/// sum into the fleet aggregate, and the graph table names a live
/// shard for every loaded graph.
#[test]
fn router_stats_merge_fleet_counters() {
    let backends: Vec<ServerHandle> = (0..2)
        .map(|_| Server::start(ServeConfig::default()).unwrap())
        .collect();
    let router = Router::start(RouterConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        ..RouterConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let mut text = Vec::new();
    gms::graph::io::write_edge_list(&small_graph(), &mut text).unwrap();
    let text = std::str::from_utf8(&text).unwrap();
    for name in ["a", "b", "c"] {
        let loaded = client.load_inline(name, "edge-list", text).unwrap();
        assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));
        let run = client.run("triangle-count", name, &[]).unwrap();
        assert_eq!(run.get("ok"), Some(&Json::Bool(true)));
    }

    let stats = client
        .request(&Json::object([("op", Json::from("stats"))]))
        .unwrap();
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));

    // Fleet aggregates are the sum of the per-backend blocks.
    let backend_blocks = stats.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(backend_blocks.len(), 2);
    let sum_of = |key: &str| -> i64 {
        backend_blocks
            .iter()
            .filter_map(|b| {
                b.get("server")
                    .and_then(|s| s.get(key))
                    .and_then(Json::as_i64)
            })
            .sum()
    };
    let fleet_server = stats.get("fleet").and_then(|f| f.get("server")).unwrap();
    for key in ["requests", "completed", "rejected", "malformed"] {
        assert_eq!(
            fleet_server.get(key).and_then(Json::as_i64),
            Some(sum_of(key)),
            "fleet {key} is the sum of the shards"
        );
    }
    assert!(
        fleet_server
            .get("completed")
            .and_then(Json::as_i64)
            .unwrap()
            >= 3,
        "the three runs completed somewhere in the fleet"
    );

    // The graph table is fleet-wide and every graph has a live home.
    let graphs = stats.get("graphs").and_then(Json::as_array).unwrap();
    assert_eq!(graphs.len(), 3);
    let fleet_addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    for graph in graphs {
        let shard = graph.get("shard").and_then(Json::as_str).unwrap();
        assert!(fleet_addrs.iter().any(|a| a == shard));
    }

    router.shutdown();
    router.join();
    for backend in backends {
        let mut c = Client::connect(backend.addr()).unwrap();
        let _ = c.shutdown();
        backend.join();
    }
}

/// Acceptance: two clients with 4:1 weights hammering a one-worker
/// server under a shared deadline complete requests in at least a
/// 2:1 ratio — weighted-fair scheduling, not FIFO arrival order.
/// Per-mutation cost is calibrated first so the deadline and backlog
/// sizes adapt to the machine running the test.
#[test]
fn weighted_clients_split_a_saturated_server_by_weight() {
    use gms::serve::Client;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Instant;

    let graph = gms::gen::gnp(20_000, 0.0005, 11);
    let mut text = Vec::new();
    gms::graph::io::write_edge_list(&graph, &mut text).unwrap();
    let text = String::from_utf8(text).unwrap();

    // Calibrate: how long does one single-edge mutation cost here?
    let unit_ms = {
        let handle = Server::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut admin = Client::connect(handle.addr()).unwrap();
        admin.load_inline("g", "edge-list", &text).unwrap();
        let started = Instant::now();
        for i in 0..4u32 {
            admin.add_edges("g", &[(i, i + 10_000)]).unwrap();
        }
        admin.shutdown().unwrap();
        handle.join();
        (started.elapsed().as_secs_f64() * 1000.0 / 4.0).max(0.1)
    };
    // A deadline dozens of mutations deep (ratio granularity), with
    // per-client backlogs comfortably outlasting it (saturation).
    let deadline_ms = ((40.0 * unit_ms) as u64).max(250);
    let per_client = ((2.0 * deadline_ms as f64 / unit_ms).ceil() as usize).clamp(80, 4000);

    let handle = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 2 * per_client + 64,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut admin = Client::connect(handle.addr()).unwrap();
    admin.load_inline("g", "edge-list", &text).unwrap();

    // Each client pipelines its whole backlog of distinct single-edge
    // mutations (uncacheable, so every request costs real work), then
    // counts how many completed before the shared deadline expired
    // the rest in the queue.
    let addr = handle.addr();
    let contest = |name: &'static str, weight: u32, base: usize| {
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            for k in 0..per_client {
                let (a, b) = (4 * k + base, 4 * k + base + 1);
                let line = format!(
                    "{{\"v\":1,\"op\":\"add_edges\",\"graph\":\"g\",\"edges\":[[{a},{b}]],\
                     \"deadline_ms\":{deadline_ms},\"client\":\"{name}\",\"weight\":{weight}}}\n"
                );
                writer.write_all(line.as_bytes()).unwrap();
            }
            writer.flush().unwrap();
            let mut completed = 0usize;
            let mut line = String::new();
            for _ in 0..per_client {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let response = Json::parse(line.trim()).unwrap();
                if response.get("ok") == Some(&Json::Bool(true)) {
                    completed += 1;
                }
            }
            completed
        })
    };
    let heavy = contest("heavy", 4, 0);
    let light = contest("light", 1, 2);
    let heavy_ok = heavy.join().unwrap();
    let light_ok = light.join().unwrap();

    assert!(heavy_ok >= 1, "the favored client completed work");
    assert!(
        heavy_ok + light_ok < 2 * per_client,
        "the deadline cut the backlog (saturation held): {heavy_ok} + {light_ok}"
    );
    assert!(
        heavy_ok >= 2 * light_ok.max(1),
        "4:1 weights should yield at least 2:1 service, got {heavy_ok}:{light_ok}"
    );

    admin.shutdown().unwrap();
    handle.join();
}
