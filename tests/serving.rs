//! Serving-layer integration: N concurrent sessions hammering one
//! shared [`ResultCache`] — single-flight deduplication of identical
//! in-flight requests, cross-session hits, invalidation on reload —
//! plus one facade-level round trip through the `gms-serve` TCP
//! front end.

use gms::prelude::*;
use gms::serve::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A kernel that counts its own executions and is deliberately slow,
/// so concurrently arriving identical requests overlap reliably.
struct CountingKernel {
    executions: Arc<AtomicUsize>,
    delay: Duration,
}

impl Kernel for CountingKernel {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn category(&self) -> Category {
        Category::Pattern
    }

    fn about(&self) -> &'static str {
        "execution-counting test kernel"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::int("x", 0, "distinguishes requests")]
    }

    fn run(&self, _graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        Ok(Outcome::new(
            "counting",
            100 + params.get_int("x", 0) as u64,
        ))
    }
}

fn counting_registry(executions: &Arc<AtomicUsize>, delay: Duration) -> Registry {
    let mut registry = Registry::empty();
    registry.register(Box::new(CountingKernel {
        executions: Arc::clone(executions),
        delay,
    }));
    registry
}

fn small_graph() -> CsrGraph {
    gms::gen::planted_cliques(100, 0.04, 2, 5, 13).0
}

#[test]
fn identical_inflight_requests_execute_once_across_sessions() {
    let executions = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(ResultCache::new(64));
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let executions = Arc::clone(&executions);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut session = Session::with_registry_and_cache(
                    counting_registry(&executions, Duration::from_millis(60)),
                    cache,
                );
                let g = session.add_graph(small_graph());
                barrier.wait();
                session.run("counting", g, &Params::new()).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<Outcome> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "single-flight: one leader, everyone else coalesces"
    );
    assert_eq!(outcomes.iter().filter(|o| !o.cached).count(), 1);
    assert!(outcomes.iter().all(|o| o.patterns == 100));
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits as usize, n - 1);
    assert!(
        stats.cross_hits >= 1,
        "hits landed on sessions that did not pay: {stats:?}"
    );
    assert!(
        stats.coalesced >= 1,
        "at least one request waited for the in-flight leader: {stats:?}"
    );
}

#[test]
fn distinct_requests_all_execute() {
    let executions = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(ResultCache::new(64));
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|i| {
            let executions = Arc::clone(&executions);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut session = Session::with_registry_and_cache(
                    counting_registry(&executions, Duration::from_millis(5)),
                    cache,
                );
                let g = session.add_graph(small_graph());
                barrier.wait();
                session
                    .run("counting", g, &Params::new().with("x", i as i64))
                    .unwrap()
            })
        })
        .collect();
    let outcomes: Vec<Outcome> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(executions.load(Ordering::SeqCst), n, "no false sharing");
    assert!(outcomes.iter().all(|o| !o.cached));
    let mut patterns: Vec<u64> = outcomes.iter().map(|o| o.patterns).collect();
    patterns.sort_unstable();
    assert_eq!(patterns, (100..100 + n as u64).collect::<Vec<_>>());
    assert_eq!(cache.stats().entries, n);
}

#[test]
fn sequential_cross_session_hits_and_per_session_stats() {
    let cache = Arc::new(ResultCache::new(64));
    let mut payer = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let mut rider = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let pg = payer.add_graph(small_graph());
    let rg = rider.add_graph(small_graph());

    let paid = payer.run("triangle-count", pg, &Params::new()).unwrap();
    let served = rider.run("triangle-count", rg, &Params::new()).unwrap();
    assert!(!paid.cached && served.cached);
    assert!(served.same_result(&paid));
    assert_eq!(payer.stats(), SessionStats { hits: 0, misses: 1 });
    assert_eq!(rider.stats(), SessionStats { hits: 1, misses: 0 });
    assert_eq!(cache.stats().cross_hits, 1);
}

#[test]
fn invalidation_on_reload_forces_recomputation() {
    let executions = Arc::new(AtomicUsize::new(0));
    let mut session = Session::with_registry_and_cache(
        counting_registry(&executions, Duration::ZERO),
        Arc::new(ResultCache::new(64)),
    );
    let g = session.add_graph(small_graph());
    session.run("counting", g, &Params::new()).unwrap();
    assert_eq!(executions.load(Ordering::SeqCst), 1);

    // Reload with different content: cached outcome is invalidated.
    session
        .replace_graph(g, gms::gen::gnp(80, 0.05, 21))
        .unwrap();
    assert_eq!(session.cached_outcomes(), 0);
    assert_eq!(session.cache_stats().invalidated, 1);
    let after = session.run("counting", g, &Params::new()).unwrap();
    assert!(!after.cached);
    assert_eq!(executions.load(Ordering::SeqCst), 2);

    // Reload with identical content: nothing invalidated, still hot.
    session
        .replace_graph(g, gms::gen::gnp(80, 0.05, 21))
        .unwrap();
    let hit = session.run("counting", g, &Params::new()).unwrap();
    assert!(hit.cached);
    assert_eq!(executions.load(Ordering::SeqCst), 2);
}

#[test]
fn batch_runner_rides_the_shared_cache() {
    let cache = Arc::new(ResultCache::new(64));
    let mut a = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let mut b = Session::with_registry_and_cache(Registry::with_builtins(), Arc::clone(&cache));
    let ga = a.add_graph(small_graph());
    let gb = b.add_graph(small_graph());

    let requests = |g: GraphHandle| vec![BatchRequest::new("triangle-count", g, Params::new())];
    let first = BatchRunner::new(2).run(&mut a, &requests(ga));
    let second = BatchRunner::new(2).run(&mut b, &requests(gb));
    assert!(!first[0].as_ref().unwrap().cached);
    assert!(
        second[0].as_ref().unwrap().cached,
        "a batch on session B reuses session A's batch results"
    );
    assert!(cache.stats().cross_hits >= 1);
}

#[test]
fn facade_serves_over_tcp() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut text = Vec::new();
    gms::graph::io::write_edge_list(&small_graph(), &mut text).unwrap();
    let loaded = client
        .load_inline("g", "edge-list", std::str::from_utf8(&text).unwrap())
        .unwrap();
    assert_eq!(loaded.get("ok"), Some(&Json::Bool(true)));

    // The server answer matches the in-process session answer.
    let mut session = Session::new();
    let local = session.add_graph(small_graph());
    let expected = session
        .run("triangle-count", local, &Params::new())
        .unwrap();
    let remote = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(
        remote.get("patterns").and_then(Json::as_i64),
        Some(expected.patterns as i64),
        "wire answers equal in-process answers"
    );

    client.shutdown().unwrap();
    handle.join();
}
