//! Cross-crate consistency: independent implementations in different
//! crates must agree on overlapping quantities (triangles three ways,
//! cliques vs isomorphism counts, cores vs cliques, ...).

use gms::matching::{count_embeddings, IsoOptions, LabeledGraph};
use gms::order::{degeneracy_order, triangle_count};
use gms::pattern::{triangle_count_node_iterator, triangle_count_rank_merge};
use gms::prelude::*;

fn factorial(k: u64) -> u64 {
    (1..=k).product()
}

#[test]
fn triangles_three_ways() {
    for seed in 0..3 {
        let graph = gms::gen::gnp(150, 0.07, seed);
        let a = triangle_count(&graph); // gms-order
        let b = triangle_count_rank_merge(&graph); // gms-pattern
        let sg: SetGraph<RoaringSet> = SetGraph::from_csr(&graph);
        let c = triangle_count_node_iterator(&sg); // gms-pattern, set-centric
        let d = k_clique_count(&graph, 3, &KcConfig::default()).count; // Algorithm 7
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(a, c, "seed {seed}");
        assert_eq!(a, d, "seed {seed}");
    }
}

#[test]
fn kclique_count_equals_unlabeled_isomorphism_over_automorphisms() {
    // #embeddings of K_k = (#k-cliques) × k!, since every ordering of a
    // clique is a distinct mapping.
    let graph = gms::gen::gnp(40, 0.3, 4);
    let target = LabeledGraph::unlabeled(graph.clone());
    for k in 3..=4u64 {
        let cliques = k_clique_count(&graph, k as usize, &KcConfig::default()).count;
        let query = LabeledGraph::unlabeled(gms::gen::complete(k as usize));
        let embeddings = count_embeddings(&query, &target, &IsoOptions::default());
        assert_eq!(embeddings, cliques * factorial(k), "k = {k}");
    }
}

#[test]
fn largest_maximal_clique_bounded_by_degeneracy() {
    for seed in 0..3 {
        let graph = gms::gen::kronecker_default(9, 7, seed);
        let bk = BkVariant::GmsAdg.run(&graph);
        let d = degeneracy_order(&graph).degeneracy;
        assert!(
            bk.largest <= d + 1,
            "clique size {} exceeds d+1 = {}",
            bk.largest,
            d + 1
        );
        // And the max-clique size equals the largest k with a nonzero
        // k-clique count.
        if bk.largest >= 2 {
            assert!(k_clique_count(&graph, bk.largest, &KcConfig::default()).count > 0);
            assert_eq!(
                k_clique_count(&graph, bk.largest + 1, &KcConfig::default()).count,
                0
            );
        }
    }
}

#[test]
fn kcore_contains_all_large_cliques() {
    let (graph, _) = gms::gen::planted_cliques(300, 0.01, 3, 7, 9);
    // Every 7-clique lives inside the 6-core.
    let core: std::collections::HashSet<NodeId> = gms::order::k_core_by_peeling(&graph, 6)
        .into_iter()
        .collect();
    let outcome = BkVariant::GmsDgr.run_with(&graph, true);
    for clique in outcome.cliques.unwrap() {
        if clique.len() >= 7 {
            for v in clique {
                assert!(core.contains(&v), "clique vertex {v} outside 6-core");
            }
        }
    }
}

#[test]
fn coloring_bounded_by_clique_and_degeneracy() {
    let graph = gms::gen::gnp(150, 0.08, 6);
    let dgr = degeneracy_order(&graph);
    let mut reversed = dgr.rank.order();
    reversed.reverse();
    let colors = gms::opt::greedy_coloring(&graph, &Rank::from_order(&reversed));
    let used = gms::opt::verify_coloring(&graph, &colors).expect("proper");
    // χ ≥ ω (clique number) and smallest-last greedy ≤ d + 1.
    let omega = BkVariant::GmsAdg.run(&graph).largest;
    assert!(used >= omega, "colors {used} < clique number {omega}");
    assert!(used <= dgr.degeneracy + 1);
}

#[test]
fn similarity_common_neighbors_equals_triangles_on_edges() {
    // Σ_{(u,v) ∈ E} |N(u) ∩ N(v)| counts each triangle 3 times.
    let graph = gms::gen::gnp(100, 0.1, 8);
    let sg: SetGraph<SortedVecSet> = SetGraph::from_csr(&graph);
    let total: f64 = graph
        .edges_undirected()
        .map(|(u, v)| gms::learn::similarity(&sg, SimilarityMeasure::CommonNeighbors, u, v))
        .sum();
    assert_eq!(total as u64, 3 * triangle_count(&graph));
}

#[test]
fn clique_star_satellites_match_isomorphism_counts_on_k5() {
    // Sanity chain across three crates on K5: C(5,3)=10 triangles,
    // each with 2 satellites.
    let g = gms::gen::complete(5);
    let stars = gms::pattern::k_clique_stars(&g, 3, 1, &KcConfig::default());
    assert_eq!(stars.len(), 10);
    assert!(stars.iter().all(|s| s.satellites.len() == 2));
}

#[test]
fn mincut_of_planted_partition_respects_structure() {
    // Two dense blocks with few cross edges: the min cut is at most
    // the cross-edge count (and nonzero when connected).
    let (graph, truth) = gms::gen::planted_partition(60, 2, 0.5, 0.02, 12);
    let cross = graph
        .edges_undirected()
        .filter(|&(u, v)| truth[u as usize] != truth[v as usize])
        .count();
    if cross > 0 {
        let cut = gms::opt::min_cut(&graph, 40, 9);
        assert!(cut <= cross, "cut {cut} > cross edges {cross}");
    }
}
