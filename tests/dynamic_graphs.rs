//! Dynamic graphs: batched edge mutations held against from-scratch
//! rebuilds. The central device is a **mutate-vs-rebuild oracle**: a
//! deterministic pseudo-random mutation sequence is applied twice —
//! once through [`Session::mutate_edges`] (CSR patching plus
//! delta-aware cache migration), once by mirroring the edge set in a
//! `BTreeSet` and rebuilding a CSR from scratch — and the two must
//! agree on fingerprints and on every kernel answer, across dozens
//! of generated graphs. On top of the oracle: a provable-survival
//! check (a mutation a kernel's declared [`DeltaSensitivity`] cannot
//! affect keeps its cache entry), and the replace-mid-batch stress
//! that pins the epoch guard (a kernel finishing *after* its
//! graph's content was invalidated must not resurrect the entry).
//!
//! [`DeltaSensitivity`]: gms::platform::kernel::DeltaSensitivity

use gms::prelude::*;
use std::collections::BTreeSet;

/// A canonical undirected edge, `u <= v`.
type Edge = (NodeId, NodeId);
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// Deterministic pseudo-random stream (splitmix64) — the tests carry
/// their own generator so mutation sequences are reproducible.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Canonical undirected pair.
fn canon(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// The mirror the session is checked against: a plain edge set plus
/// a from-scratch CSR rebuild of it.
fn rebuild(n: usize, edges: &BTreeSet<(NodeId, NodeId)>) -> CsrGraph {
    let list: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
    CsrGraph::from_undirected_edges(n, &list)
}

/// 24 structurally varied graphs: sparse/denser ER, planted cliques,
/// grids (which have cut vertices and no triangles).
fn generated_graphs() -> Vec<CsrGraph> {
    let mut graphs = Vec::new();
    for i in 0..10 {
        graphs.push(gms::gen::gnp(
            60 + 15 * i,
            0.05 + 0.01 * (i % 3) as f64,
            100 + i as u64,
        ));
    }
    for i in 0..10 {
        graphs.push(gms::gen::planted_cliques(70 + 10 * i, 0.04, 2, 5, 200 + i as u64).0);
    }
    for i in 0..4 {
        graphs.push(gms::gen::grid(4 + i, 5 + i));
    }
    graphs
}

/// One pseudo-random batch against the current edge set: up to 5
/// removals sampled from the live edges, up to 5 additions sampled
/// from all pairs (rounds alternate removal-only / add-only / mixed,
/// so both the k-core localized re-peel and its full-recompute
/// fallback are exercised).
fn random_batch(
    n: usize,
    edges: &BTreeSet<(NodeId, NodeId)>,
    round: usize,
    state: &mut u64,
) -> (Vec<Edge>, Vec<Edge>) {
    let mut remove = Vec::new();
    let mut add = Vec::new();
    if round % 3 != 1 && !edges.is_empty() {
        let live: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
        for _ in 0..5 {
            remove.push(live[(next_u64(state) % live.len() as u64) as usize]);
        }
    }
    if !round.is_multiple_of(3) {
        for _ in 0..5 {
            let u = (next_u64(state) % n as u64) as NodeId;
            let v = (next_u64(state) % n as u64) as NodeId;
            if u != v {
                add.push(canon(u, v));
            }
        }
    }
    (add, remove)
}

/// The k-core payload of an outcome, or a panic with context.
fn core_of(outcome: &Outcome) -> Vec<NodeId> {
    match &outcome.payload {
        Payload::VertexGroups(groups) => groups.first().cloned().unwrap_or_default(),
        other => panic!("k-core payload is vertex groups, got {other:?}"),
    }
}

#[test]
fn mutate_vs_rebuild_oracle_over_generated_graphs() {
    let mut state = 0x5eed_u64;
    let mut refreshed_total = 0usize;
    let mut invalidated_total = 0usize;
    let graphs = generated_graphs();
    assert!(graphs.len() >= 20, "the oracle must cover >= 20 graphs");
    for (index, graph) in graphs.into_iter().enumerate() {
        let n = graph.num_vertices();
        // The independent mirror of what the session should hold.
        let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for v in 0..n as NodeId {
            for u in graph.neighbors(v) {
                edges.insert(canon(v, u));
            }
        }
        let mut session = Session::new();
        let handle = session.add_graph(graph);
        // Warm the cache so mutations have entries to migrate.
        let params = Params::new();
        session.run("triangle-count", handle, &params).unwrap();
        session.run("k-core", handle, &params).unwrap();
        for round in 0..3 {
            let (add, remove) = random_batch(n, &edges, round, &mut state);
            for pair in &remove {
                edges.remove(pair);
            }
            for pair in &add {
                edges.insert(*pair);
            }
            let rebuilt = rebuild(n, &edges);
            let outcome = session.mutate_edges(handle, &add, &remove).unwrap();
            refreshed_total += outcome.cache.refreshed;
            invalidated_total += outcome.cache.invalidated;
            assert_eq!(
                session.graph_fingerprint(handle).unwrap(),
                gms::platform::kernel::fingerprint(&rebuilt),
                "graph {index} round {round}: patched CSR == from-scratch rebuild"
            );
            // Kernel answers after the mutation — whether served from
            // an incrementally refreshed cache entry or recomputed —
            // must match a from-scratch run on the rebuilt graph.
            let triangles = session.run("triangle-count", handle, &params).unwrap();
            assert_eq!(
                triangles.patterns,
                gms::pattern::triangle_count_rank_merge(&rebuilt),
                "graph {index} round {round}: triangle count"
            );
            let core = session.run("k-core", handle, &params).unwrap();
            let mut expected = gms::order::k_core_by_peeling(&rebuilt, 2);
            expected.sort_unstable();
            assert_eq!(
                core_of(&core),
                expected,
                "graph {index} round {round}: 2-core membership"
            );
            assert_eq!(core.patterns, expected.len() as u64);
        }
        assert_eq!(
            session.graph_lineage(handle).unwrap().version,
            3,
            "graph {index}: every effective batch bumps the version"
        );
    }
    // The oracle must have exercised both incremental maintenance
    // (triangle recounts, removal-only k-core re-peels) and the
    // full-recompute fallback (k-core under additions).
    assert!(
        refreshed_total >= 1,
        "incremental refresh never ran ({refreshed_total})"
    );
    assert!(
        invalidated_total >= 1,
        "the full-recompute fallback never ran ({invalidated_total})"
    );
}

#[test]
fn declared_insensitivity_provably_survives_mutations() {
    let mut session = Session::new();
    let graph = gms::gen::planted_cliques(150, 0.04, 2, 6, 11).0;
    let handle = session.add_graph(graph.clone());
    let params = Params::new();
    // Three cached entries with three sensitivities: order-random is
    // a pure function of the vertex count and seed (VertexCount —
    // edge mutations provably cannot change it), triangle-count
    // refreshes incrementally (VertexNeighborhood), min-cut is
    // Global and must fall back to recompute.
    let order_before = session.run("order-random", handle, &params).unwrap();
    session.run("triangle-count", handle, &params).unwrap();
    session.run("min-cut", handle, &params).unwrap();

    let v = (0..graph.num_vertices() as NodeId)
        .find(|&v| graph.degree(v) >= 1)
        .expect("an edge to remove");
    let u = graph.neighbors(v).next().unwrap();
    let outcome = session.remove_edges(handle, &[(v, u)]).unwrap();
    assert_eq!(outcome.cache.survived, 1, "order-random survived verbatim");
    assert_eq!(outcome.cache.refreshed, 1, "triangle-count refreshed");
    assert_eq!(outcome.cache.invalidated, 1, "min-cut invalidated");

    // The surviving entry is served — same answer, zero kernel time
    // — under the *new* fingerprint.
    let order_after = session.run("order-random", handle, &params).unwrap();
    assert!(order_after.cached, "survivor must be a cache hit");
    assert_eq!(order_after.patterns, order_before.patterns);
    let stats = session.cache_stats();
    assert_eq!(stats.migrated, 2, "survived + refreshed were re-keyed");
    assert_eq!(stats.invalidated, 1);
}

/// A kernel whose first execution blocks on two barriers, so the
/// test can interleave an invalidation *between* the kernel starting
/// and its result landing in the cache. Later executions run
/// unimpeded.
struct GatedKernel {
    started: Arc<Barrier>,
    release: Arc<Barrier>,
    gate_armed: AtomicBool,
    executions: Arc<AtomicUsize>,
}

impl Kernel for GatedKernel {
    fn name(&self) -> &'static str {
        "gated"
    }
    fn category(&self) -> Category {
        Category::Pattern
    }
    fn about(&self) -> &'static str {
        "barrier-gated test kernel"
    }
    fn params(&self) -> Vec<ParamSpec> {
        Vec::new()
    }
    fn run(&self, _graph: &CsrGraph, _params: &Params) -> Result<Outcome, KernelError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        if self.gate_armed.swap(false, Ordering::SeqCst) {
            self.started.wait();
            self.release.wait();
        }
        Ok(Outcome::new("gated", 7))
    }
}

/// The satellite-1 regression: a graph's content is replaced (and
/// its cached outcomes invalidated) while a `BatchRunner` job for
/// the old content is still executing. The late insert used to land
/// after the invalidation — a stale entry for content nothing serves
/// anymore, served verbatim if the content ever came back. The cache
/// now timestamps invalidations and refuses late inserts.
#[test]
fn replacing_mid_batch_never_resurrects_stale_results() {
    let started = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    let executions = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(ResultCache::new(64));
    let content = gms::gen::gnp(100, 0.05, 42);

    let worker = {
        let (started, release) = (Arc::clone(&started), Arc::clone(&release));
        let executions = Arc::clone(&executions);
        let cache = Arc::clone(&cache);
        let content = content.clone();
        std::thread::spawn(move || {
            let mut registry = Registry::empty();
            registry.register(Box::new(GatedKernel {
                started,
                release,
                gate_armed: AtomicBool::new(true),
                executions,
            }));
            let mut session = Session::with_registry_and_cache(registry, cache);
            let handle = session.add_graph(content);
            let results = BatchRunner::new(2).run(
                &mut session,
                &[BatchRequest::new("gated", handle, Params::new())],
            );
            let outcome = results.into_iter().next().unwrap().unwrap();
            (session, handle, outcome)
        })
    };

    // Wait until the batch job is executing, then replace the
    // content out from under it through another session sharing the
    // cache — exactly the serve-layer reload race.
    started.wait();
    let mut replacer = Session::with_registry_and_cache(Registry::empty(), Arc::clone(&cache));
    let handle = replacer.add_graph(content);
    replacer
        .replace_graph(handle, gms::gen::gnp(100, 0.05, 43))
        .unwrap();
    release.wait();

    let (mut session, handle, outcome) = worker.join().unwrap();
    assert_eq!(outcome.patterns, 7, "the in-flight job still answers");
    let stats = cache.stats();
    assert!(
        stats.stale_drops >= 1,
        "the late insert must be dropped, not cached: {stats:?}"
    );
    assert_eq!(
        cache.len(),
        0,
        "no entry survives for content that was invalidated mid-flight"
    );
    // Proof there is no stale window: the next identical request
    // recomputes instead of serving the dropped result.
    let again = session.run("gated", handle, &Params::new()).unwrap();
    assert!(!again.cached);
    assert_eq!(executions.load(Ordering::SeqCst), 2);
}
