//! Integration: every graph representation in the suite serves the
//! same access interface (paper modularity ①–②), so mining results
//! must be identical no matter which storage backs the graph — and
//! relabelings must interact with compression the way §B.2 predicts.

use gms::graph::compress::K2Tree;
use gms::graph::{AdjacencyMatrix, BitPackedCsr, CompressedCsr};
use gms::order::{bfs_order, degree_order_desc, encoded_gap_bytes, random_order};
use gms::prelude::*;

fn gallery() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", gms::gen::gnp(150, 0.06, 11)),
        ("kron", gms::gen::kronecker_default(8, 6, 12)),
        ("grid", gms::gen::grid(12, 12)),
        ("planted", gms::gen::planted_cliques(150, 0.02, 2, 7, 13).0),
    ]
}

#[test]
fn all_representations_agree_on_the_access_interface() {
    for (name, g) in gallery() {
        let am = AdjacencyMatrix::from_csr(&g);
        let packed = BitPackedCsr::from_csr(&g);
        let compressed = CompressedCsr::from_csr(&g);
        let k2 = K2Tree::from_graph(&g);
        for v in g.vertices() {
            let expected: Vec<NodeId> = g.neighbors_slice(v).to_vec();
            assert_eq!(am.neighbors(v).collect::<Vec<_>>(), expected, "{name} AM");
            assert_eq!(
                packed.neighbors(v).collect::<Vec<_>>(),
                expected,
                "{name} packed"
            );
            assert_eq!(
                compressed.neighbors(v).collect::<Vec<_>>(),
                expected,
                "{name} compressed"
            );
        }
        for u in g.vertices().step_by(7) {
            for v in g.vertices().step_by(11) {
                let truth = g.has_edge(u, v);
                assert_eq!(am.has_edge(u, v), truth, "{name} AM edge");
                assert_eq!(packed.has_edge(u, v), truth, "{name} packed edge");
                assert_eq!(k2.has_edge(u, v), truth, "{name} k2 edge");
            }
        }
    }
}

#[test]
fn mining_results_are_representation_independent() {
    for (name, g) in gallery() {
        let direct = BkVariant::GmsDgr.run(&g).clique_count;
        let via_packed = BkVariant::GmsDgr
            .run(&BitPackedCsr::from_csr(&g).to_csr())
            .clique_count;
        let via_matrix = BkVariant::GmsDgr
            .run(&AdjacencyMatrix::from_csr(&g).to_csr())
            .clique_count;
        assert_eq!(direct, via_packed, "{name}");
        assert_eq!(direct, via_matrix, "{name}");
    }
}

#[test]
fn locality_relabelings_shrink_gap_encodings() {
    // §B.2: relabelings change compression effectiveness. On a mesh,
    // BFS order must beat a random permutation; on a skewed graph,
    // hub-first (degree-descending, "degree-minimizing") must beat
    // random too.
    let grid = gms::gen::grid(25, 25);
    let bfs = encoded_gap_bytes(&grid, &bfs_order(&grid, 0));
    let rnd = encoded_gap_bytes(&grid, &random_order(625, 4));
    assert!(bfs < rnd, "grid: bfs {bfs} vs random {rnd}");

    let kron = gms::gen::kronecker_default(10, 8, 9);
    let hubs_first = encoded_gap_bytes(&kron, &degree_order_desc(&kron));
    let rnd = encoded_gap_bytes(&kron, &random_order(1024, 4));
    assert!(hubs_first < rnd, "kron: hubs {hubs_first} vs random {rnd}");
}

#[test]
fn compression_sizes_track_structure() {
    // A clustered/local graph compresses harder than a random one of
    // the same size under gap+varint.
    let local = gms::gen::grid(30, 30); // 900 vertices, local edges
    let shuffled = {
        use gms::order::random_order;
        gms::graph::relabel(&local, &random_order(900, 8))
    };
    let ratio =
        |g: &CsrGraph| CompressedCsr::from_csr(g).heap_bytes() as f64 / g.heap_bytes() as f64;
    assert!(
        ratio(&local) < ratio(&shuffled),
        "locality must compress better: {} vs {}",
        ratio(&local),
        ratio(&shuffled)
    );
}
