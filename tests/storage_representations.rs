//! Integration: every graph representation in the suite serves the
//! same access interface (paper modularity ①–②), so mining results
//! must be identical no matter which storage backs the graph — and
//! relabelings must interact with compression the way §B.2 predicts.

use gms::graph::compress::K2Tree;
use gms::graph::{AdjacencyMatrix, BitPackedCsr, CompressedCsr};
use gms::order::{bfs_order, degree_order_desc, encoded_gap_bytes, random_order};
use gms::prelude::*;

fn gallery() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", gms::gen::gnp(150, 0.06, 11)),
        ("kron", gms::gen::kronecker_default(8, 6, 12)),
        ("grid", gms::gen::grid(12, 12)),
        ("planted", gms::gen::planted_cliques(150, 0.02, 2, 7, 13).0),
    ]
}

#[test]
fn all_representations_agree_on_the_access_interface() {
    for (name, g) in gallery() {
        let am = AdjacencyMatrix::from_csr(&g);
        let packed = BitPackedCsr::from_csr(&g);
        let compressed = CompressedCsr::from_csr(&g);
        let k2 = K2Tree::from_graph(&g);
        for v in g.vertices() {
            let expected: Vec<NodeId> = g.neighbors_slice(v).to_vec();
            assert_eq!(am.neighbors(v).collect::<Vec<_>>(), expected, "{name} AM");
            assert_eq!(
                packed.neighbors(v).collect::<Vec<_>>(),
                expected,
                "{name} packed"
            );
            assert_eq!(
                compressed.neighbors(v).collect::<Vec<_>>(),
                expected,
                "{name} compressed"
            );
        }
        for u in g.vertices().step_by(7) {
            for v in g.vertices().step_by(11) {
                let truth = g.has_edge(u, v);
                assert_eq!(am.has_edge(u, v), truth, "{name} AM edge");
                assert_eq!(packed.has_edge(u, v), truth, "{name} packed edge");
                assert_eq!(k2.has_edge(u, v), truth, "{name} k2 edge");
            }
        }
    }
}

#[test]
fn mining_results_are_representation_independent() {
    for (name, g) in gallery() {
        let direct = BkVariant::GmsDgr.run(&g).clique_count;
        let via_packed = BkVariant::GmsDgr
            .run(&BitPackedCsr::from_csr(&g).to_csr())
            .clique_count;
        let via_matrix = BkVariant::GmsDgr
            .run(&AdjacencyMatrix::from_csr(&g).to_csr())
            .clique_count;
        assert_eq!(direct, via_packed, "{name}");
        assert_eq!(direct, via_matrix, "{name}");
    }
}

#[test]
fn on_disk_formats_are_equivalent_storage() {
    // Cross-format equivalence oracle: the three dataset formats
    // (SNAP edge list, METIS, .gcsr snapshot — buffered and mmapped)
    // are just one more family of interchangeable storage backends.
    // For the whole gallery, every format must reproduce the CSR
    // exactly, the mmap view must serve the same access interface
    // without materializing the graph, and a mining kernel must not
    // be able to tell the loads apart.
    use gms::graph::io;
    let dir = std::env::temp_dir().join(format!("gms_storage_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, g) in gallery() {
        let mut edge_list = Vec::new();
        io::write_edge_list(&g, &mut edge_list).unwrap();
        let via_text = io::load_undirected_from(edge_list.as_slice()).unwrap();

        let mut metis = Vec::new();
        io::write_metis(&g, &mut metis).unwrap();
        let via_metis = io::load_metis_from(metis.as_slice()).unwrap();

        let path = dir.join(format!("{name}.gcsr"));
        io::save_snapshot(&g, &path).unwrap();
        let mut snapshot_bytes = Vec::new();
        io::write_snapshot(&g, &mut snapshot_bytes).unwrap();
        let via_buffer = io::read_snapshot(&snapshot_bytes).unwrap();
        let mapped = io::MmapSnapshot::open(&path).unwrap();

        for (format, reloaded) in [
            ("edge list", &via_text),
            ("METIS", &via_metis),
            ("snapshot", &via_buffer),
        ] {
            assert_eq!(reloaded, &g, "{name} via {format}");
        }
        // The mmap view serves the access interface in place.
        for v in g.vertices() {
            assert_eq!(mapped.neighbors_slice(v), g.neighbors_slice(v), "{name}");
        }
        for u in g.vertices().step_by(7) {
            for v in g.vertices().step_by(11) {
                assert_eq!(mapped.has_edge(u, v), g.has_edge(u, v), "{name} mmap edge");
            }
        }
        // And mining cannot tell the formats apart.
        let expected = BkVariant::GmsDgr.run(&g).clique_count;
        assert_eq!(
            BkVariant::GmsDgr.run(&via_metis).clique_count,
            expected,
            "{name}"
        );
        assert_eq!(
            BkVariant::GmsDgr.run(&mapped.to_csr()).clique_count,
            expected,
            "{name}"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn locality_relabelings_shrink_gap_encodings() {
    // §B.2: relabelings change compression effectiveness. On a mesh,
    // BFS order must beat a random permutation; on a skewed graph,
    // hub-first (degree-descending, "degree-minimizing") must beat
    // random too.
    let grid = gms::gen::grid(25, 25);
    let bfs = encoded_gap_bytes(&grid, &bfs_order(&grid, 0));
    let rnd = encoded_gap_bytes(&grid, &random_order(625, 4));
    assert!(bfs < rnd, "grid: bfs {bfs} vs random {rnd}");

    let kron = gms::gen::kronecker_default(10, 8, 9);
    let hubs_first = encoded_gap_bytes(&kron, &degree_order_desc(&kron));
    let rnd = encoded_gap_bytes(&kron, &random_order(1024, 4));
    assert!(hubs_first < rnd, "kron: hubs {hubs_first} vs random {rnd}");
}

#[test]
fn compression_sizes_track_structure() {
    // A clustered/local graph compresses harder than a random one of
    // the same size under gap+varint.
    let local = gms::gen::grid(30, 30); // 900 vertices, local edges
    let shuffled = {
        use gms::order::random_order;
        gms::graph::relabel(&local, &random_order(900, 8))
    };
    let ratio =
        |g: &CsrGraph| CompressedCsr::from_csr(g).heap_bytes() as f64 / g.heap_bytes() as f64;
    assert!(
        ratio(&local) < ratio(&shuffled),
        "locality must compress better: {} vs {}",
        ratio(&local),
        ratio(&shuffled)
    );
}
