//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches
//! use — `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`, `black_box` — backed by a simple wall-clock
//! harness: one warm-up batch, then `sample_size` timed batches, with
//! median / min / max per-iteration times printed to stdout. No
//! statistics engine, no HTML reports; good enough for A/B reading
//! until real criterion can be fetched from crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        run_benchmark(&label, self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.criterion.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of a benchmark: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepting plain strings too.
pub trait IntoBenchmarkId {
    /// Converts to the concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    batch: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over an adaptively sized batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate a batch size targeting ~2ms so cheap routines
        // are not drowned by clock-read overhead.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let per_batch = (Duration::from_millis(2).as_nanos() / probe.as_nanos()).clamp(1, 100_000);

        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(routine());
        }
        self.batch = start.elapsed();
        self.iterations = per_batch as u64;
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up batch (discarded), then timed samples.
    let mut bencher = Bencher {
        batch: Duration::ZERO,
        iterations: 1,
    };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        per_iter.push(bencher.batch.as_secs_f64() / bencher.iterations.max(1) as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{label:<48} median {:>12}  min {:>12}  max {:>12}  ({sample_size} samples)",
        format_seconds(median),
        format_seconds(per_iter[0]),
        format_seconds(*per_iter.last().unwrap()),
    );
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark targets, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        let mut group = c.benchmark_group("shim");
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn formats_cover_the_scales() {
        assert!(format_seconds(2.5).ends_with(" s"));
        assert!(format_seconds(2.5e-3).ends_with(" ms"));
        assert!(format_seconds(2.5e-6).ends_with(" µs"));
        assert!(format_seconds(2.5e-9).ends_with(" ns"));
    }
}
