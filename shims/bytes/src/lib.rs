//! Offline stand-in for `bytes`.
//!
//! Only the [`Buf`] read-cursor trait is provided, implemented for
//! `&[u8]` — enough for the varint decoder, which consumes a slice
//! from the front.

/// A readable cursor over bytes, advancing as values are taken.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8;

    /// Skips `count` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (&first, rest) = self.split_first().expect("buffer exhausted");
        *self = rest;
        first
    }

    fn advance(&mut self, count: usize) {
        *self = &self[count..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_advances() {
        let data = [1u8, 2, 3];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.remaining(), 3);
        assert_eq!(buf.get_u8(), 1);
        assert_eq!(buf.get_u8(), 2);
        assert!(buf.has_remaining());
        buf.advance(1);
        assert!(!buf.has_remaining());
    }
}
