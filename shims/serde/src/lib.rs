//! Offline stand-in for `serde`.
//!
//! Supplies the `Serialize` / `Deserialize` names — as marker traits
//! and as re-exported no-op derive macros — so that types annotated
//! for serialization compile without crates.io access. No data
//! format is wired up; swapping in real serde is a manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
