//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors a small property-testing engine with proptest's surface:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, [`Just`], integer-range strategies, tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], `prop_oneof!`,
//! `prop_assert!` / `prop_assert_eq!`, [`ProptestConfig`] and the
//! `proptest!` test macro.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number; rerun
//!   with the same build to reproduce (generation is deterministic,
//!   seeded from the test name).
//! * **No persisted regressions** (`proptest-regressions/` files).
//! * Collection strategies treat the size range as an upper bound on
//!   *attempted* insertions; sets may come out smaller on duplicates,
//!   exactly like real proptest's `btree_set`.

use std::ops::Range;
use std::rc::Rc;

pub mod collection;

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Deterministic RNG driving generation: SplitMix64 seeded from the
/// test name, so every test has a stable stream across runs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG whose stream is a pure function of `test_name`.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            flat_map,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat_map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let intermediate = self.inner.generate(rng);
        (self.flat_map)(intermediate).generate(rng)
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union of the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => i64, i16 => i64, i32 => i64, i64 => i128);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// Uniform choice among strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy,
/// ...) { body }` runs `body` against `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( #[test] fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let run = || {
                    $( let $pat = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic seed; rerun reproduces it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let strategy = (3usize..24, 0u32..200_000);
        for _ in 0..500 {
            let (n, x) = strategy.generate(&mut rng);
            assert!((3..24).contains(&n));
            assert!(x < 200_000);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::for_test("union");
        let strategy = prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            (100u32..110).prop_map(|x| x as u64),
        ];
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                x if x < 10 => low = true,
                x if (100..110).contains(&x) => high = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(low && high);
    }

    #[test]
    fn flat_map_feeds_the_inner_strategy() {
        let mut rng = TestRng::for_test("flat_map");
        let strategy = (1usize..8).prop_flat_map(|n| crate::collection::vec(0u32..10, n..n + 1));
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strategy = crate::collection::btree_set(0u32..1000, 0..50);
        let mut a = TestRng::for_test("determinism");
        let mut b = TestRng::for_test("determinism");
        for _ in 0..20 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works((a, b) in (0u32..50, 0u32..50), extra in 0usize..4) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(extra.min(3), extra);
        }
    }
}
