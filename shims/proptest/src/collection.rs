//! Collection strategies: `vec` and `btree_set`.

use crate::{Strategy, TestRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet`s; `size` bounds the attempted insertions,
/// so duplicates may make the set smaller (as in real proptest).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

fn draw_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty size range");
    size.start + rng.below((size.end - size.start) as u64) as usize
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = draw_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let attempts = draw_len(&self.size, rng);
        let mut set = BTreeSet::new();
        for _ in 0..attempts {
            set.insert(self.element.generate(rng));
        }
        set
    }
}
