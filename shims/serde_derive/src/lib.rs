//! Offline stand-in for `serde_derive`.
//!
//! The derives expand to nothing: nothing in this workspace performs
//! actual serialization yet (stats/report emit CSV and markdown by
//! hand), so `#[derive(Serialize, Deserialize)]` only needs to parse.
//! When real serde is available the shim is swapped out in the
//! workspace manifest and the annotations become live.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
