//! Concrete RNGs. Only [`StdRng`] is provided; it is a SplitMix64
//! generator rather than the ChaCha12 of real `rand`, so streams are
//! deterministic per seed but not identical to upstream `rand`.

use crate::{RngCore, SeedableRng};

/// The standard RNG of this shim: SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble the seed so that nearby seeds (0, 1, 2, ...) start
        // in well-separated regions of the SplitMix64 sequence.
        let state = (seed ^ 0xD1B5_4A32_D192_ED03).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        StdRng { state }
    }
}
