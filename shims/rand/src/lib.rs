//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is SplitMix64 — not cryptographic, but fast, seeded
//! deterministically, and statistically good enough for synthetic
//! graph generation and randomized algorithms (Karger–Stein,
//! Johansson coloring). Determinism per seed is guaranteed across
//! runs and platforms, which the test suite relies on.

use core::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a "standard" distribution
    /// (uniform over the type's range; `f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Wrapping: the full-width inclusive range of a
                // 64-bit type has span 2^64, which wraps to 0 and is
                // handled by the branch below.
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            // Span 2^64 wraps to 0; the fallback branch must handle it
            // without the debug-build add overflowing.
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
            let edge: u8 = rng.gen_range(0u8..=u8::MAX);
            let _ = edge;
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
