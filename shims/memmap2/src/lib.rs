//! Offline stand-in for `memmap2`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the one type the snapshot loader needs: a read-only
//! [`Mmap`] over a [`File`], dereferencing to `&[u8]`. On unix the
//! mapping is a real `mmap(2)` (`PROT_READ`/`MAP_PRIVATE`) issued
//! through the C library every Rust binary already links — no new
//! dependency. Anywhere mapping is unavailable (non-unix targets,
//! zero-length files, or an `mmap` failure) the file is read into an
//! owned buffer instead, so callers never see a platform error for a
//! readable file.
//!
//! Differences from real memmap2, by design:
//!
//! * Only read-only, whole-file maps (`Mmap::map`); no `MmapMut`,
//!   no `MmapOptions` offsets or lengths.
//! * The buffered fallback rewinds the file handle it reads from
//!   (real memmap2 never touches the cursor).
//! * **Alignment guarantee:** the mapped bytes always start on an
//!   8-byte boundary — pages from `mmap`, a `u64`-backed buffer in
//!   the fallback — so zero-copy reinterpretation of little-endian
//!   `u32`/`u64` sections (the `.gcsr` reader) is always possible.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// How the bytes are held.
enum Inner {
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Owned copy of the file. Backed by a `Vec<u64>` so the base
    /// address is 8-byte aligned like a page-aligned mapping.
    Owned { buf: Vec<u64>, len: usize },
}

/// A read-only memory map of an entire file.
pub struct Mmap {
    inner: Inner,
}

// The region is immutable for the lifetime of the value and freed
// exactly once on drop, so shipping it across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// As with real memmap2: the caller must ensure the file is not
    /// truncated or mutated by another process while the map is
    /// alive (the fallback copy is immune, a real mapping is not).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map into the address space",
            ));
        }
        let len = len as usize;

        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr != sys::MAP_FAILED {
                return Ok(Mmap {
                    inner: Inner::Mapped {
                        ptr: ptr.cast::<u8>().cast_const(),
                        len,
                    },
                });
            }
            // Fall through to the owned copy: some filesystems (and
            // all pipes) refuse mmap but read fine.
        }

        let mut reader = file;
        reader.seek(SeekFrom::Start(0))?;
        let mut buf: Vec<u64> = vec![0; len.div_ceil(8)];
        // Viewing the u64 buffer as bytes keeps the 8-byte base
        // alignment the crate docs promise.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
        reader.read_exact(bytes)?;
        Ok(Mmap {
            inner: Inner::Owned { buf, len },
        })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len)
            },
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr.cast_mut().cast(), len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => "mapped",
            Inner::Owned { .. } => "owned",
        };
        f.debug_struct("Mmap")
            .field("kind", &kind)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("memmap2_shim_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("contents", b"hello mapping");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&map[..], b"hello mapping");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", b"");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn base_address_is_eight_byte_aligned() {
        // Both variants promise this; the snapshot reader's zero-copy
        // section views rely on it.
        let path = temp_file("aligned", &[7u8; 4096 + 3]);
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map.as_ptr() as usize % 8, 0);
        assert_eq!(map.len(), 4096 + 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn survives_crossing_threads() {
        let path = temp_file("threads", b"shared bytes");
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        let handle = std::thread::spawn(move || map.len());
        assert_eq!(handle.join().unwrap(), 12);
        std::fs::remove_file(path).ok();
    }
}
