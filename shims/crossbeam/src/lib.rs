//! Offline stand-in for `crossbeam`.
//!
//! Provides `deque::{Injector, Steal}` — the global work-stealing
//! queue the parallel isomorphism driver uses. The real crate is a
//! lock-free CAS queue; this shim is a mutex-guarded `VecDeque`,
//! which has identical semantics (each item stolen exactly once) at
//! somewhat higher contention. Fine for correctness tests and
//! moderate thread counts.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A FIFO injector queue shared between worker threads.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Attempts to take one task from the front.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // A worker panicking mid-push cannot leave the VecDeque in
            // a torn state, so poisoning is safe to ignore.
            self.inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn each_task_stolen_exactly_once() {
            let queue: Injector<u32> = Injector::new();
            for i in 0..1000 {
                queue.push(i);
            }
            let stolen = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| loop {
                        match queue.steal() {
                            Steal::Success(task) => stolen.lock().unwrap().push(task),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    });
                }
            });
            let mut stolen = stolen.into_inner().unwrap();
            stolen.sort_unstable();
            assert_eq!(stolen, (0..1000).collect::<Vec<_>>());
            assert!(queue.is_empty());
        }
    }
}
