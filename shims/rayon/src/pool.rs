//! The work-stealing scheduler behind the `rayon` shim.
//!
//! One persistent [`Registry`] exists per pool width, created lazily
//! on first use and reused for the rest of the process ([`ThreadPool`]
//! handles are cheap views onto the shared registry, so repeated
//! `ThreadPoolBuilder::build` calls — e.g. a scaling sweep — do not
//! leak threads). Each worker owns a Chase–Lev-style deque, realized
//! as a mutex-guarded `VecDeque`: the owner pushes and pops at the
//! back (LIFO, for locality down a `join` spine), thieves take from
//! the front (FIFO, stealing the largest remaining subtrees first).
//!
//! [`join`] is the one scheduling primitive: the caller publishes the
//! second closure on its own deque, runs the first inline, then either
//! pops the second back (nobody wanted it) or — if it was stolen —
//! helps with other queued work until the thief's latch flips. All
//! parallel iterator combinators reduce to recursive range splits over
//! `join`, so any imbalance in one half of a split is rebalanced by
//! idle workers stealing from the other.
//!
//! # Safety model
//!
//! Jobs waiting in a deque are type-erased raw pointers to
//! [`StackJob`]s living on the stack of the thread that called `join`
//! (or [`in_worker`]). That frame never unwinds — by return *or* by
//! panic — until the job's latch is set or the job has been reclaimed
//! unexecuted, which keeps every published pointer valid for exactly
//! as long as another thread can observe it. The latch store is the
//! final access a thief performs on the job.

use std::any::Any;
use std::cell::{RefCell, UnsafeCell};
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// How long a parked worker sleeps before rechecking for work on its
/// own; a pure backstop — pushes notify the condvar under the sleep
/// lock, so wakeups are not normally lost.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------- jobs

/// A type-erased pointer to a job published in a deque.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a `JobRef` is only ever dereferenced via `execute`, and the
// owning stack frame keeps the pointee alive until the job's latch is
// set (see the module-level safety model).
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `job` must stay valid until its latch is set or the ref is
    /// reclaimed via [`Registry::pop_local_if`] without executing.
    unsafe fn new<J: Job>(job: *const J) -> Self {
        JobRef {
            pointer: job as *const (),
            execute_fn: execute_erased::<J>,
        }
    }

    fn execute(self) {
        unsafe { (self.execute_fn)(self.pointer) }
    }
}

trait Job {
    /// # Safety
    /// `this` must point to a live job; called at most once.
    unsafe fn execute(this: *const Self);
}

unsafe fn execute_erased<J: Job>(ptr: *const ()) {
    unsafe { J::execute(ptr as *const J) }
}

// -------------------------------------------------------------- latches

trait Latch {
    /// Marks the job complete. Must be the *last* access to the job's
    /// memory by the executing thread.
    fn set(&self);
}

/// Latch polled by a worker that stays busy while waiting. Once the
/// waiter runs out of work it parks on the registry's condvar, so
/// `set` wakes sleepers through the registry — read *before* the
/// `done` store, because the store releases the job's memory to the
/// owner while the registry outlives every job.
struct SpinLatch<'r> {
    done: AtomicBool,
    registry: &'r Registry,
}

impl<'r> SpinLatch<'r> {
    fn new(registry: &'r Registry) -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
            registry,
        }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch<'_> {
    fn set(&self) {
        let registry: *const Registry = self.registry;
        self.done.store(true, Ordering::Release);
        // SAFETY: `self` may already be gone (the owner observed the
        // store and unwound its frame); the registry is persistent.
        unsafe { (*registry).notify() };
    }
}

/// Latch an external (non-worker) thread blocks on.
struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self
                .cond
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        // The guard must be held across the notify: if the mutex were
        // released first, the waiter could wake spuriously, observe
        // `done`, and pop the stack frame holding this latch before
        // `notify_all` touches the freed condvar.
        let mut done = lock(&self.done);
        *done = true;
        self.cond.notify_all();
    }
}

enum JobResult<R> {
    None,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A job allocated on the publishing thread's stack.
struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    fn new(latch: L, func: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// # Safety
    /// See [`JobRef::new`].
    unsafe fn as_job_ref(&self) -> JobRef {
        unsafe { JobRef::new(self) }
    }

    /// Takes the closure back out, for inline execution after the
    /// job was reclaimed unexecuted.
    fn take_func(&self) -> F {
        unsafe {
            (*self.func.get())
                .take()
                .expect("job function already taken")
        }
    }

    /// Consumes the completed job, yielding its result or resuming
    /// the panic the job captured.
    fn into_result(mut self) -> R {
        match std::mem::replace(self.result.get_mut(), JobResult::None) {
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::None => unreachable!("latch set without a result"),
        }
    }
}

impl<L: Latch, F, R> Job for StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    unsafe fn execute(this: *const Self) {
        let this = unsafe { &*this };
        let func = this.take_func();
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panicked(payload),
        };
        unsafe { *this.result.get() = result };
        // The latch store is the final touch: the instant it lands,
        // the owning stack frame is free to go away.
        this.latch.set();
    }
}

// ------------------------------------------------------------- registry

/// The shared state of one pool width: per-worker deques, the
/// injection queue for external submitters, and the sleep machinery.
pub(crate) struct Registry {
    width: usize,
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injected: Mutex<VecDeque<JobRef>>,
    steals: AtomicU64,
    /// Number of parked (or about-to-park) workers. Publications read
    /// this first and skip the sleep lock entirely when nobody is
    /// parked, keeping the per-task hot path to one deque lock plus
    /// one relaxed load.
    sleeper_count: AtomicUsize,
    /// Parking lock: a worker re-checks for work (and its latch)
    /// *after* raising `sleeper_count` while holding this lock, so a
    /// publication that saw the raised count notifies under the same
    /// lock and a publication that saw zero happened early enough for
    /// the re-check to see its job. Either way no wakeup is lost; the
    /// park timeout is a pure backstop.
    sleep: Mutex<()>,
    wake: Condvar,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Jobs catch panics before they can poison scheduler state.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    fn new(width: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry {
            width,
            deques: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            injected: Mutex::new(VecDeque::new()),
            steals: AtomicU64::new(0),
            sleeper_count: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        if width >= 2 {
            for index in 0..width {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("gms-rayon-{width}-{index}"))
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || worker_main(registry, index))
                    .expect("spawn worker thread");
            }
        }
        registry
    }

    /// Cumulative cross-worker steals since the registry was created.
    pub(crate) fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    fn notify(&self) {
        if self.sleeper_count.load(Ordering::SeqCst) > 0 {
            let _guard = lock(&self.sleep);
            self.wake.notify_all();
        }
    }

    fn push_local(&self, index: usize, job: JobRef) {
        lock(&self.deques[index]).push_back(job);
        self.notify();
    }

    fn inject(&self, job: JobRef) {
        lock(&self.injected).push_back(job);
        self.notify();
    }

    /// Pops the caller's newest task iff it is still `job` (it may
    /// have been stolen in the meantime).
    fn pop_local_if(&self, index: usize, job: JobRef) -> bool {
        let mut deque = lock(&self.deques[index]);
        // Identity is the data pointer: a published job's stack slot
        // is unique among live jobs (fn pointers may be merged by the
        // compiler, so they are deliberately not compared).
        if deque.back().map(|j| j.pointer) == Some(job.pointer) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    /// One scheduling round for worker `index`: own deque LIFO, then
    /// steal FIFO round-robin from siblings, then the injection queue.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = lock(&self.deques[index]).pop_back() {
            return Some(job);
        }
        for offset in 1..self.width {
            let victim = (index + offset) % self.width;
            if let Some(job) = lock(&self.deques[victim]).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        lock(&self.injected).pop_front()
    }

    fn has_visible_work(&self) -> bool {
        if !lock(&self.injected).is_empty() {
            return true;
        }
        self.deques.iter().any(|deque| !lock(deque).is_empty())
    }

    /// Parks the calling thread until work may be available (see the
    /// `sleep` field for why no wakeup can be lost). `still_idle` is
    /// re-checked with the raised sleeper count visible; waiters on a
    /// stolen join pass a probe of their latch so the thief's `set`
    /// (which routes through `notify`) wakes them. Without parking,
    /// waiters polling with short sleeps serialize an oversubscribed
    /// pool through context-switch storms.
    fn park_while(&self, still_idle: impl Fn() -> bool) {
        let guard = lock(&self.sleep);
        self.sleeper_count.fetch_add(1, Ordering::SeqCst);
        if still_idle() {
            let (_guard, _timeout) = self
                .wake
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        self.sleeper_count.fetch_sub(1, Ordering::SeqCst);
    }

    fn park(&self) {
        self.park_while(|| !self.has_visible_work());
    }

    fn park_waiter(&self, latch: &SpinLatch<'_>) {
        self.park_while(|| !latch.probe() && !self.has_visible_work());
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|cell| {
        *cell.borrow_mut() = Some(WorkerCtx {
            registry: Arc::clone(&registry),
            index,
        })
    });
    crate::set_inherited_width(registry.width);
    loop {
        match registry.find_work(index) {
            Some(job) => job.execute(),
            None => registry.park(),
        }
    }
}

// --------------------------------------------------- thread-local state

#[derive(Clone)]
struct WorkerCtx {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

fn current_worker() -> Option<WorkerCtx> {
    WORKER.with(|cell| cell.borrow().clone())
}

// ------------------------------------------------- registry acquisition

static REGISTRIES: OnceLock<Mutex<HashMap<usize, Arc<Registry>>>> = OnceLock::new();

/// The persistent registry for `width`, created (and its workers
/// spawned) on first request.
pub(crate) fn registry_for(width: usize) -> Arc<Registry> {
    let registries = REGISTRIES.get_or_init(Default::default);
    Arc::clone(
        lock(registries)
            .entry(width)
            .or_insert_with(|| Registry::new(width)),
    )
}

/// Pool width used outside any installed pool: `RAYON_NUM_THREADS`
/// when set to a positive integer, the hardware width otherwise.
pub(crate) fn default_width() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|value| value.parse::<usize>().ok())
            .filter(|&width| width > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
    })
}

/// Runs `op` inside a worker of `registry`, blocking the calling
/// thread until it completes. Entry point for parallel work submitted
/// from outside the pool.
pub(crate) fn in_worker<OP, R>(registry: &Arc<Registry>, op: OP) -> R
where
    OP: FnOnce() -> R + Send,
    R: Send,
{
    if registry.width <= 1 {
        return op();
    }
    let job = StackJob::new(LockLatch::new(), op);
    // SAFETY: `job` lives on this stack frame and we block on its
    // latch below before the frame can unwind.
    registry.inject(unsafe { job.as_job_ref() });
    job.latch.wait();
    job.into_result()
}

// ----------------------------------------------------------------- join

/// Runs `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. The second closure is published for stealing while the
/// first runs on the calling thread; if nobody stole it, it runs
/// inline (so a 1-thread pool degrades to exactly `(a(), b())`, in
/// that order). Panics from either closure propagate after both
/// operations have been fully resolved.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some(ctx) => join_on_worker(&ctx, oper_a, oper_b),
        None => {
            let width = crate::current_num_threads();
            if width <= 1 {
                let ra = oper_a();
                let rb = oper_b();
                return (ra, rb);
            }
            let registry = registry_for(width);
            in_worker(&registry, move || join(oper_a, oper_b))
        }
    }
}

fn join_on_worker<A, B, RA, RB>(ctx: &WorkerCtx, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = &ctx.registry;
    let job_b = StackJob::new(SpinLatch::new(registry), oper_b);
    // SAFETY: `job_b` lives on this frame; every path below either
    // reclaims it from the deque unexecuted or waits for its latch
    // before the frame can unwind (including the panic path).
    let job_b_ref = unsafe { job_b.as_job_ref() };
    registry.push_local(ctx.index, job_b_ref);

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    let reclaimed = registry.pop_local_if(ctx.index, job_b_ref);
    if !reclaimed {
        // Stolen: help with other queued work until the thief is done
        // (child stealing — the waiting worker keeps mining). When no
        // work is available, yield briefly, then park on the registry
        // condvar (woken by the thief's latch set), so an
        // oversubscribed pool hands the CPU to the thief instead of
        // burning timeslices polling.
        let mut misses = 0u32;
        while !job_b.latch.probe() {
            match registry.find_work(ctx.index) {
                Some(job) => {
                    misses = 0;
                    job.execute();
                }
                None => {
                    misses += 1;
                    if misses < 8 {
                        std::thread::yield_now();
                    } else {
                        registry.park_waiter(&job_b.latch);
                    }
                }
            }
        }
    }
    let ra = match result_a {
        Ok(ra) => ra,
        // `job_b` is resolved (reclaimed or completed): safe to unwind.
        Err(payload) => panic::resume_unwind(payload),
    };
    let rb = if reclaimed {
        job_b.take_func()()
    } else {
        job_b.into_result()
    };
    (ra, rb)
}
