//! The work-stealing scheduler behind the `rayon` shim.
//!
//! One persistent [`Registry`] exists per pool width, created lazily
//! on first use and reused for the rest of the process ([`ThreadPool`]
//! handles are cheap views onto the shared registry, so repeated
//! `ThreadPoolBuilder::build` calls — e.g. a scaling sweep — do not
//! leak threads). Each worker owns a lock-free Chase–Lev deque: the
//! owner pushes and pops at the bottom (LIFO, for locality down a
//! `join` spine) with plain stores and one fence, thieves take from
//! the top (FIFO, stealing the largest remaining subtrees first) with
//! a CAS. The mutex-guarded deques this shim used before PR 6 cost
//! two lock round-trips per `join` even when nothing was ever stolen;
//! the owner-side protocol below reduces the uncontended push+pop
//! pair to a handful of atomic ops.
//!
//! [`join`] is the one scheduling primitive: the caller publishes the
//! second closure on its own deque, runs the first inline, then either
//! pops the second back (nobody wanted it) or — if it was stolen —
//! helps with other queued work until the thief's latch flips. All
//! parallel iterator combinators reduce to recursive range splits over
//! `join`, so any imbalance in one half of a split is rebalanced by
//! idle workers stealing from the other.
//!
//! # Sleep protocol (no lost wakeups)
//!
//! Workers with nothing to do park on a condvar. The publish side
//! never takes the sleep lock unless someone is actually parked, so
//! the protocol is the classic Dekker / store-buffer pattern and is
//! made airtight with explicit `SeqCst` fences:
//!
//! * **Publisher**: make the job visible (deque slot + bottom store,
//!   or injection queue) → `fence(SeqCst)` → load `sleepers`. If the
//!   load sees zero, the parker's increment is later in the SC order,
//!   so the parker's re-check is guaranteed to see the job. If it
//!   sees a sleeper, the publisher notifies *under the sleep lock*,
//!   which orders it against the parker's lock/wait handoff.
//! * **Parker**: increment `sleepers` (`SeqCst` RMW) → `fence(SeqCst)`
//!   → re-check for work → take the sleep lock → re-check again →
//!   `wait_timeout`. Either the publisher's job is visible to one of
//!   the re-checks, or the publisher saw the raised count and its
//!   notification reaches the waiter through the lock.
//!
//! Job pushes wake **one** sleeper (an awake worker never re-parks
//! while work is visible, so one waker is enough and a full broadcast
//! per push would stampede the pool); latch sets wake **all** sleepers
//! (a `notify_one` could land on an idle worker that sees no *work*
//! and re-parks, stranding the join waiter whose latch flipped). The
//! park timeout remains as a pure backstop and is not load-bearing;
//! `ThreadPool::park_count` / `notify_count` expose the traffic so
//! regressions are observable.
//!
//! # Safety model
//!
//! Jobs waiting in a deque are type-erased pointers to [`StackJob`]s
//! living on the stack of the thread that called `join` (or
//! [`in_worker`]). That frame never unwinds — by return *or* by
//! panic — until the job's latch is set or the job has been reclaimed
//! unexecuted, which keeps every published pointer valid for exactly
//! as long as another thread can observe it. The latch store is the
//! final access a thief performs on the job. Deque slots hold a
//! single pointer word (the job's [`JobHeader`] address, placed first
//! in the `repr(C)` job layout), so slot reads and writes are single
//! atomic accesses and can never tear.

use std::any::Any;
use std::cell::{RefCell, UnsafeCell};
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// How long a parked worker sleeps before rechecking for work on its
/// own. A pure backstop: the fenced publish/park protocol (see the
/// module docs) means no wakeup is ever lost, so this never gates
/// latency — it only bounds the damage if the analysis were wrong.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------- jobs

/// First field of every published job (`repr(C)`), so a single
/// pointer to it both identifies the job and carries its vtable.
/// Deque slots store exactly this pointer — one word, never torn.
pub(crate) struct JobHeader {
    execute_fn: unsafe fn(*const JobHeader),
}

/// A type-erased pointer to a job published in a deque.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobRef(*const JobHeader);

// SAFETY: a `JobRef` is only ever dereferenced via `execute`, and the
// owning stack frame keeps the pointee alive until the job's latch is
// set (see the module-level safety model).
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// The job must stay valid until its latch is set or the ref is
    /// reclaimed from the deque without executing; called at most
    /// once per published ref.
    unsafe fn execute(self) {
        unsafe { ((*self.0).execute_fn)(self.0) }
    }

    fn as_raw(self) -> *mut JobHeader {
        self.0.cast_mut()
    }

    fn from_raw(raw: *mut JobHeader) -> Self {
        JobRef(raw)
    }
}

// -------------------------------------------------------------- latches

trait Latch {
    /// Marks the job complete. Must be the *last* access to the job's
    /// memory by the executing thread.
    fn set(&self);
}

/// Latch polled by a worker that stays busy while waiting. Once the
/// waiter runs out of work it parks on the registry's condvar, so
/// `set` wakes sleepers through the registry — read *before* the
/// `done` store, because the store releases the job's memory to the
/// owner while the registry outlives every job.
struct SpinLatch<'r> {
    done: AtomicBool,
    registry: &'r Registry,
}

impl<'r> SpinLatch<'r> {
    fn new(registry: &'r Registry) -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
            registry,
        }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch<'_> {
    fn set(&self) {
        let registry: *const Registry = self.registry;
        self.done.store(true, Ordering::Release);
        // SAFETY: `self` may already be gone (the owner observed the
        // store and unwound its frame); the registry is persistent.
        // A latch set must reach the one thread waiting on *this*
        // latch, so it broadcasts (see the module docs).
        unsafe { (*registry).notify_all_sleepers() };
    }
}

/// Latch an external (non-worker) thread blocks on.
struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self
                .cond
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        // The guard must be held across the notify: if the mutex were
        // released first, the waiter could wake spuriously, observe
        // `done`, and pop the stack frame holding this latch before
        // `notify_all` touches the freed condvar.
        let mut done = lock(&self.done);
        *done = true;
        self.cond.notify_all();
    }
}

enum JobResult<R> {
    None,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A job allocated on the publishing thread's stack. `repr(C)` with
/// the header first, so the job's address *is* its header's address
/// and one pointer word round-trips through the deque.
#[repr(C)]
struct StackJob<L: Latch, F, R> {
    header: JobHeader,
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R,
{
    fn new(latch: L, func: F) -> Self {
        StackJob {
            header: JobHeader {
                execute_fn: execute_stack_job::<L, F, R>,
            },
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// # Safety
    /// See [`JobRef::execute`].
    unsafe fn as_job_ref(&self) -> JobRef {
        // Whole-object pointer cast (not `&self.header`) so the ref's
        // provenance covers every field `execute_stack_job` touches.
        JobRef(std::ptr::from_ref(self).cast())
    }

    /// Takes the closure back out, for inline execution after the
    /// job was reclaimed unexecuted.
    fn take_func(&self) -> F {
        unsafe {
            (*self.func.get())
                .take()
                .expect("job function already taken")
        }
    }

    /// Consumes the completed job, yielding its result or resuming
    /// the panic the job captured.
    fn into_result(mut self) -> R {
        match std::mem::replace(self.result.get_mut(), JobResult::None) {
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::None => unreachable!("latch set without a result"),
        }
    }
}

/// # Safety
/// `header` must be the address of a live `StackJob<L, F, R>` (the
/// header is its first field); called at most once per job.
unsafe fn execute_stack_job<L: Latch, F, R>(header: *const JobHeader)
where
    F: FnOnce() -> R,
{
    let this = unsafe { &*header.cast::<StackJob<L, F, R>>() };
    let func = this.take_func();
    let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
        Ok(r) => JobResult::Ok(r),
        Err(payload) => JobResult::Panicked(payload),
    };
    unsafe { *this.result.get() = result };
    // The latch store is the final touch: the instant it lands,
    // the owning stack frame is free to go away.
    this.latch.set();
}

// ---------------------------------------------------------------- deque

/// Pending jobs per worker before `join` falls back to running the
/// second closure inline (no heap growth: a full deque just means a
/// join spine deeper than anyone can steal through, so sequential
/// execution is the right degradation).
const DEQUE_CAP: usize = 1 << 10;

/// Pads the hot atomics to their own cache lines so owner-side
/// `bottom` traffic does not false-share with thief-side `top` CAS.
#[repr(align(64))]
struct CachePadded<T>(T);

enum Steal {
    /// The victim's deque had nothing to take.
    Empty,
    /// Lost a race with the owner or another thief; worth re-trying.
    Retry,
    Job(JobRef),
}

/// Fixed-capacity Chase–Lev work-stealing deque (Le et al.'s C11
/// formulation, minus the growth path — see [`DEQUE_CAP`]). The owner
/// pushes/takes at `bottom`; thieves CAS `top`. Slots are single
/// `AtomicPtr` words, so no access can tear.
struct Deque {
    bottom: CachePadded<AtomicIsize>,
    top: CachePadded<AtomicIsize>,
    slots: Box<[AtomicPtr<JobHeader>]>,
}

impl Deque {
    fn new() -> Self {
        Deque {
            bottom: CachePadded(AtomicIsize::new(0)),
            top: CachePadded(AtomicIsize::new(0)),
            slots: (0..DEQUE_CAP)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    fn slot(&self, index: isize) -> &AtomicPtr<JobHeader> {
        &self.slots[(index as usize) & (DEQUE_CAP - 1)]
    }

    /// Owner-side push at the bottom. Returns `false` when full (the
    /// caller runs the job inline instead). The capacity check
    /// guarantees the slot being written cannot be concurrently read
    /// by a thief: a thief commits to slot `t` only by a successful
    /// CAS on `top`, and while `top == t` the owner never reaches
    /// index `t + DEQUE_CAP`.
    fn push(&self, job: JobRef) -> bool {
        let b = self.bottom.0.load(Ordering::Relaxed);
        let t = self.top.0.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= DEQUE_CAP as isize {
            return false;
        }
        self.slot(b).store(job.as_raw(), Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible to
        // thieves (pairs with the SeqCst fence in `steal`).
        fence(Ordering::Release);
        self.bottom.0.store(b.wrapping_add(1), Ordering::Relaxed);
        true
    }

    /// Owner-side take from the bottom (newest job first). Only the
    /// last remaining job is raced with thieves, resolved by a CAS on
    /// `top`.
    fn take(&self) -> Option<JobRef> {
        let b = self.bottom.0.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.0.store(b, Ordering::Relaxed);
        // Order the bottom store before the top load (store-buffer
        // pattern against concurrent `steal`).
        fence(Ordering::SeqCst);
        let t = self.top.0.load(Ordering::Relaxed);
        if t <= b {
            let raw = self.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: win it from any concurrent thief.
                let won = self
                    .top
                    .0
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.0.store(b.wrapping_add(1), Ordering::Relaxed);
                won.then(|| JobRef::from_raw(raw))
            } else {
                Some(JobRef::from_raw(raw))
            }
        } else {
            // Already empty; restore bottom.
            self.bottom.0.store(b.wrapping_add(1), Ordering::Relaxed);
            None
        }
    }

    /// Thief-side steal from the top (oldest job first).
    fn steal(&self) -> Steal {
        let t = self.top.0.load(Ordering::Acquire);
        // Order the top load before the bottom load (pairs with the
        // fence in `take`).
        fence(Ordering::SeqCst);
        let b = self.bottom.0.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let raw = self.slot(t).load(Ordering::Relaxed);
        // Commit: while `top == t`, the owner cannot have overwritten
        // slot `t` (capacity check in `push`), so `raw` is intact.
        if self
            .top
            .0
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Job(JobRef::from_raw(raw))
        } else {
            Steal::Retry
        }
    }

    /// Racy emptiness probe for the park re-check; precise enough
    /// because the parker fences before calling it (module docs).
    fn is_visibly_nonempty(&self) -> bool {
        let t = self.top.0.load(Ordering::Acquire);
        let b = self.bottom.0.load(Ordering::Acquire);
        b > t
    }
}

// ------------------------------------------------------------- registry

/// The shared state of one pool width: per-worker deques, the
/// injection queue for external submitters, and the sleep machinery.
pub(crate) struct Registry {
    width: usize,
    deques: Vec<Deque>,
    injected: Mutex<VecDeque<JobRef>>,
    /// Mirror of `injected.len()`, maintained under the queue lock,
    /// so the hot paths (`find_work` misses, park re-checks) never
    /// touch the injection mutex.
    injected_count: AtomicUsize,
    steals: AtomicU64,
    parks: AtomicU64,
    notifies: AtomicU64,
    /// Number of parked (or about-to-park) workers. Publications
    /// fence, then read this, and skip the sleep lock entirely when
    /// nobody is parked — see the module-level sleep protocol.
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Jobs catch panics before they can poison scheduler state.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    fn new(width: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry {
            width,
            deques: (0..width).map(|_| Deque::new()).collect(),
            injected: Mutex::new(VecDeque::new()),
            injected_count: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        if width >= 2 {
            for index in 0..width {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("gms-rayon-{width}-{index}"))
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || worker_main(registry, index))
                    .expect("spawn worker thread");
            }
        }
        registry
    }

    /// Cumulative cross-worker steals since the registry was created.
    pub(crate) fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Cumulative condvar parks (timed waits actually entered).
    pub(crate) fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Cumulative condvar notifications issued (one per publish or
    /// latch set that found a sleeper; publishes that found every
    /// worker awake are not counted — they skip the condvar).
    pub(crate) fn notify_count(&self) -> u64 {
        self.notifies.load(Ordering::Relaxed)
    }

    /// Publisher half of the sleep protocol: call *after* the job is
    /// visible. Wakes at most one sleeper — enough, because an awake
    /// worker never parks while work is visible.
    fn notify_one_sleeper(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = lock(&self.sleep);
            self.notifies.fetch_add(1, Ordering::Relaxed);
            self.wake.notify_one();
        }
    }

    /// Publisher half for latch sets: must reach the specific thread
    /// waiting on the latch, so it broadcasts.
    fn notify_all_sleepers(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = lock(&self.sleep);
            self.notifies.fetch_add(1, Ordering::Relaxed);
            self.wake.notify_all();
        }
    }

    /// Publishes a job on worker `index`'s own deque. Returns `false`
    /// (without publishing) when the deque is full.
    #[must_use]
    fn push_local(&self, index: usize, job: JobRef) -> bool {
        if !self.deques[index].push(job) {
            return false;
        }
        self.notify_one_sleeper();
        true
    }

    fn inject(&self, job: JobRef) {
        {
            let mut queue = lock(&self.injected);
            queue.push_back(job);
            self.injected_count.store(queue.len(), Ordering::Release);
        }
        self.notify_one_sleeper();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        if self.injected_count.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut queue = lock(&self.injected);
        let job = queue.pop_front();
        self.injected_count.store(queue.len(), Ordering::Release);
        job
    }

    /// Pops the newest job from the caller's own deque.
    fn take_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].take()
    }

    /// Steals from siblings (round-robin, oldest-first per victim),
    /// then drains the injection queue. Re-runs the sweep while any
    /// victim reported a CAS race, so transient contention is not
    /// mistaken for exhaustion.
    fn steal_work(&self, index: usize) -> Option<JobRef> {
        loop {
            let mut contended = false;
            for offset in 1..self.width {
                let victim = (index + offset) % self.width;
                match self.deques[victim].steal() {
                    Steal::Job(job) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if let Some(job) = self.pop_injected() {
                return Some(job);
            }
            if !contended {
                return None;
            }
        }
    }

    /// One scheduling round for worker `index`: own deque LIFO, then
    /// steal FIFO from siblings, then the injection queue.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        self.take_local(index).or_else(|| self.steal_work(index))
    }

    /// Lock-free probe used by park re-checks.
    fn has_visible_work(&self) -> bool {
        self.injected_count.load(Ordering::Acquire) > 0
            || self.deques.iter().any(Deque::is_visibly_nonempty)
    }

    /// Parks the calling thread until work may be available.
    /// `still_idle` is re-checked after the sleeper count is raised
    /// (with a full fence between — the parker half of the sleep
    /// protocol) and once more under the sleep lock, so no publish
    /// can fall between the check and the wait.
    fn park_while(&self, still_idle: impl Fn() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if still_idle() {
            let guard = lock(&self.sleep);
            if still_idle() {
                self.parks.fetch_add(1, Ordering::Relaxed);
                let _ = self
                    .wake
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    fn park(&self) {
        self.park_while(|| !self.has_visible_work());
    }

    fn park_waiter(&self, latch: &SpinLatch<'_>) {
        self.park_while(|| !latch.probe() && !self.has_visible_work());
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|cell| {
        *cell.borrow_mut() = Some(WorkerCtx {
            registry: Arc::clone(&registry),
            index,
        })
    });
    crate::set_inherited_width(registry.width);
    loop {
        match registry.find_work(index) {
            // SAFETY: a published ref stays valid until executed.
            Some(job) => unsafe { job.execute() },
            None => registry.park(),
        }
    }
}

// --------------------------------------------------- thread-local state

#[derive(Clone)]
struct WorkerCtx {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

fn current_worker() -> Option<WorkerCtx> {
    WORKER.with(|cell| cell.borrow().clone())
}

// ------------------------------------------------- registry acquisition

static REGISTRIES: OnceLock<Mutex<HashMap<usize, Arc<Registry>>>> = OnceLock::new();

/// The persistent registry for `width`, created (and its workers
/// spawned) on first request.
pub(crate) fn registry_for(width: usize) -> Arc<Registry> {
    let registries = REGISTRIES.get_or_init(Default::default);
    Arc::clone(
        lock(registries)
            .entry(width)
            .or_insert_with(|| Registry::new(width)),
    )
}

/// Pool width used outside any installed pool: `RAYON_NUM_THREADS`
/// when set to a positive integer, the hardware width otherwise.
pub(crate) fn default_width() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|value| value.parse::<usize>().ok())
            .filter(|&width| width > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
    })
}

/// Runs `op` inside a worker of `registry`, blocking the calling
/// thread until it completes. Entry point for parallel work submitted
/// from outside the pool.
pub(crate) fn in_worker<OP, R>(registry: &Arc<Registry>, op: OP) -> R
where
    OP: FnOnce() -> R + Send,
    R: Send,
{
    if registry.width <= 1 {
        return op();
    }
    let job = StackJob::new(LockLatch::new(), op);
    // SAFETY: `job` lives on this stack frame and we block on its
    // latch below before the frame can unwind.
    registry.inject(unsafe { job.as_job_ref() });
    job.latch.wait();
    job.into_result()
}

// ----------------------------------------------------------------- join

/// Runs `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. The second closure is published for stealing while the
/// first runs on the calling thread; if nobody stole it, it runs
/// inline (so a 1-thread pool degrades to exactly `(a(), b())`, in
/// that order). Panics from either closure propagate after both
/// operations have been fully resolved.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some(ctx) => join_on_worker(&ctx, oper_a, oper_b),
        None => {
            let width = crate::current_num_threads();
            if width <= 1 {
                let ra = oper_a();
                let rb = oper_b();
                return (ra, rb);
            }
            let registry = registry_for(width);
            in_worker(&registry, move || join(oper_a, oper_b))
        }
    }
}

fn join_on_worker<A, B, RA, RB>(ctx: &WorkerCtx, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = &ctx.registry;
    let job_b = StackJob::new(SpinLatch::new(registry), oper_b);
    // SAFETY: `job_b` lives on this frame; every path below either
    // reclaims it from the deque unexecuted or waits for its latch
    // before the frame can unwind (including the panic path).
    let job_b_ref = unsafe { job_b.as_job_ref() };
    if !registry.push_local(ctx.index, job_b_ref) {
        // Deque full: a join spine this deep has ample parallelism
        // published already, so degrade to sequential execution.
        let ra = oper_a();
        let rb = job_b.take_func()();
        return (ra, rb);
    }

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    // Resolve `job_b`: pop our own deque — newest-first, so the first
    // pop is `job_b` unless a thief got it. A different job here can
    // only belong to an outer `join` frame on this same stack (its
    // publication is below ours), which is always safe to run inline;
    // the outer frame will then find its latch set. When our own
    // deque is dry, help with stolen/injected work (child stealing —
    // the waiting worker keeps mining); after a few fruitless rounds
    // park on the registry condvar, woken by the thief's latch set.
    let mut reclaimed = false;
    let mut misses = 0u32;
    while !job_b.latch.probe() {
        match registry.take_local(ctx.index) {
            Some(job) if job == job_b_ref => {
                reclaimed = true;
                break;
            }
            // SAFETY: published refs stay valid until executed.
            Some(job) => unsafe { job.execute() },
            None => match registry.steal_work(ctx.index) {
                Some(job) => {
                    misses = 0;
                    // SAFETY: as above.
                    unsafe { job.execute() }
                }
                None => {
                    misses += 1;
                    if misses < 8 {
                        std::thread::yield_now();
                    } else {
                        registry.park_waiter(&job_b.latch);
                    }
                }
            },
        }
    }
    let ra = match result_a {
        Ok(ra) => ra,
        // `job_b` is resolved (reclaimed or completed): safe to unwind.
        Err(payload) => panic::resume_unwind(payload),
    };
    let rb = if reclaimed {
        job_b.take_func()()
    } else {
        job_b.into_result()
    };
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    // Widths 5 and 6 are reserved for the tests in this module so
    // concurrent tests at other widths cannot perturb the timing.

    #[test]
    fn park_publish_race_has_no_lost_wakeups() {
        // Every round injects one tiny job into a pool whose workers
        // are all parked (workers park immediately when idle). Under
        // the fenced publish/park protocol each round completes in
        // microseconds; a lost wakeup strands the round until the
        // 100ms park-timeout backstop. The budget below tolerates a
        // heavily loaded machine but fails if even a small fraction
        // of rounds fall back to the timeout, which is exactly what
        // happens if the publisher's fence or the parker's re-check
        // ordering is removed.
        let registry = registry_for(5);
        const ROUNDS: u64 = 200;
        let start = Instant::now();
        for i in 0..ROUNDS {
            let got = in_worker(&registry, || std::hint::black_box(i) + 1);
            assert_eq!(got, i + 1);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(ROUNDS * 50),
            "{ROUNDS} inject/park round-trips took {elapsed:?}: \
             wakeups are being lost to the park timeout"
        );
        assert!(
            registry.park_count() > 0,
            "workers never parked: the stress test exercised nothing"
        );
    }

    #[test]
    fn stolen_join_latch_wakes_parked_waiter_promptly() {
        // Both join arms sleep, so the published arm is stolen by a
        // woken worker while the owner sleeps in arm `a`; the owner
        // then runs out of work and parks, and the thief's latch set
        // must wake it immediately. Rounds cost ~2× the sleep when
        // wakeups work and ~100ms (the park timeout) when the latch
        // broadcast is lost.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(6)
            .build()
            .unwrap();
        const ROUNDS: u64 = 50;
        let start = Instant::now();
        for _ in 0..ROUNDS {
            pool.install(|| {
                join(
                    || std::thread::sleep(Duration::from_millis(2)),
                    || std::thread::sleep(Duration::from_millis(2)),
                )
            });
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(ROUNDS * 50),
            "{ROUNDS} stolen-join rounds took {elapsed:?}: \
             latch sets are not waking parked waiters"
        );
    }

    #[test]
    fn deque_take_and_steal_agree_on_exactly_once() {
        // Direct deque-level check: one owner pushing/taking against
        // one thief stealing must hand out each job exactly once.
        // Job pointers are synthesized (never executed), so plain
        // integers cast to pointers are fine here.
        let deque = Arc::new(Deque::new());
        let total = 20_000usize;
        let seen = Arc::new(AtomicUsize::new(0));
        let thief = {
            let deque = Arc::clone(&deque);
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    match deque.steal() {
                        Steal::Job(_) => {
                            got += 1;
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if seen.load(Ordering::Relaxed) >= total {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            })
        };
        let mut owner_got = 0u64;
        for i in 0..total {
            let fake = JobRef::from_raw((8 * (i + 1)) as *mut JobHeader);
            while !deque.push(fake) {
                if deque.take().is_some() {
                    owner_got += 1;
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            }
            if i % 3 == 0 && deque.take().is_some() {
                owner_got += 1;
                seen.fetch_add(1, Ordering::Relaxed);
            }
        }
        while deque.take().is_some() {
            owner_got += 1;
            seen.fetch_add(1, Ordering::Relaxed);
        }
        let thief_got = thief.join().expect("thief thread panicked");
        assert_eq!(
            owner_got + thief_got,
            total as u64,
            "every pushed job must be handed out exactly once"
        );
    }
}
