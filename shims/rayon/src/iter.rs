//! Eager parallel iterators. See the crate docs for the semantics.

/// Items-per-worker threshold below which fan-out is not worth a
/// thread spawn and work runs on the calling thread.
const SEQUENTIAL_CUTOFF: usize = 256;

/// An eager parallel iterator: the items are already materialized;
/// `map`/`for_each` fan them out across scoped threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The one fan-out primitive every parallel combinator uses: splits
/// `items` into `width` contiguous chunks, runs `job` on each chunk
/// in a scoped worker thread (propagating the installed pool width),
/// and returns the per-chunk results in order.
fn run_chunks<T, R, J>(items: Vec<T>, width: usize, job: J) -> Vec<R>
where
    T: Send,
    R: Send,
    J: Fn(Vec<T>) -> R + Sync,
{
    let inherited = crate::current_num_threads();
    let chunks = split(items, width);
    let job = &job;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    crate::set_inherited_width(inherited);
                    job(chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel worker"))
            .collect()
    })
}

fn width_for(len: usize) -> usize {
    // Cap the fan-out at the hardware parallelism even when a larger
    // pool was installed: for eager chunked execution, oversubscribing
    // cores only adds spawn and context-switch cost.
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    crate::current_num_threads()
        .min(hardware)
        .clamp(1, len.max(1))
}

/// Splits `items` into at most `parts` contiguous chunks of
/// near-equal size, preserving order.
fn split<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let chunk = items.len().div_ceil(parts.max(1)).max(1);
    let mut out = Vec::with_capacity(parts);
    while items.len() > chunk {
        let tail = items.split_off(items.len() - chunk);
        out.push(tail);
    }
    out.push(items);
    out.reverse();
    out
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let width = width_for(self.items.len());
        if width <= 1 || self.items.len() < SEQUENTIAL_CUTOFF {
            return ParIter {
                items: self.items.into_iter().map(&f).collect(),
            };
        }
        let total = self.items.len();
        let mapped = run_chunks(self.items, width, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<U>>()
        });
        // Reassemble with `append` (a memcpy per chunk) rather than a
        // per-element flatten, so the join cost stays negligible.
        let mut items = Vec::with_capacity(total);
        for mut chunk in mapped {
            items.append(&mut chunk);
        }
        ParIter { items }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let width = width_for(self.items.len());
        if width <= 1 || self.items.len() < SEQUENTIAL_CUTOFF {
            self.items.into_iter().for_each(&f);
            return;
        }
        run_chunks(self.items, width, |chunk| chunk.into_iter().for_each(&f));
    }

    /// Keeps the items matching `predicate`.
    pub fn filter<P>(mut self, predicate: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool + Sync,
    {
        self.items.retain(|item| predicate(item));
        self
    }

    /// Maps and filters in one pass.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParIter {
            items: self.items.into_iter().filter_map(f).collect(),
        }
    }

    /// Maps each item to an iterator and flattens the results. The
    /// per-item closure runs through the parallel `map`; only the
    /// final reassembly is sequential (a memcpy per item).
    pub fn flat_map<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = self.map(|item| f(item).into_iter().collect::<Vec<U>>());
        let mut items = Vec::new();
        for mut chunk in nested.items {
            items.append(&mut chunk);
        }
        ParIter { items }
    }

    /// Maps each item to a serial iterator and flattens (rayon's
    /// cheaper `flat_map` variant; identical here).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        self.flat_map(f)
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Sums the items (chunk-wise in parallel, then the partials).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let width = width_for(self.items.len());
        if width <= 1 || self.items.len() < SEQUENTIAL_CUTOFF {
            return self.items.into_iter().sum();
        }
        run_chunks(self.items, width, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Largest item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    /// Splits items into those matching the predicate and the rest.
    /// The predicate is evaluated in parallel (it is the expensive
    /// part in this workspace's peeling/coloring kernels); only the
    /// split itself is sequential.
    pub fn partition<A, B, P>(self, predicate: P) -> (A, B)
    where
        A: Default + Extend<T>,
        B: Default + Extend<T>,
        P: Fn(&T) -> bool + Sync,
    {
        let flagged = self.map(|item| (predicate(&item), item));
        let mut yes = A::default();
        let mut no = B::default();
        for (keep, item) in flagged.items {
            if keep {
                yes.extend(std::iter::once(item));
            } else {
                no.extend(std::iter::once(item));
            }
        }
        (yes, no)
    }

    /// Folds the items with `op`, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Rayon tuning knob; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Marker/extension trait so generic code can take `ParallelIterator`
/// bounds; all combinators are inherent on [`ParIter`].
pub trait ParallelIterator {}
impl<T> ParallelIterator for ParIter<T> {}

/// Conversion into a parallel iterator by value. Blanket-implemented
/// for everything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item;
    /// Materializes the source into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter` / `par_chunks` on slices (and through deref, vectors).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over mutable contiguous chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    /// Stable sort (sequential in this shim).
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Unstable sort (sequential in this shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key (sequential in this shim).
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K>(&mut self, key: F);
    /// Unstable sort by comparator (sequential in this shim).
    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_items_in_order() {
        for n in [0usize, 1, 7, 256, 1000] {
            for parts in [1usize, 2, 3, 8] {
                let items: Vec<usize> = (0..n).collect();
                let rejoined: Vec<usize> = split(items, parts).into_iter().flatten().collect();
                assert_eq!(rejoined, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            }
        }
    }
}
