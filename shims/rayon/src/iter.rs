//! Parallel iterators over splittable range tasks.
//!
//! Sources are materialized into a vector (see the crate docs for the
//! divergence list), but execution is *not* eager fixed chunks: the
//! expensive combinators (`map`, `for_each`, `sum`, `reduce`, and the
//! ones built on them) recursively split the index range via
//! [`crate::join`], publishing the right half of every split for
//! stealing. Idle workers peel off whole subranges, so skew in
//! per-item cost — the norm for mining kernels, where one vertex's
//! subtree can dwarf a thousand others — rebalances dynamically
//! instead of serializing inside a pre-cut chunk.
//!
//! The splitter is driven by a *task count*, not a length grain: a
//! dispatch aims for `4 × width` leaves (capped by the item count and
//! raised-floor via [`ParIter::with_min_len`]) and splits the range
//! proportionally until exactly that many leaves exist. Deriving the
//! grain from the task budget — instead of halving lengths down to a
//! fixed floor — means small inputs produce few tasks (a 10-item
//! range never fans out into 10 single-item jobs) and large inputs
//! never overshoot the budget by the up-to-2× that length-halving
//! allowed. Leaves move items out of the source buffer by value and,
//! for `map`, write results straight into the pre-sized output
//! buffer, preserving order. If a closure panics, the panic
//! propagates after in-flight leaves settle; items not yet processed
//! (and results already produced) are leaked, never double-dropped.

use std::ops::Range;

/// Below this many items parallel dispatch is never attempted; with a
/// persistent pool the break-even is small.
const SEQUENTIAL_CUTOFF: usize = 2;

/// A parallel iterator: materialized items fanned out as splittable
/// range tasks.
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

/// Raw-pointer handle that may cross worker threads. Soundness is
/// established by the range protocol: every index in `0..len` is
/// touched by exactly one leaf task.
struct SendPtr<T>(*const T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// `i` must be in bounds and each index moved out at most once.
    #[inline(always)] // keep leaf loops call-free even in debug builds
    unsafe fn read(&self, i: usize) -> T {
        unsafe { self.0.add(i).read() }
    }
}

struct SendMutPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendMutPtr<T> {}
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

impl<T> SendMutPtr<T> {
    /// # Safety
    /// `i` must be within the allocation and each index written at
    /// most once.
    #[inline(always)] // keep leaf loops call-free even in debug builds
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { self.0.add(i).write(value) }
    }
}

/// Leaf-task budget per worker: enough slack for stealing to
/// rebalance skew without drowning in per-task overhead.
const TASKS_PER_WORKER: usize = 4;

/// How many leaf tasks a dispatch of `len` items should fan out
/// into: `TASKS_PER_WORKER × width`, never more tasks than `min_len`
/// allows (the caller's granularity knob) nor than there are items.
/// The task count is the primary quantity and the per-leaf grain
/// falls out of it — not the other way round — so small inputs
/// produce proportionally few tasks instead of splitting down to a
/// fixed length floor.
fn task_count_for(len: usize, width: usize, min_len: usize) -> usize {
    width
        .saturating_mul(TASKS_PER_WORKER)
        .min(len.div_ceil(min_len.max(1)))
        .max(1)
}

/// Splits `range` into exactly `tasks` near-equal leaves (sizes
/// differ by at most one item), recursing via `join`. The split
/// points depend only on `(range, tasks)`, never on scheduling.
fn split_point(range: &Range<usize>, left_tasks: usize, tasks: usize) -> usize {
    let per = range.len() / tasks;
    let extra = range.len() % tasks;
    range.start + per * left_tasks + left_tasks.min(extra)
}

/// Runs `leaf` over disjoint subranges covering `0..len`, splitting
/// recursively via `join` into (at most) `tasks` leaves.
fn parallel_ranges<F>(len: usize, tasks: usize, leaf: F)
where
    F: Fn(Range<usize>) + Sync,
{
    fn recurse<F: Fn(Range<usize>) + Sync>(range: Range<usize>, tasks: usize, leaf: &F) {
        if tasks <= 1 || range.len() <= 1 {
            leaf(range);
            return;
        }
        let left_tasks = tasks / 2;
        let mid = split_point(&range, left_tasks, tasks);
        let (left, right) = (range.start..mid, mid..range.end);
        crate::join(
            || recurse(left, left_tasks, leaf),
            || recurse(right, tasks - left_tasks, leaf),
        );
    }
    recurse(0..len, tasks.clamp(1, len.max(1)), &leaf);
}

/// Range-splitting reduction: `leaf` folds one subrange, `combine`
/// merges adjacent partials left-to-right (so the combine tree is
/// deterministic for a given `len` and `tasks`, independent of which
/// worker ran what).
fn parallel_reduce<R, F, C>(len: usize, tasks: usize, leaf: &F, combine: &C) -> Option<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    fn recurse<R, F, C>(range: Range<usize>, tasks: usize, leaf: &F, combine: &C) -> R
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
        C: Fn(R, R) -> R + Sync,
    {
        if tasks <= 1 || range.len() <= 1 {
            return leaf(range);
        }
        let left_tasks = tasks / 2;
        let mid = split_point(&range, left_tasks, tasks);
        let (left, right) = (range.start..mid, mid..range.end);
        let (a, b) = crate::join(
            || recurse(left, left_tasks, leaf, combine),
            || recurse(right, tasks - left_tasks, leaf, combine),
        );
        combine(a, b)
    }
    if len == 0 {
        return None;
    }
    Some(recurse(0..len, tasks.clamp(1, len), leaf, combine))
}

impl<T> ParIter<T> {
    fn new(items: Vec<T>) -> Self {
        ParIter { items, min_len: 1 }
    }
}

impl<T: Send> ParIter<T> {
    /// Whether to dispatch in parallel at all for `len` items.
    fn parallel_width(len: usize) -> Option<usize> {
        let width = crate::current_num_threads();
        (width > 1 && len >= SEQUENTIAL_CUTOFF).then_some(width)
    }

    /// Disowns the items: the vector's length is zeroed while its
    /// buffer stays alive and readable, so leaves can move items out
    /// by `ptr::read` without any risk of double drops (a panic leaks
    /// unprocessed items instead).
    fn disown(items: &mut Vec<T>) -> (SendPtr<T>, usize) {
        let len = items.len();
        let ptr = SendPtr(items.as_ptr());
        // SAFETY: shrinking only; the buffer remains allocated (and
        // its contents untouched) for the caller's scope.
        unsafe { items.set_len(0) };
        (ptr, len)
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let len = self.items.len();
        let Some(width) = Self::parallel_width(len) else {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
                min_len: self.min_len,
            };
        };
        let tasks = task_count_for(len, width, self.min_len);
        let mut src = self.items;
        let mut out: Vec<U> = Vec::with_capacity(len);
        let (src_ptr, _) = Self::disown(&mut src);
        let dst_ptr = SendMutPtr(out.as_mut_ptr());
        parallel_ranges(len, tasks, |range| {
            for i in range {
                // SAFETY: each index is visited by exactly one leaf;
                // the source item is moved out once and the result
                // written into uninitialized capacity once.
                unsafe { dst_ptr.write(i, f(src_ptr.read(i))) };
            }
        });
        // SAFETY: all `len` slots were initialized above (a panic in
        // `f` propagates out of `parallel_ranges` before this point).
        unsafe { out.set_len(len) };
        drop(src);
        ParIter {
            items: out,
            min_len: self.min_len,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let len = self.items.len();
        let Some(width) = Self::parallel_width(len) else {
            self.items.into_iter().for_each(f);
            return;
        };
        let tasks = task_count_for(len, width, self.min_len);
        let mut src = self.items;
        let (src_ptr, _) = Self::disown(&mut src);
        parallel_ranges(len, tasks, |range| {
            for i in range {
                // SAFETY: see `map` — one move per index.
                f(unsafe { src_ptr.read(i) });
            }
        });
        drop(src);
    }

    /// Keeps the items matching `predicate`.
    pub fn filter<P>(mut self, predicate: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool + Sync,
    {
        self.items.retain(|item| predicate(item));
        self
    }

    /// Maps and filters in one pass.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParIter {
            items: self.items.into_iter().filter_map(f).collect(),
            min_len: self.min_len,
        }
    }

    /// Maps each item to an iterator and flattens the results. The
    /// per-item closure runs through the parallel `map`; only the
    /// final reassembly is sequential (a memcpy per item).
    pub fn flat_map<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let min_len = self.min_len;
        let nested = self.map(|item| f(item).into_iter().collect::<Vec<U>>());
        let mut items = Vec::new();
        for mut chunk in nested.items {
            items.append(&mut chunk);
        }
        ParIter { items, min_len }
    }

    /// Maps each item to a serial iterator and flattens (rayon's
    /// cheaper `flat_map` variant; identical here).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        self.flat_map(f)
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Sums the items (subrange partials in parallel, combined
    /// left-to-right).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let len = self.items.len();
        let Some(width) = Self::parallel_width(len) else {
            return self.items.into_iter().sum();
        };
        let tasks = task_count_for(len, width, self.min_len);
        let mut src = self.items;
        let (src_ptr, _) = Self::disown(&mut src);
        let total = parallel_reduce(
            len,
            tasks,
            // SAFETY: see `map` — one move per index.
            &|range: Range<usize>| range.map(|i| unsafe { src_ptr.read(i) }).sum::<S>(),
            &|a, b| [a, b].into_iter().sum::<S>(),
        );
        drop(src);
        total.expect("len >= SEQUENTIAL_CUTOFF implies a partial")
    }

    /// Largest item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    /// Splits items into those matching the predicate and the rest.
    /// The predicate is evaluated in parallel (it is the expensive
    /// part in this workspace's peeling/coloring kernels); only the
    /// split itself is sequential.
    pub fn partition<A, B, P>(self, predicate: P) -> (A, B)
    where
        A: Default + Extend<T>,
        B: Default + Extend<T>,
        P: Fn(&T) -> bool + Sync,
    {
        let flagged = self.map(|item| (predicate(&item), item));
        let mut yes = A::default();
        let mut no = B::default();
        for (keep, item) in flagged.items {
            if keep {
                yes.extend(std::iter::once(item));
            } else {
                no.extend(std::iter::once(item));
            }
        }
        (yes, no)
    }

    /// Folds the items with `op`, starting from `identity()`. Partials
    /// are folded per subrange and combined left-to-right, so for an
    /// associative `op` the result matches the sequential fold.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let len = self.items.len();
        let Some(width) = Self::parallel_width(len) else {
            return self.items.into_iter().fold(identity(), &op);
        };
        let tasks = task_count_for(len, width, self.min_len);
        let mut src = self.items;
        let (src_ptr, _) = Self::disown(&mut src);
        let total = parallel_reduce(
            len,
            tasks,
            &|range: Range<usize>| {
                range
                    // SAFETY: see `map` — one move per index.
                    .map(|i| unsafe { src_ptr.read(i) })
                    .fold(identity(), &op)
            },
            &op,
        );
        drop(src);
        total.unwrap_or_else(identity)
    }

    /// Floors the per-leaf grain: the task count is capped so no
    /// leaf receives fewer than `min` items (rayon's task-granularity
    /// knob).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }
}

/// Marker/extension trait so generic code can take `ParallelIterator`
/// bounds; all combinators are inherent on [`ParIter`].
pub trait ParallelIterator {}
impl<T> ParallelIterator for ParIter<T> {}

/// Conversion into a parallel iterator by value. Blanket-implemented
/// for everything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item;
    /// Materializes the source into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter::new(self.into_iter().collect())
    }
}

/// `par_iter` / `par_chunks` on slices (and through deref, vectors).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter::new(self.iter().collect())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(self.chunks(chunk_size).collect())
    }
}

/// `par_iter_mut` / `par_chunks_mut` / `par_sort_*` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over mutable contiguous chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    /// Stable sort (sequential in this shim).
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Unstable sort (sequential in this shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key (sequential in this shim).
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K>(&mut self, key: F);
    /// Unstable sort by comparator (sequential in this shim).
    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter::new(self.iter_mut().collect())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(self.chunks_mut(chunk_size).collect())
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_count_targets_four_leaves_per_worker() {
        assert_eq!(task_count_for(4_000, 4, 1), 16, "4 leaves per worker");
        assert_eq!(task_count_for(10, 4, 1), 10, "never more tasks than items");
        assert_eq!(task_count_for(10, 4, 8), 2, "min_len caps the task count");
        assert_eq!(task_count_for(0, 4, 1), 1);
        assert_eq!(task_count_for(1_000_000, 1, 1), 4, "width 1 still bounded");
    }

    #[test]
    fn split_produces_exactly_the_requested_leaves() {
        // The task-count splitter must cover the range with exactly
        // `tasks` leaves whose sizes differ by at most one item.
        for (len, tasks) in [(10usize, 3usize), (1_000, 16), (17, 17), (64, 5)] {
            let leaves = std::sync::Mutex::new(Vec::new());
            parallel_ranges(len, tasks, |range| {
                leaves.lock().unwrap().push(range);
            });
            let mut leaves = leaves.into_inner().unwrap();
            leaves.sort_by_key(|r| r.start);
            assert_eq!(leaves.len(), tasks, "len={len} tasks={tasks}");
            assert_eq!(leaves.first().unwrap().start, 0);
            assert_eq!(leaves.last().unwrap().end, len);
            assert!(leaves.windows(2).all(|w| w[0].end == w[1].start));
            let (lo, hi) = (len / tasks, len.div_ceil(tasks));
            assert!(leaves.iter().all(|r| r.len() == lo || r.len() == hi));
        }
    }

    #[test]
    fn parallel_ranges_cover_exactly_once() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let hits: Vec<std::sync::atomic::AtomicU32> = (0..10_000)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        pool.install(|| {
            parallel_ranges(hits.len(), 64, |range| {
                for i in range {
                    hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_is_deterministic_left_to_right() {
        // Subtraction is not associative, so the result pins the
        // combine-tree shape: it must depend only on len and the
        // task count, never on scheduling.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let reference = pool.install(|| {
            parallel_reduce(
                1_000,
                7,
                &|r: Range<usize>| r.sum::<usize>() as i64,
                &|a, b| a - b,
            )
        });
        for _ in 0..10 {
            let again = pool.install(|| {
                parallel_reduce(
                    1_000,
                    7,
                    &|r: Range<usize>| r.sum::<usize>() as i64,
                    &|a, b| a - b,
                )
            });
            assert_eq!(again, reference);
        }
    }

    #[test]
    fn map_moves_non_copy_items_exactly_once() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let items: Vec<String> = (0..3_000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = pool.install(|| {
            items
                .clone()
                .into_par_iter()
                .map(|s| s.len())
                .collect::<Vec<_>>()
        });
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(lens, expected);
    }
}
