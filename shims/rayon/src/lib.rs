//! Offline stand-in for `rayon`, backed by a real work-stealing
//! scheduler.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors a data-parallelism layer with rayon's surface syntax:
//! [`join`], `par_iter` / `into_par_iter` / `par_chunks`, the usual
//! combinators, `ThreadPoolBuilder` + `ThreadPool::install`, and
//! `current_num_threads`.
//!
//! Execution works like real rayon, not like the eager fixed-chunk
//! fan-out this shim used before PR 2: there is a persistent pool of
//! workers per width (lazily spawned, reused across calls), each with
//! its own Chase–Lev-style deque (owner LIFO, thieves FIFO; see
//! the `pool` module docs). `join(a, b)` publishes `b` for stealing
//! while `a` runs, and the parallel iterator combinators submit
//! recursively *splittable range tasks* rather than pre-cut chunks,
//! so skewed per-item costs rebalance dynamically — the execution
//! substrate the GMS mining kernels (irregular subtree work) need.
//!
//! # Divergences from real rayon
//!
//! * **Materialized sources.** `into_par_iter()` collects the items
//!   into a vector before fanning out; `filter` / `filter_map` /
//!   `enumerate` and the `par_sort_*` family run sequentially on that
//!   vector. The expensive closures in this workspace always sit in
//!   `map` / `for_each` / `sum` / `reduce` / `flat_map` / `partition`,
//!   which all execute as splittable parallel tasks.
//! * **Fixed-capacity deques.** Worker deques are lock-free
//!   Chase–Lev buffers (owner pushes/pops with plain stores and one
//!   fence, thieves CAS — see the `pool` module docs) with a fixed
//!   capacity; a `join` spine deeper than the capacity degrades to
//!   inline execution instead of growing the buffer.
//! * **Pools share a registry per width.** `ThreadPoolBuilder::build`
//!   returns a view onto a persistent per-width worker set instead of
//!   spawning fresh threads, so scaling sweeps do not accumulate
//!   threads. [`ThreadPool::steal_count`] (and the companion
//!   [`ThreadPool::park_count`] / [`ThreadPool::notify_count`]
//!   scheduler-overhead counters) consequently report cumulative
//!   counters for that width; measure deltas around a workload.
//! * **`install` runs the closure on the calling thread** and only
//!   scopes the width that parallel operations dispatch with (real
//!   rayon migrates the closure onto a worker). `join` called inside
//!   a worker always schedules on that worker's own registry.
//! * **`RAYON_NUM_THREADS`** is honored for the default width, and a
//!   requested width may exceed the hardware width (useful for
//!   exercising work-stealing paths on small CI machines).
//!
//! Replacing this shim with real rayon remains a manifest-only change.

use std::cell::Cell;
use std::fmt;

pub mod iter;
mod pool;

pub use pool::join;

/// The rayon-style prelude: import the traits that put `par_iter`
/// and friends in scope.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations on this thread will use:
/// the installed pool's size, or `RAYON_NUM_THREADS` / hardware
/// parallelism outside a pool.
pub fn current_num_threads() -> usize {
    POOL_WIDTH
        .with(Cell::get)
        .unwrap_or_else(pool::default_width)
}

/// Propagates a pool width into a worker thread (thread-locals are
/// not inherited), so parallel iterators nested inside a worker's
/// closure still respect the pool.
pub(crate) fn set_inherited_width(width: usize) {
    POOL_WIDTH.with(|cell| cell.set(Some(width)));
}

/// Builder for a fixed-width [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (`RAYON_NUM_THREADS` or
    /// hardware) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width. Zero is rejected at `build` time.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool (a view onto the persistent worker set for
    /// this width; workers are spawned lazily on first parallel use).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = self.num_threads.unwrap_or_else(pool::default_width);
        if width == 0 {
            return Err(ThreadPoolBuildError("pool width must be at least 1".into()));
        }
        Ok(ThreadPool { width })
    }
}

/// Error building a [`ThreadPool`].
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A fixed-width scope for parallel operations. `install` bounds the
/// width that parallel iterators and `join` invoked inside it will
/// use.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's width governing parallel operations
    /// (and reported by [`current_num_threads`]) on this thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_WIDTH.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_WIDTH.with(|c| c.replace(Some(self.width))));
        op()
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Cumulative number of cross-worker steals performed by the
    /// persistent worker set backing this pool's width. Registries
    /// are shared per width, so this counts all activity at this
    /// width since process start; measure deltas around a workload.
    pub fn steal_count(&self) -> u64 {
        if self.width <= 1 {
            return 0;
        }
        pool::registry_for(self.width).steal_count()
    }

    /// Cumulative number of condvar parks (timed waits actually
    /// entered) by this width's workers and join waiters. High park
    /// traffic on a busy workload means workers are starving; see
    /// the `pool` module docs for the sleep protocol.
    pub fn park_count(&self) -> u64 {
        if self.width <= 1 {
            return 0;
        }
        pool::registry_for(self.width).park_count()
    }

    /// Cumulative number of condvar notifications issued by
    /// publishers and latch sets at this width. Publishes that found
    /// every worker awake skip the condvar and are not counted, so
    /// this directly measures park/notify churn.
    pub fn notify_count(&self) -> u64 {
        if self.width <= 1 {
            return 0;
        }
        pool::registry_for(self.width).notify_count()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn install_scopes_the_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside, "width restored");
    }

    #[test]
    fn zero_width_pool_is_rejected() {
        assert!(ThreadPoolBuilder::new().num_threads(0).build().is_err());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 10_000);
        assert!(squares
            .iter()
            .enumerate()
            .all(|(i, &s)| s == (i as u64) * (i as u64)));
    }

    #[test]
    fn for_each_visits_everything_once() {
        let hits = AtomicUsize::new(0);
        (0..5_000u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn workers_inherit_the_installed_width() {
        // Code running inside map workers (including nested parallel
        // iterators) must see the installed pool width, not the
        // default width — the old shim's inheritance semantics.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let widths: Vec<usize> = pool.install(|| {
            (0..2_000u32)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            widths.iter().all(|&w| w == 2),
            "installed width not visible in workers"
        );
    }

    #[test]
    fn flat_map_matches_serial_flat_map() {
        let par: Vec<u32> = (0..3_000u32)
            .into_par_iter()
            .flat_map(|x| (0..x % 4).map(move |i| x + i))
            .collect();
        let ser: Vec<u32> = (0..3_000u32)
            .flat_map(|x| (0..x % 4).map(move |i| x + i))
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn slice_combinators_agree_with_serial() {
        let data: Vec<u32> = (0..4_000).collect();
        let par_sum: u32 = data.par_iter().map(|&x| x % 13).sum();
        let ser_sum: u32 = data.iter().map(|&x| x % 13).sum();
        assert_eq!(par_sum, ser_sum);
        let chunk_max: Vec<u32> = data
            .par_chunks(64)
            .map(|c| *c.iter().max().unwrap())
            .collect();
        assert_eq!(chunk_max.len(), data.len().div_ceil(64));
        let (even, odd): (Vec<u32>, Vec<u32>) = data.par_iter().partition(|&&x| x % 2 == 0);
        assert_eq!(even.len() + odd.len(), data.len());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_recursion_depth_stress() {
        // A full binary join tree 14 levels deep (16384 leaves), run
        // inside a 4-wide pool: exercises deep nesting of published
        // stack jobs, reclaim-vs-steal races and the help-while-
        // waiting loop.
        fn sum_range(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 1 {
                return lo;
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum_range(lo, mid), || sum_range(mid, hi));
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let n = 1u64 << 14;
        let total = pool.install(|| sum_range(0, n));
        assert_eq!(total, n * (n - 1) / 2);
    }

    #[test]
    fn join_steals_with_two_or_more_workers() {
        // An imbalanced join (the left branch sleeps while further
        // work sits published) must show cross-worker steals on a
        // pool with >= 2 workers. Width 3 is reserved for this test
        // so concurrent tests at other widths cannot mask the delta.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = pool.steal_count();
        let mut observed = 0;
        for _ in 0..50 {
            pool.install(|| {
                join(
                    || std::thread::sleep(Duration::from_millis(5)),
                    || std::hint::black_box((0..50_000u64).sum::<u64>()),
                )
            });
            observed = pool.steal_count() - before;
            if observed > 0 {
                break;
            }
        }
        assert!(
            observed > 0,
            "no steals observed across 50 imbalanced joins"
        );
    }

    #[test]
    fn overhead_counters_are_observable_and_monotone() {
        // A width-1 pool never publishes, steals, parks or notifies.
        let solo = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(solo.steal_count(), 0);
        assert_eq!(solo.park_count(), 0);
        assert_eq!(solo.notify_count(), 0);

        // Wider pools expose cumulative (monotone) scheduler-overhead
        // counters; exact values depend on timing, so only
        // monotonicity across a workload is pinned.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let before = (pool.steal_count(), pool.park_count(), pool.notify_count());
        let sum: u64 = pool.install(|| {
            (0..10_000u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x) % 1_000)
                .sum()
        });
        assert_eq!(sum, (0..10_000u64).map(|x| x.wrapping_mul(x) % 1_000).sum());
        assert!(pool.steal_count() >= before.0);
        assert!(pool.park_count() >= before.1);
        assert!(pool.notify_count() >= before.2);
    }

    #[test]
    fn join_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                join(
                    || std::thread::sleep(Duration::from_millis(1)),
                    || panic!("boom from b"),
                )
            })
        });
        assert!(result.is_err(), "panic in stolen-side closure must surface");
    }

    #[test]
    fn single_thread_pool_is_deterministic() {
        // With width 1 nothing is published for stealing: join runs
        // (a, then b) inline and for_each visits items in order.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let log = Mutex::new(Vec::new());
        pool.install(|| {
            join(
                || log.lock().unwrap().push("a"),
                || log.lock().unwrap().push("b"),
            );
            (0..100u32).into_par_iter().for_each(|i| {
                log.lock()
                    .unwrap()
                    .push(if i % 2 == 0 { "even" } else { "odd" })
            });
        });
        let log = log.into_inner().unwrap();
        assert_eq!(&log[..2], &["a", "b"]);
        assert_eq!(log.len(), 102);
        assert!(log[2..].chunks(2).all(|w| w == ["even", "odd"]));
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let par: u64 = pool.install(|| {
            (0..20_000u64)
                .into_par_iter()
                .map(|x| x % 97)
                .reduce(|| 0, |a, b| a + b)
        });
        let seq: u64 = (0..20_000u64).map(|x| x % 97).sum();
        assert_eq!(par, seq);
    }
}
