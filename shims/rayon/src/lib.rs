//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors a minimal data-parallelism layer with rayon's surface
//! syntax: `par_iter` / `into_par_iter` / `par_chunks`, the usual
//! combinators, `ThreadPoolBuilder` + `ThreadPool::install`, and
//! `current_num_threads`.
//!
//! Semantics differ from real rayon in one deliberate way: parallel
//! iterators here are **eager**. `into_par_iter()` materializes the
//! items; `map`, `for_each`, `sum`, `flat_map` and `partition`
//! evaluate their closure across scoped `std::thread` workers in
//! contiguous chunks (preserving order); the remaining cheap shaping
//! combinators (`filter`, reductions) run sequentially on the
//! materialized vector. For the mining kernels in this workspace the
//! expensive closure always sits in one of the parallel combinators,
//! so this recovers the bulk of the available speedup without a
//! work-stealing scheduler. Replacing this shim with real rayon is a
//! manifest-only change.

use std::cell::Cell;
use std::fmt;

pub mod iter;

/// The rayon-style prelude: import the traits that put `par_iter`
/// and friends in scope.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations on this thread will use:
/// the installed pool's size, or hardware parallelism outside a pool.
pub fn current_num_threads() -> usize {
    POOL_WIDTH
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Propagates an installed pool width into a freshly spawned worker
/// thread (thread-locals are not inherited), so parallel iterators
/// nested inside a worker's closure still respect the pool.
pub(crate) fn set_inherited_width(width: usize) {
    POOL_WIDTH.with(|cell| cell.set(Some(width)));
}

/// Builder for a fixed-width [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (hardware) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width. Zero is rejected at `build` time.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = self
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        if width == 0 {
            return Err(ThreadPoolBuildError("pool width must be at least 1".into()));
        }
        Ok(ThreadPool { width })
    }
}

/// Error building a [`ThreadPool`].
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A fixed-width scope for parallel operations. `install` bounds the
/// width that parallel iterators invoked inside it will use.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's width governing parallel iterators
    /// (and reported by [`current_num_threads`]) on this thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_WIDTH.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_WIDTH.with(|c| c.replace(Some(self.width))));
        op()
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn install_scopes_the_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside, "width restored");
    }

    #[test]
    fn zero_width_pool_is_rejected() {
        assert!(ThreadPoolBuilder::new().num_threads(0).build().is_err());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let squares: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 10_000);
        assert!(squares
            .iter()
            .enumerate()
            .all(|(i, &s)| s == (i as u64) * (i as u64)));
    }

    #[test]
    fn for_each_visits_everything_once() {
        let hits = AtomicUsize::new(0);
        (0..5_000u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn workers_inherit_the_installed_width() {
        // Code running inside map workers (including nested parallel
        // iterators) must see the installed pool width, not the
        // hardware width. On multi-core hosts this exercises real
        // worker threads; on a 1-CPU host the sequential path must
        // report the installed width too.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let widths: Vec<usize> = pool.install(|| {
            (0..2_000u32)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            widths.iter().all(|&w| w == 2),
            "installed width not visible in workers"
        );
    }

    #[test]
    fn flat_map_matches_serial_flat_map() {
        let par: Vec<u32> = (0..3_000u32)
            .into_par_iter()
            .flat_map(|x| (0..x % 4).map(move |i| x + i))
            .collect();
        let ser: Vec<u32> = (0..3_000u32)
            .flat_map(|x| (0..x % 4).map(move |i| x + i))
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn slice_combinators_agree_with_serial() {
        let data: Vec<u32> = (0..4_000).collect();
        let par_sum: u32 = data.par_iter().map(|&x| x % 13).sum();
        let ser_sum: u32 = data.iter().map(|&x| x % 13).sum();
        assert_eq!(par_sum, ser_sum);
        let chunk_max: Vec<u32> = data
            .par_chunks(64)
            .map(|c| *c.iter().max().unwrap())
            .collect();
        assert_eq!(chunk_max.len(), data.len().div_ceil(64));
        let (even, odd): (Vec<u32>, Vec<u32>) = data.par_iter().partition(|&&x| x % 2 == 0);
        assert_eq!(even.len() + odd.len(), data.len());
    }
}
