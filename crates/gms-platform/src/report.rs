//! Result reporting: CSV and aligned-table writers used by the
//! experiment binaries — the "gather data" tail of the pipeline
//! (Figure 2). Keeping serialization here lets every figure binary
//! stay a thin workload description.

use std::fmt::Write as _;

/// An in-memory result table with a fixed header.
#[derive(Clone, Debug)]
pub struct ResultTable {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(columns: I) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header + rows). Cells containing commas or
    /// quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as an aligned plain-text table for terminals.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns, &widths);
        for row in &self.rows {
            write_row(&mut out, row, &widths);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push('|');
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        out.push_str("\n|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                let _ = write!(out, " {cell} |");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new(["graph", "variant", "time_s"]);
        t.push_row(["orkut", "BK-ADG", "1.25"]);
        t.push_row(["road, usa", "BK-DGR", "0.50"]);
        t
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "graph,variant,time_s");
        assert_eq!(lines[2], "\"road, usa\",BK-DGR,0.50");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = ResultTable::new(["a"]);
        t.push_row(["say \"hi\""]);
        assert_eq!(t.to_csv().lines().nth(1), Some("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn aligned_pads_columns() {
        let text = sample().to_aligned();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("graph    "));
        assert!(lines[1].contains("BK-ADG"));
        // All rows equal width up to trailing cell.
        assert_eq!(lines[1].find("BK-ADG"), lines[2].find("BK-DGR"));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| graph | variant | time_s |");
        assert_eq!(lines[1], "|---|---|---|");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = ResultTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn emptiness() {
        let t = ResultTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
