//! Thread-scaling harness (§8.1.3 / Fig. 8b): runs a kernel under
//! rayon pools of increasing size and reports the runtime series, so
//! speedup curves and their flattening (the memory-bound signature)
//! can be measured.

use std::time::Duration;

/// One point of a scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Threads used.
    pub threads: usize,
    /// Wall-clock runtime.
    pub elapsed: Duration,
}

impl ScalingPoint {
    /// Speedup relative to a baseline runtime.
    pub fn speedup_vs(&self, baseline: Duration) -> f64 {
        baseline.as_secs_f64() / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Default number of timed repeats per point (see [`run_scaling`]).
/// Overridable via the `GMS_SCALING_REPEATS` environment variable;
/// values below 3 are clamped up so the median is always a real
/// middle element.
const DEFAULT_REPEATS: usize = 3;

fn configured_repeats() -> usize {
    std::env::var("GMS_SCALING_REPEATS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_REPEATS)
        .max(3)
}

/// Runs `kernel` under a dedicated rayon pool per thread count and
/// reports, for each point, the **median of at least three timed
/// repeats after one untimed warmup run**. The warmup pays the
/// one-time costs (worker spawn, scratch-buffer growth, page faults on
/// freshly touched data) and the median discards the stray outlier an
/// arithmetic mean would smear into the curve — scaling artifacts were
/// previously single-shot and visibly noisy run to run. Repeat count:
/// `GMS_SCALING_REPEATS` (default 3, floor 3).
///
/// # Panics
/// Panics if a pool cannot be built (e.g. 0 threads requested).
pub fn run_scaling<F: Fn() + Sync>(thread_counts: &[usize], kernel: F) -> Vec<ScalingPoint> {
    let repeats = configured_repeats();
    thread_counts
        .iter()
        .map(|&threads| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            pool.install(&kernel); // warmup: untimed
            let mut samples: Vec<Duration> = (0..repeats)
                .map(|_| {
                    let start = std::time::Instant::now();
                    pool.install(&kernel);
                    start.elapsed()
                })
                .collect();
            samples.sort_unstable();
            ScalingPoint {
                threads,
                elapsed: samples[samples.len() / 2],
            }
        })
        .collect()
}

/// Formats a series as JSON rows `{"kernel","threads","ms","speedup"}`,
/// speedup measured against the series' first point. The machine-
/// efficiency artifacts (`fig08b_machine_eff`, `BENCH_scaling.json`)
/// are built from these rows; hand-rolled because the offline `serde`
/// shim carries no data format.
pub fn series_json_rows(kernel: &str, series: &[ScalingPoint]) -> Vec<String> {
    series_json_rows_with(kernel, series, &[])
}

/// [`series_json_rows`] with per-point extra fields: `extras[i]` is
/// spliced verbatim before the row's closing brace (e.g.
/// `,"efficiency":0.5`), so kernel-specific columns share one row
/// format instead of forking it.
pub fn series_json_rows_with(
    kernel: &str,
    series: &[ScalingPoint],
    extras: &[String],
) -> Vec<String> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let base = first.elapsed;
    series
        .iter()
        .enumerate()
        .map(|(i, point)| {
            format!(
                "{{\"kernel\":\"{}\",\"threads\":{},\"ms\":{:.3},\"speedup\":{:.3}{}}}",
                kernel,
                point.threads,
                point.elapsed.as_secs_f64() * 1e3,
                point.speedup_vs(base),
                extras.get(i).map(String::as_str).unwrap_or(""),
            )
        })
        .collect()
}

/// Parallel efficiency of a series: speedup(p) / p per point, using
/// the first point as the baseline.
pub fn efficiencies(series: &[ScalingPoint]) -> Vec<f64> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let base = first.elapsed.as_secs_f64() * first.threads as f64;
    series
        .iter()
        .map(|p| base / (p.elapsed.as_secs_f64().max(1e-12) * p.threads as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pools_actually_limit_threads() {
        let series = run_scaling(&[1, 2], || {
            let width = rayon::current_num_threads();
            // Inside a pool of size p, current_num_threads reports p.
            let observed: usize = (0..4).into_par_iter().map(|_| width).max().unwrap();
            assert_eq!(observed, width);
        });
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].threads, 1);
        assert_eq!(series[1].threads, 2);
    }

    #[test]
    fn parallel_work_speeds_up() {
        // A compute-bound parallel loop (expensive per-item closures,
        // like a mining subtree) must not be slower with 4 threads
        // than with 1 beyond a generous noise margin — even on a
        // single-core host, where the 4-wide pool is oversubscribed
        // and the scheduler overhead is all cost, no benefit.
        let work = || {
            let total: u64 = (0..2_000u64)
                .into_par_iter()
                .map(|x| {
                    (0..2_000u64).fold(x, |acc, i| acc ^ (acc.wrapping_mul(31).wrapping_add(i)))
                        % 1_000
                })
                .sum();
            std::hint::black_box(total);
        };
        let series = run_scaling(&[1, 4], work);
        let speedup = series[1].speedup_vs(series[0].elapsed);
        assert!(speedup > 0.6, "speedup {speedup}");
    }

    #[test]
    fn each_point_runs_warmup_plus_repeats() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let series = run_scaling(&[1, 2], || {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(series.len(), 2);
        // One untimed warmup plus `repeats` timed runs per point.
        let expected = 2 * (configured_repeats() + 1);
        assert_eq!(calls.load(Ordering::Relaxed), expected);
        assert!(configured_repeats() >= 3, "median needs >= 3 samples");
    }

    #[test]
    fn json_rows_carry_speedup_vs_first_point() {
        let series = vec![
            ScalingPoint {
                threads: 1,
                elapsed: Duration::from_millis(80),
            },
            ScalingPoint {
                threads: 4,
                elapsed: Duration::from_millis(20),
            },
        ];
        let rows = series_json_rows("bk", &series);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            "{\"kernel\":\"bk\",\"threads\":1,\"ms\":80.000,\"speedup\":1.000}"
        );
        assert_eq!(
            rows[1],
            "{\"kernel\":\"bk\",\"threads\":4,\"ms\":20.000,\"speedup\":4.000}"
        );
        assert!(series_json_rows("bk", &[]).is_empty());
    }

    #[test]
    fn efficiency_math() {
        let series = vec![
            ScalingPoint {
                threads: 1,
                elapsed: Duration::from_secs(8),
            },
            ScalingPoint {
                threads: 4,
                elapsed: Duration::from_secs(2),
            },
            ScalingPoint {
                threads: 8,
                elapsed: Duration::from_secs(2),
            },
        ];
        let eff = efficiencies(&series);
        assert!((eff[0] - 1.0).abs() < 1e-9);
        assert!((eff[1] - 1.0).abs() < 1e-9, "perfect scaling to 4");
        assert!((eff[2] - 0.5).abs() < 1e-9, "flattening halves efficiency");
        assert!(efficiencies(&[]).is_empty());
    }
}
