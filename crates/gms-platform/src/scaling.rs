//! Thread-scaling harness (§8.1.3 / Fig. 8b): runs a kernel under
//! rayon pools of increasing size and reports the runtime series, so
//! speedup curves and their flattening (the memory-bound signature)
//! can be measured.

use std::time::Duration;

/// One point of a scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Threads used.
    pub threads: usize,
    /// Wall-clock runtime.
    pub elapsed: Duration,
}

impl ScalingPoint {
    /// Speedup relative to a baseline runtime.
    pub fn speedup_vs(&self, baseline: Duration) -> f64 {
        baseline.as_secs_f64() / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs `kernel` once per thread count in `thread_counts`, each inside
/// a dedicated rayon pool, timing each run.
///
/// # Panics
/// Panics if a pool cannot be built (e.g. 0 threads requested).
pub fn run_scaling<F: Fn() + Sync>(thread_counts: &[usize], kernel: F) -> Vec<ScalingPoint> {
    thread_counts
        .iter()
        .map(|&threads| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let start = std::time::Instant::now();
            pool.install(&kernel);
            ScalingPoint {
                threads,
                elapsed: start.elapsed(),
            }
        })
        .collect()
}

/// Parallel efficiency of a series: speedup(p) / p per point, using
/// the first point as the baseline.
pub fn efficiencies(series: &[ScalingPoint]) -> Vec<f64> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let base = first.elapsed.as_secs_f64() * first.threads as f64;
    series
        .iter()
        .map(|p| base / (p.elapsed.as_secs_f64().max(1e-12) * p.threads as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pools_actually_limit_threads() {
        let series = run_scaling(&[1, 2], || {
            let width = rayon::current_num_threads();
            // Inside a pool of size p, current_num_threads reports p.
            let observed: usize = (0..4).into_par_iter().map(|_| width).max().unwrap();
            assert_eq!(observed, width);
        });
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].threads, 1);
        assert_eq!(series[1].threads, 2);
    }

    #[test]
    fn parallel_work_speeds_up() {
        // A compute-bound parallel loop must not be slower with 4
        // threads than with 1 (allow generous noise margin).
        let work = || {
            let total: u64 = (0..4_000_000u64).into_par_iter().map(|x| x % 7).sum();
            std::hint::black_box(total);
        };
        let series = run_scaling(&[1, 4], work);
        let speedup = series[1].speedup_vs(series[0].elapsed);
        assert!(speedup > 0.8, "speedup {speedup}");
    }

    #[test]
    fn efficiency_math() {
        let series = vec![
            ScalingPoint {
                threads: 1,
                elapsed: Duration::from_secs(8),
            },
            ScalingPoint {
                threads: 4,
                elapsed: Duration::from_secs(2),
            },
            ScalingPoint {
                threads: 8,
                elapsed: Duration::from_secs(2),
            },
        ];
        let eff = efficiencies(&series);
        assert!((eff[0] - 1.0).abs() < 1e-9);
        assert!((eff[1] - 1.0).abs() < 1e-9, "perfect scaling to 4");
        assert!((eff[2] - 0.5).abs() < 1e-9, "flattening halves efficiency");
        assert!(efficiencies(&[]).is_empty());
    }
}
