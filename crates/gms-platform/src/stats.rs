//! Dataset characterization (Table 7): the structural features the
//! paper uses to argue which graphs stress which algorithms — size,
//! sparsity `m/n`, maximum degree, triangle count `T`, `T/n`, and the
//! `T`-skew (maximum triangles per vertex), plus the §8.6 higher-order
//! signal (4-clique density relative to triangle mass is computed by
//! the experiment binaries on top of these).

use gms_core::{CsrGraph, Graph};
use gms_order::triangles_per_vertex;
use serde::Serialize;

/// Structural statistics of one dataset (one Table 7 row).
#[derive(Clone, Debug, Serialize)]
pub struct GraphStats {
    /// Dataset label.
    pub name: String,
    /// Vertices `n`.
    pub n: usize,
    /// Undirected edges `m`.
    pub m: usize,
    /// Sparsity `m/n`.
    pub sparsity: f64,
    /// Maximum degree `Δ̂`.
    pub max_degree: usize,
    /// Triangle count `T`.
    pub triangles: u64,
    /// Average triangles per vertex `T/n`.
    pub triangles_per_vertex: f64,
    /// Maximum triangles on a single vertex `T̂` (the `T`-skew proxy:
    /// the paper reports the spread between average and maximum).
    pub max_triangles_per_vertex: u64,
}

impl GraphStats {
    /// Computes all statistics for `graph`.
    pub fn compute(name: &str, graph: &CsrGraph) -> Self {
        let per_vertex = triangles_per_vertex(graph);
        let triangles = per_vertex.iter().sum::<u64>() / 3;
        let n = graph.num_vertices();
        let m = graph.num_edges_undirected();
        Self {
            name: name.to_string(),
            n,
            m,
            sparsity: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_degree: graph.max_degree(),
            triangles,
            triangles_per_vertex: if n == 0 {
                0.0
            } else {
                triangles as f64 / n as f64
            },
            max_triangles_per_vertex: per_vertex.iter().copied().max().unwrap_or(0),
        }
    }

    /// `T`-skew: ratio of the maximum to the average per-vertex
    /// triangle count (∞-free: 0 when there are no triangles).
    pub fn t_skew(&self) -> f64 {
        if self.triangles_per_vertex == 0.0 {
            0.0
        } else {
            // Per-vertex counts triple-count each triangle corner-wise,
            // so compare against 3T/n.
            self.max_triangles_per_vertex as f64 / (3.0 * self.triangles_per_vertex)
        }
    }

    /// Table 7-style row: name, n, m, m/n, Δ̂, T, T/n, T̂.
    pub fn row(&self) -> String {
        format!(
            "{:<16} {:>8} {:>9} {:>8.2} {:>6} {:>10} {:>9.2} {:>8}",
            self.name,
            self.n,
            self.m,
            self.sparsity,
            self.max_degree,
            self.triangles,
            self.triangles_per_vertex,
            self.max_triangles_per_vertex,
        )
    }

    /// Header matching [`GraphStats::row`].
    pub fn header() -> String {
        format!(
            "{:<16} {:>8} {:>9} {:>8} {:>6} {:>10} {:>9} {:>8}",
            "graph", "n", "m", "m/n", "maxΔ", "T", "T/n", "T̂"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_graph() {
        // Paw graph: triangle + pendant.
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let stats = GraphStats::compute("paw", &g);
        assert_eq!(stats.n, 4);
        assert_eq!(stats.m, 4);
        assert_eq!(stats.triangles, 1);
        assert_eq!(stats.max_degree, 3);
        assert_eq!(stats.max_triangles_per_vertex, 1);
        assert!((stats.sparsity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_separates_uniform_from_hub_graphs() {
        // K6: every vertex in 10 triangles → skew ratio 1.
        let k6 = gms_gen::complete(6);
        let uniform = GraphStats::compute("k6", &k6);
        assert!((uniform.t_skew() - 1.0).abs() < 1e-9);
        // One planted clique in a sparse background: clique members
        // hold nearly all triangles → skew far above 1.
        let (g, _) = gms_gen::planted_cliques(300, 0.005, 1, 12, 3);
        let skewed = GraphStats::compute("planted", &g);
        assert!(skewed.t_skew() > 5.0, "skew {}", skewed.t_skew());
    }

    #[test]
    fn rows_render() {
        let g = gms_gen::grid(3, 3);
        let stats = GraphStats::compute("grid", &g);
        assert!(stats.row().contains("grid"));
        assert!(GraphStats::header().contains("T/n"));
        assert_eq!(stats.t_skew(), 0.0, "grids are triangle-free");
    }
}
