//! # gms-platform
//!
//! The benchmarking platform of GraphMineSuite-rs (§5): the pipeline
//! API with separately-timed stages, the §8.1 measurement methodology
//! (warmup discard, mean + 95% non-parametric CI), the §4.3
//! algorithmic-throughput metric, software performance counters as
//! the PAPI substitute (§5.5 — see DESIGN.md for the substitution
//! rationale), a thread-scaling harness, and Table 7-style dataset
//! statistics — plus the [`kernel`] subsystem: the unified typed
//! entry point ([`kernel::Kernel`]), the name/category
//! [`kernel::Registry`] over every mining kernel in the suite, the
//! graph-owning [`kernel::Session`] with its fingerprint-keyed
//! result cache, and the pool-driven [`kernel::BatchRunner`].

#![warn(missing_docs)]

pub mod counters;
pub mod kernel;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod scaling;
pub mod stats;

pub use counters::{CounterRegion, CounterSnapshot, CountingSet};
pub use kernel::{
    BatchRequest, BatchRunner, CacheKey, CacheStats, Category, GraphHandle, Kernel, KernelError,
    Outcome, ParamSpec, Params, Payload, Registry, ResultCache, Session, SessionStats, Value,
    ValueKind,
};
pub use metrics::{Measurement, Throughput};
pub use pipeline::{run_pipeline, Pipeline, StageTimings};
pub use report::ResultTable;
pub use scaling::{
    efficiencies, run_scaling, series_json_rows, series_json_rows_with, ScalingPoint,
};
pub use stats::GraphStats;
