//! # gms-platform
//!
//! The benchmarking platform of GraphMineSuite-rs (§5): the pipeline
//! API with separately-timed stages, the §8.1 measurement methodology
//! (warmup discard, mean + 95% non-parametric CI), the §4.3
//! algorithmic-throughput metric, software performance counters as
//! the PAPI substitute (§5.5 — see DESIGN.md for the substitution
//! rationale), a thread-scaling harness, and Table 7-style dataset
//! statistics.

#![warn(missing_docs)]

pub mod counters;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod scaling;
pub mod stats;

pub use counters::{CounterRegion, CounterSnapshot, CountingSet};
pub use metrics::{Measurement, Throughput};
pub use pipeline::{run_pipeline, Pipeline, StageTimings};
pub use report::ResultTable;
pub use scaling::{
    efficiencies, run_scaling, series_json_rows, series_json_rows_with, ScalingPoint,
};
pub use stats::GraphStats;
