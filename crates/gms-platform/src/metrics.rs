//! Measurement methodology (§8.1) and the algorithmic-throughput
//! metric (§4.3).
//!
//! The paper's protocol: discard warmup, gather enough samples for a
//! mean with 95% non-parametric confidence intervals, summarize with
//! arithmetic means. `Measurement::collect` implements exactly that.
//! Algorithmic throughput is "graph patterns mined per second" —
//! maximal cliques/s, k-cliques/s, scored vertex pairs/s, ... — the
//! metric that lets run-times be interpreted against graph structure
//! (§8.10).

use std::time::{Duration, Instant};

/// Summary statistics of repeated timed runs.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// All retained samples (seconds), sorted ascending.
    pub samples: Vec<f64>,
    /// Arithmetic mean (seconds).
    pub mean: f64,
    /// 95% non-parametric CI (2.5th / 97.5th percentile of samples).
    pub ci95: (f64, f64),
}

impl Measurement {
    /// Times `run` `samples + warmup` times, discards the warmup runs
    /// (the paper discards the first 1% of data; with small sample
    /// counts we discard explicit warmup iterations), and summarizes.
    pub fn collect<F: FnMut()>(samples: usize, warmup: usize, mut run: F) -> Self {
        assert!(samples >= 1);
        for _ in 0..warmup {
            run();
        }
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            run();
            times.push(t.elapsed().as_secs_f64());
        }
        Self::from_samples(times)
    }

    /// Summarizes existing samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let lo = percentile(&samples, 0.025);
        let hi = percentile(&samples, 0.975);
        Self {
            samples,
            mean,
            ci95: (lo, hi),
        }
    }

    /// Mean as a `Duration`.
    pub fn mean_duration(&self) -> Duration {
        Duration::from_secs_f64(self.mean)
    }
}

/// Nearest-rank percentile of sorted samples.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Algorithmic throughput (§4.3): patterns mined per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Patterns found (cliques, pairs, clusters, ...).
    pub patterns: u64,
    /// Time taken.
    pub elapsed: Duration,
}

impl Throughput {
    /// Creates a throughput record.
    pub fn new(patterns: u64, elapsed: Duration) -> Self {
        Self { patterns, elapsed }
    }

    /// Patterns per second.
    pub fn per_second(&self) -> f64 {
        self.patterns as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_gathers_and_summarizes() {
        let mut counter = 0u64;
        let m = Measurement::collect(10, 2, || {
            counter += 1;
            std::hint::black_box(&counter);
        });
        assert_eq!(counter, 12, "warmup + samples executions");
        assert_eq!(m.samples.len(), 10);
        assert!(m.ci95.0 <= m.mean || m.samples.len() == 1);
        assert!(m.mean >= 0.0);
    }

    #[test]
    fn summary_of_known_samples() {
        let m = Measurement::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.samples, vec![1.0, 2.0, 3.0]);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert_eq!(m.ci95, (1.0, 3.0));
    }

    #[test]
    fn throughput_rates() {
        let t = Throughput::new(500, Duration::from_millis(250));
        assert!((t.per_second() - 2000.0).abs() < 1e-6);
        // Zero elapsed must not divide by zero.
        let z = Throughput::new(5, Duration::ZERO);
        assert!(z.per_second().is_finite());
    }
}
