//! Software performance counters — the reproduction's substitute for
//! the paper's PAPI integration (§5.5, Listing 4).
//!
//! The original gathers hardware events (stalled cycles, cache misses)
//! to show that graph mining is memory-bound. Without hardware
//! counters we instrument the set-algebra layer itself: a
//! [`CountingSet`] decorator wraps any [`Set`] implementation and
//! counts operations and elements touched, globally and thread-safely.
//! Bytes-touched per operation is the memory-pressure proxy reported
//! by the Fig. 8b harness.
//!
//! The API mirrors the paper's `PAPIW::START()/STOP()` shape:
//! [`CounterRegion`] snapshots the global counters around a measured
//! region.

use gms_core::{Set, SetElement};
use std::sync::atomic::{AtomicU64, Ordering};

static SET_OPS: AtomicU64 = AtomicU64::new(0);
static ELEMENTS_TOUCHED: AtomicU64 = AtomicU64::new(0);
static MEMBERSHIP_TESTS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn bump(ops: u64, elements: u64) {
    SET_OPS.fetch_add(ops, Ordering::Relaxed);
    ELEMENTS_TOUCHED.fetch_add(elements, Ordering::Relaxed);
}

/// A snapshot of the global counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Binary set operations executed (∩, ∪, \ and their variants).
    pub set_ops: u64,
    /// Total elements read/written by those operations (the
    /// bytes-touched proxy: multiply by the element width).
    pub elements_touched: u64,
    /// Point membership tests (`contains`).
    pub membership_tests: u64,
}

impl CounterSnapshot {
    fn now() -> Self {
        Self {
            set_ops: SET_OPS.load(Ordering::Relaxed),
            elements_touched: ELEMENTS_TOUCHED.load(Ordering::Relaxed),
            membership_tests: MEMBERSHIP_TESTS.load(Ordering::Relaxed),
        }
    }

    fn delta(self, earlier: Self) -> Self {
        Self {
            set_ops: self.set_ops - earlier.set_ops,
            elements_touched: self.elements_touched - earlier.elements_touched,
            membership_tests: self.membership_tests - earlier.membership_tests,
        }
    }

    /// Estimated bytes moved, assuming 4-byte vertex IDs.
    pub fn bytes_touched(&self) -> u64 {
        self.elements_touched * std::mem::size_of::<SetElement>() as u64
    }
}

/// Measures the counter delta across a region, PAPI-wrapper style:
///
/// ```
/// use gms_platform::counters::CounterRegion;
/// let region = CounterRegion::start();
/// // ... run instrumented code (CountingSet-backed kernels) ...
/// let stats = region.stop();
/// assert_eq!(stats.set_ops, 0);
/// ```
#[must_use = "call stop() to obtain the counter delta"]
pub struct CounterRegion {
    start: CounterSnapshot,
}

impl CounterRegion {
    /// Begins a measured region (paper: `PAPIW::START`).
    pub fn start() -> Self {
        Self {
            start: CounterSnapshot::now(),
        }
    }

    /// Ends the region and returns the delta (paper: `PAPIW::STOP`).
    pub fn stop(self) -> CounterSnapshot {
        CounterSnapshot::now().delta(self.start)
    }
}

/// A [`Set`] decorator that feeds the global counters. Plugging
/// `CountingSet<RoaringSet>` instead of `RoaringSet` into any kernel
/// instruments it without touching the kernel — modularity ⑤⁺ applied
/// to measurement itself.
#[derive(Clone, Debug, PartialEq)]
pub struct CountingSet<S: Set> {
    inner: S,
}

impl<S: Set> CountingSet<S> {
    /// Unwraps the inner set.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Set> Set for CountingSet<S> {
    fn empty() -> Self {
        Self { inner: S::empty() }
    }

    fn with_universe(universe_hint: usize) -> Self {
        Self {
            inner: S::with_universe(universe_hint),
        }
    }

    fn from_sorted(elements: &[SetElement]) -> Self {
        Self {
            inner: S::from_sorted(elements),
        }
    }

    fn cardinality(&self) -> usize {
        self.inner.cardinality()
    }

    fn contains(&self, element: SetElement) -> bool {
        MEMBERSHIP_TESTS.fetch_add(1, Ordering::Relaxed);
        self.inner.contains(element)
    }

    fn add(&mut self, element: SetElement) {
        bump(1, 1);
        self.inner.add(element);
    }

    fn remove(&mut self, element: SetElement) {
        bump(1, 1);
        self.inner.remove(element);
    }

    fn intersect(&self, other: &Self) -> Self {
        bump(1, (self.cardinality() + other.cardinality()) as u64);
        Self {
            inner: self.inner.intersect(&other.inner),
        }
    }

    fn intersect_count(&self, other: &Self) -> usize {
        bump(1, (self.cardinality() + other.cardinality()) as u64);
        self.inner.intersect_count(&other.inner)
    }

    fn union(&self, other: &Self) -> Self {
        bump(1, (self.cardinality() + other.cardinality()) as u64);
        Self {
            inner: self.inner.union(&other.inner),
        }
    }

    fn diff(&self, other: &Self) -> Self {
        bump(1, (self.cardinality() + other.cardinality()) as u64);
        Self {
            inner: self.inner.diff(&other.inner),
        }
    }

    fn iter(&self) -> impl Iterator<Item = SetElement> + '_ {
        self.inner.iter()
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::SortedVecSet;

    type CSet = CountingSet<SortedVecSet>;

    #[test]
    fn region_captures_operation_deltas() {
        let a = CSet::from_sorted(&[1, 2, 3, 4]);
        let b = CSet::from_sorted(&[3, 4, 5]);
        let region = CounterRegion::start();
        let c = a.intersect(&b);
        let _ = a.union(&b);
        let _ = a.diff(&b);
        let stats = region.stop();
        assert_eq!(c.to_vec(), vec![3, 4]);
        assert!(stats.set_ops >= 3);
        assert!(stats.elements_touched >= 21);
        assert_eq!(stats.bytes_touched(), stats.elements_touched * 4);
    }

    #[test]
    fn membership_counter() {
        let a = CSet::from_sorted(&[10, 20]);
        let region = CounterRegion::start();
        assert!(a.contains(10));
        assert!(!a.contains(11));
        let stats = region.stop();
        assert!(stats.membership_tests >= 2);
    }

    #[test]
    fn decorated_set_behaves_identically() {
        // The conformance relation: CountingSet<S> must mirror S.
        let raw_a = SortedVecSet::from_sorted(&[1, 5, 9]);
        let raw_b = SortedVecSet::from_sorted(&[5, 9, 11]);
        let dec_a = CSet::from_sorted(&[1, 5, 9]);
        let dec_b = CSet::from_sorted(&[5, 9, 11]);
        assert_eq!(
            raw_a.intersect(&raw_b).to_vec(),
            dec_a.intersect(&dec_b).to_vec()
        );
        assert_eq!(raw_a.union(&raw_b).to_vec(), dec_a.union(&dec_b).to_vec());
        assert_eq!(raw_a.diff(&raw_b).to_vec(), dec_a.diff(&dec_b).to_vec());
        assert_eq!(raw_a.cardinality(), dec_a.cardinality());
    }
}
