//! Batched kernel execution through the work-stealing pool: the
//! throughput shape of the north-star service layer. A batch is
//! validated request by request, deduplicated against both the
//! session cache and itself, and the remaining unique jobs fan out
//! as stealable tasks on a sized rayon pool.

use super::session::{GraphHandle, Session};
use super::{CancelToken, KernelError, Outcome, Params};
use rayon::prelude::*;

/// One kernel request inside a batch.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// Registered kernel name.
    pub kernel: String,
    /// Graph to mine (a handle issued by the serving session).
    pub graph: GraphHandle,
    /// Parameter overrides.
    pub params: Params,
}

impl BatchRequest {
    /// Convenience constructor.
    pub fn new(kernel: &str, graph: GraphHandle, params: Params) -> Self {
        Self {
            kernel: kernel.to_string(),
            graph,
            params,
        }
    }
}

/// Executes slices of [`BatchRequest`]s against a [`Session`],
/// running cache-missing kernels concurrently on a work-stealing
/// pool of the configured width.
pub struct BatchRunner {
    threads: usize,
}

impl BatchRunner {
    /// A runner over `threads` workers (0 = the pool's default
    /// width, which honors `RAYON_NUM_THREADS`).
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// Runs every request, returning outcomes aligned with the input
    /// slice.
    ///
    /// Requests whose `(fingerprint, kernel, params)` key was served
    /// before come back from the session cache; duplicates *within*
    /// the batch run once, with the copies marked `cached`. Fresh
    /// results are inserted into the session cache, so a subsequent
    /// batch (or [`Session::run`]) reuses them.
    pub fn run(
        &self,
        session: &mut Session,
        requests: &[BatchRequest],
    ) -> Vec<Result<Outcome, KernelError>> {
        self.run_cancellable(session, requests, &CancelToken::none())
    }

    /// [`BatchRunner::run`] under a cooperative [`CancelToken`]
    /// shared by every request in the batch — the shape a propagated
    /// request deadline takes once it reaches batched execution.
    ///
    /// Cache hits are still served after the token fires (they cost
    /// nothing), but jobs that would need kernel time fail fast with
    /// [`KernelError::DeadlineExceeded`], and jobs already running
    /// stop at the kernel's next cancellation point. Failed jobs are
    /// never cached.
    pub fn run_cancellable(
        &self,
        session: &mut Session,
        requests: &[BatchRequest],
        cancel: &CancelToken,
    ) -> Vec<Result<Outcome, KernelError>> {
        // Phase 1 (sequential): validate, consult the cache, and
        // collect the unique keys that actually need kernel time.
        // `slots` remembers how to assemble each request's response:
        // an immediate result, or an index into the unique job list.
        enum Slot {
            Ready(Result<Outcome, KernelError>),
            Job { index: usize, duplicate: bool },
        }
        let mut jobs: Vec<(super::cache::CacheKey, &BatchRequest)> = Vec::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
        for request in requests {
            match session.cache_key(&request.kernel, request.graph, &request.params) {
                Err(e) => slots.push(Slot::Ready(Err(e))),
                Ok(key) => {
                    if let Some(hit) = session.cache_get(&key) {
                        slots.push(Slot::Ready(Ok(hit)));
                    } else if let Some(index) = jobs.iter().position(|(k, _)| *k == key) {
                        slots.push(Slot::Job {
                            index,
                            duplicate: true,
                        });
                    } else {
                        jobs.push((key, request));
                        slots.push(Slot::Job {
                            index: jobs.len() - 1,
                            duplicate: false,
                        });
                    }
                }
            }
        }

        // Phase 2 (parallel): the unique misses fan out on the pool.
        // Kernels only need `&Session` (graphs + registry); each job
        // goes through the shared cache's single-flight entry point,
        // which inserts fresh outcomes itself and coalesces with any
        // identical request another session has in flight.
        let owner = session.owner_tag();
        let cache = session.shared_cache();
        let frozen: &Session = session;
        let mut builder = rayon::ThreadPoolBuilder::new();
        if self.threads > 0 {
            builder = builder.num_threads(self.threads);
        }
        let pool = builder.build().expect("batch pool");
        let computed: Vec<Result<Outcome, KernelError>> = pool.install(|| {
            jobs.par_iter()
                .map(|(key, request)| {
                    let kernel = frozen
                        .registry()
                        .get(&request.kernel)
                        .expect("validated kernel name");
                    if cancel.expired() {
                        return Err(KernelError::DeadlineExceeded);
                    }
                    match frozen.store(request.graph)? {
                        super::GraphStore::Csr(graph) => cache.run_or_wait(key, owner, || {
                            kernel.run_with_cancel(graph, &request.params, cancel)
                        }),
                        super::GraphStore::Compressed(graph) => {
                            cache.run_or_wait(key, owner, || {
                                kernel.run_compressed_with_cancel(graph, &request.params, cancel)
                            })
                        }
                    }
                })
                .collect()
        });

        // Phase 3 (sequential): fold the unique jobs into this
        // session's stats and assemble responses in request order.
        for outcome in computed.iter().flatten() {
            session.note_outcome(outcome.cached);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(result) => result,
                Slot::Job { index, duplicate } => {
                    let mut result = computed[index].clone();
                    if duplicate {
                        if let Ok(outcome) = &mut result {
                            // The duplicate did not run a kernel of
                            // its own: mark it like a cache hit.
                            outcome.cached = true;
                            outcome.timings = crate::pipeline::StageTimings::default();
                        }
                    }
                    result
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_batch_dedups_and_fills_the_cache() {
        let mut session = Session::new();
        let g = session.add_graph(gms_gen::planted_cliques(100, 0.03, 2, 5, 3).0);
        let requests = vec![
            BatchRequest::new("triangle-count", g, Params::new()),
            BatchRequest::new("k-clique", g, Params::new().with("k", 3)),
            // Duplicate of the first request: must not run twice.
            BatchRequest::new("triangle-count", g, Params::new()),
            BatchRequest::new("no-such-kernel", g, Params::new()),
        ];
        let results = BatchRunner::new(2).run(&mut session, &requests);
        assert_eq!(results.len(), 4);
        let first = results[0].as_ref().unwrap();
        let dup = results[2].as_ref().unwrap();
        assert!(!first.cached);
        assert!(dup.cached, "in-batch duplicate is served, not re-run");
        assert!(dup.same_result(first));
        assert!(matches!(results[3], Err(KernelError::UnknownKernel(_))));
        // The batch populated the session cache.
        let hit = session
            .run("k-clique", g, &Params::new().with("k", 3))
            .unwrap();
        assert!(hit.cached);
    }

    #[test]
    fn fired_token_fails_misses_but_serves_hits() {
        let mut session = Session::new();
        let g = session.add_graph(gms_gen::gnp(80, 0.1, 4));
        let warm = vec![BatchRequest::new("triangle-count", g, Params::new())];
        assert!(BatchRunner::new(2).run(&mut session, &warm)[0].is_ok());

        let fired = CancelToken::manual();
        fired.cancel();
        let requests = vec![
            BatchRequest::new("triangle-count", g, Params::new()), // cached
            BatchRequest::new("k-clique", g, Params::new().with("k", 3)), // miss
        ];
        let results = BatchRunner::new(2).run_cancellable(&mut session, &requests, &fired);
        assert!(results[0].as_ref().unwrap().cached, "hits still served");
        assert!(matches!(results[1], Err(KernelError::DeadlineExceeded)));
        // The failure was not cached: a live retry computes it.
        let retry = session
            .run("k-clique", g, &Params::new().with("k", 3))
            .unwrap();
        assert!(!retry.cached);
    }

    #[test]
    fn second_batch_is_all_cache_hits() {
        let mut session = Session::new();
        let g = session.add_graph(gms_gen::gnp(80, 0.1, 4));
        let requests: Vec<BatchRequest> = ["triangle-count", "bk-gms-adg", "order-degree"]
            .iter()
            .map(|k| BatchRequest::new(k, g, Params::new()))
            .collect();
        let first = BatchRunner::new(2).run(&mut session, &requests);
        let second = BatchRunner::new(2).run(&mut session, &requests);
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert!(!a.cached);
            assert!(b.cached);
            assert!(b.same_result(a));
        }
    }
}
