//! Typed kernel parameters: a small serde-style key/value bag
//! ([`Params`]) plus the per-kernel parameter schema ([`ParamSpec`])
//! that the [`Registry`](super::Registry) validates requests against.
//!
//! Every parameter a kernel accepts is declared once in its
//! [`Kernel::params`](super::Kernel::params) schema — name, type,
//! default, and (for string parameters) the closed set of choices.
//! Callers pass only the keys they want to override; the schema
//! supplies the rest. Because the schema is data, the benchmark
//! harness can *enumerate* it: the ablation binaries sweep a
//! parameter's `choices` instead of hard-coding the variants.

use super::KernelError;
use std::collections::BTreeMap;

/// A parameter value: the four primitive shapes kernels configure
/// themselves with.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Integer knob (`k`, `par-depth`, `seed`, ...).
    Int(i64),
    /// Floating-point knob (`eps`, `fraction`, ...).
    Float(f64),
    /// Boolean switch (`collect`, ...).
    Bool(bool),
    /// Enumerated choice (`ordering`, `layout`, ...).
    Str(String),
}

impl Value {
    /// The kind of this value, for schema checks and error messages.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Bool(_) => ValueKind::Bool,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// Canonical text form, used in cache keys and reports.
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x:?}"),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// The type of a parameter, as declared by a [`ParamSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// [`Value::Int`].
    Int,
    /// [`Value::Float`].
    Float,
    /// [`Value::Bool`].
    Bool,
    /// [`Value::Str`].
    Str,
}

impl std::fmt::Display for ValueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Bool => "bool",
            ValueKind::Str => "str",
        };
        f.write_str(name)
    }
}

/// Declaration of one kernel parameter: its name, type, default and
/// (for enumerated string parameters) the admissible choices.
#[derive(Clone, Debug)]
pub struct ParamSpec {
    /// Parameter name (kebab-case).
    pub name: &'static str,
    /// Expected value type.
    pub kind: ValueKind,
    /// Value used when the caller does not set the parameter.
    pub default: Value,
    /// One-line description for `--help`-style listings.
    pub help: &'static str,
    /// Closed set of admissible values for [`ValueKind::Str`]
    /// parameters; empty means free-form. Sweepable by harnesses.
    pub choices: &'static [&'static str],
}

impl ParamSpec {
    /// An integer parameter.
    pub fn int(name: &'static str, default: i64, help: &'static str) -> Self {
        Self {
            name,
            kind: ValueKind::Int,
            default: Value::Int(default),
            help,
            choices: &[],
        }
    }

    /// A float parameter.
    pub fn float(name: &'static str, default: f64, help: &'static str) -> Self {
        Self {
            name,
            kind: ValueKind::Float,
            default: Value::Float(default),
            help,
            choices: &[],
        }
    }

    /// A boolean parameter.
    pub fn bool(name: &'static str, default: bool, help: &'static str) -> Self {
        Self {
            name,
            kind: ValueKind::Bool,
            default: Value::Bool(default),
            help,
            choices: &[],
        }
    }

    /// An enumerated string parameter; `choices[0]` should be the
    /// default unless stated otherwise.
    pub fn choice(
        name: &'static str,
        default: &'static str,
        choices: &'static [&'static str],
        help: &'static str,
    ) -> Self {
        debug_assert!(choices.contains(&default));
        Self {
            name,
            kind: ValueKind::Str,
            default: Value::Str(default.to_string()),
            help,
            choices,
        }
    }
}

/// A set of parameter overrides for one kernel request. Keys not set
/// here take the defaults from the kernel's [`ParamSpec`] schema.
///
/// Built fluently:
///
/// ```
/// use gms_platform::kernel::Params;
/// let p = Params::new().with("k", 5).with("ordering", "degeneracy");
/// assert_eq!(p.get_int("k", 4), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Params {
    values: BTreeMap<String, Value>,
}

impl Params {
    /// No overrides: every parameter at its declared default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a parameter (builder style).
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.values.insert(name.to_string(), value.into());
        self
    }

    /// Sets a parameter in place.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        self.values.insert(name.to_string(), value.into());
    }

    /// The raw override, if set.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Iterates the overrides in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Integer accessor with a default. Integers are the only
    /// accepted shape; schema validation rejects others up front.
    pub fn get_int(&self, name: &str, default: i64) -> i64 {
        match self.values.get(name) {
            Some(Value::Int(i)) => *i,
            _ => default,
        }
    }

    /// Float accessor with a default; integer overrides coerce.
    pub fn get_float(&self, name: &str, default: f64) -> f64 {
        match self.values.get(name) {
            Some(Value::Float(x)) => *x,
            Some(Value::Int(i)) => *i as f64,
            _ => default,
        }
    }

    /// Boolean accessor with a default.
    pub fn get_bool(&self, name: &str, default: bool) -> bool {
        match self.values.get(name) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    /// String accessor with a default.
    pub fn get_str<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        match self.values.get(name) {
            Some(Value::Str(s)) => s.as_str(),
            _ => default,
        }
    }

    /// Parses a [`Params::canonical`] rendering back into a `Params`
    /// — the inverse the cache's delta migration needs to re-run a
    /// kernel's incremental path from a stored [`CacheKey`] params
    /// string.
    ///
    /// Value types are inferred: `true`/`false` → bool, integer
    /// literal → int, float literal → float, anything else → string.
    /// This round-trips every canonical rendering whose string values
    /// contain no `,`/`=` and do not themselves parse as numbers —
    /// true for the whole built-in kernel suite, whose string
    /// parameters are closed keyword choices.
    ///
    /// [`CacheKey`]: super::CacheKey
    pub fn from_canonical(canonical: &str) -> Self {
        let mut params = Params::new();
        for part in canonical.split(',').filter(|p| !p.is_empty()) {
            let Some((name, value)) = part.split_once('=') else {
                continue;
            };
            let value = match value {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                other => {
                    if let Ok(i) = other.parse::<i64>() {
                        Value::Int(i)
                    } else if let Ok(x) = other.parse::<f64>() {
                        Value::Float(x)
                    } else {
                        Value::Str(other.to_string())
                    }
                }
            };
            params.set(name, value);
        }
        params
    }

    /// Checks the overrides against a kernel's schema: unknown names,
    /// type mismatches, and out-of-choice strings are errors (floats
    /// additionally accept integer literals).
    pub fn validate(&self, kernel: &str, specs: &[ParamSpec]) -> Result<(), KernelError> {
        for (name, value) in self.iter() {
            let spec =
                specs
                    .iter()
                    .find(|s| s.name == name)
                    .ok_or_else(|| KernelError::UnknownParam {
                        kernel: kernel.to_string(),
                        param: name.to_string(),
                    })?;
            let kind_ok = value.kind() == spec.kind
                || (spec.kind == ValueKind::Float && value.kind() == ValueKind::Int);
            if !kind_ok {
                return Err(KernelError::BadParam {
                    kernel: kernel.to_string(),
                    param: name.to_string(),
                    message: format!("expected {}, got {}", spec.kind, value.kind()),
                });
            }
            if let Value::Str(s) = value {
                if !spec.choices.is_empty() && !spec.choices.contains(&s.as_str()) {
                    return Err(KernelError::BadParam {
                        kernel: kernel.to_string(),
                        param: name.to_string(),
                        message: format!("{s:?} is not one of {:?}", spec.choices),
                    });
                }
            }
        }
        Ok(())
    }

    /// Canonical `name=value` rendering with defaults filled in —
    /// the params half of the result-cache key, and the label the
    /// harness prints. Two `Params` that resolve to the same
    /// effective configuration render identically.
    pub fn canonical(&self, specs: &[ParamSpec]) -> String {
        let mut parts: Vec<String> = specs
            .iter()
            .map(|spec| {
                let value = self.values.get(spec.name).unwrap_or(&spec.default);
                // An integer override of a float parameter is the
                // same effective configuration as its float spelling
                // (`eps=1` ≡ `eps=1.0`): render through the declared
                // kind so both share one cache line.
                let rendered = match value {
                    Value::Int(i) if spec.kind == ValueKind::Float => {
                        Value::Float(*i as f64).render()
                    }
                    other => other.render(),
                };
                format!("{}={}", spec.name, rendered)
            })
            .collect();
        // Free-form overrides outside the schema (only possible when
        // validation is skipped) still need to key the cache.
        for (name, value) in self.iter() {
            if !specs.iter().any(|s| s.name == name) {
                parts.push(format!("{}={}", name, value.render()));
            }
        }
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("k", 4, "clique size"),
            ParamSpec::float("eps", 0.25, "ADG epsilon"),
            ParamSpec::choice("ordering", "adg", &["adg", "degree"], "order"),
            ParamSpec::bool("collect", false, "materialize"),
        ]
    }

    #[test]
    fn typed_accessors_and_defaults() {
        let p = Params::new().with("k", 7).with("ordering", "degree");
        assert_eq!(p.get_int("k", 4), 7);
        assert_eq!(p.get_float("eps", 0.25), 0.25);
        assert_eq!(p.get_str("ordering", "adg"), "degree");
        assert!(!p.get_bool("collect", false));
    }

    #[test]
    fn float_accepts_int_override() {
        let p = Params::new().with("eps", 1);
        assert!(p.validate("t", &specs()).is_ok());
        assert_eq!(p.get_float("eps", 0.25), 1.0);
    }

    #[test]
    fn validation_rejects_unknown_and_mistyped() {
        let specs = specs();
        assert!(Params::new().with("zz", 1).validate("t", &specs).is_err());
        assert!(Params::new().with("k", "x").validate("t", &specs).is_err());
        assert!(Params::new()
            .with("ordering", "zzz")
            .validate("t", &specs)
            .is_err());
        assert!(Params::new().with("k", 9).validate("t", &specs).is_ok());
    }

    #[test]
    fn canonical_fills_defaults_and_is_order_free() {
        let specs = specs();
        let a = Params::new().with("ordering", "degree").with("k", 5);
        let b = Params::new().with("k", 5).with("ordering", "degree");
        assert_eq!(a.canonical(&specs), b.canonical(&specs));
        assert_eq!(
            a.canonical(&specs),
            "k=5,eps=0.25,ordering=degree,collect=false"
        );
        // Equal effective configs render the same even when one side
        // spells the default explicitly.
        let c = Params::new().with("k", 5).with("ordering", "degree");
        let d = c.clone().with("eps", 0.25);
        assert_eq!(c.canonical(&specs), d.canonical(&specs));
    }

    #[test]
    fn from_canonical_round_trips_the_canonical_rendering() {
        let specs = specs();
        let p = Params::new()
            .with("k", 7)
            .with("eps", 0.5)
            .with("ordering", "degree")
            .with("collect", true);
        let rendered = p.canonical(&specs);
        let back = Params::from_canonical(&rendered);
        assert_eq!(back.canonical(&specs), rendered);
        assert_eq!(back.get_int("k", 0), 7);
        assert_eq!(back.get_float("eps", 0.0), 0.5);
        assert_eq!(back.get_str("ordering", ""), "degree");
        assert!(back.get_bool("collect", false));
        // Empty canonical (kernel without parameters) parses to the
        // empty override set.
        assert_eq!(Params::from_canonical(""), Params::new());
    }

    #[test]
    fn canonical_coerces_int_overrides_of_float_params() {
        // `eps=1` and `eps=1.0` are the same effective config and
        // must share one cache line.
        let specs = specs();
        let int_spelling = Params::new().with("eps", 1);
        let float_spelling = Params::new().with("eps", 1.0);
        assert_eq!(
            int_spelling.canonical(&specs),
            float_spelling.canonical(&specs)
        );
    }
}
