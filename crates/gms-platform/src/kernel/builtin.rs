//! Adapters wrapping every public mining entry point of the suite in
//! the [`Kernel`] trait — the migration of the legacy signature zoo
//! (`BkVariant::run`, `k_clique_count`, bespoke VF2/learn/opt
//! functions) onto the one typed entry point. The legacy functions
//! remain public in their crates; these adapters are how the
//! registry, the session cache, the batch runner, and the benchmark
//! harness reach them.

use super::{
    CancelToken, Category, DeltaSensitivity, Kernel, KernelError, Outcome, ParamSpec, Params,
    Payload,
};
use crate::counters::CountingSet;
use crate::pipeline::StageTimings;
use gms_core::hash::FxHasher;
use gms_core::{
    CsrGraph, DenseBitSet, Graph, HashVertexSet, NodeId, RoaringSet, SetGraph, SortedVecSet,
};
use gms_graph::EdgeDelta;
use gms_learn::{
    evaluate_accuracy, jarvis_patrick, label_propagation, louvain, num_clusters,
    similarity_batch_csr, JarvisPatrickConfig, SimilarityMeasure,
};
use gms_match::{
    count_embeddings_cancellable, count_embeddings_parallel_cancellable, IsoMode, IsoOptions,
    LabeledGraph, ParallelIsoConfig,
};
use gms_opt::{
    boruvka, forest_weight, greedy_coloring, johansson, jones_plassmann, min_cut, verify_coloring,
    WeightedEdge,
};
use gms_order::{bfs_order, k_core_by_peeling, random_order, OrderingKind};
use gms_pattern::{
    bron_kerbosch_cancellable, k_clique_count_cancellable, k_clique_stars,
    triangle_count_node_iterator, triangle_count_rank_merge, triangle_count_touched, BkConfig,
    BkVariant, KcConfig, KcParallel, SubgraphMode,
};
use std::hash::Hasher;
use std::time::Instant;

/// Registers the whole built-in suite.
pub(super) fn register_all(registry: &mut super::Registry) {
    // Pattern mining (§4.1.1): the fully parameterized BK kernel, the
    // five named paper variants, k-cliques, triangles, clique-stars.
    registry.register(Box::new(BkKernel));
    for variant in BkVariant::ALL {
        registry.register(Box::new(BkVariantKernel(variant)));
    }
    registry.register(Box::new(KCliqueKernel));
    registry.register(Box::new(TriangleKernel));
    registry.register(Box::new(CliqueStarKernel));
    // Subgraph matching (§4.1.3).
    registry.register(Box::new(SubgraphIsoKernel));
    registry.register(Box::new(ParallelIsoKernel));
    // Learning (§4.1.2).
    registry.register(Box::new(SimilarityKernel));
    registry.register(Box::new(LinkPredictionKernel));
    registry.register(Box::new(JarvisPatrickKernel));
    registry.register(Box::new(LabelPropagationKernel));
    registry.register(Box::new(LouvainKernel));
    // Optimization (§4.1.4).
    registry.register(Box::new(ColoringKernel));
    registry.register(Box::new(MstKernel));
    registry.register(Box::new(MinCutKernel));
    registry.register(Box::new(KCoreKernel));
    // Reorderings (③) as runnable preprocessing stages.
    for which in OrderWhich::ALL {
        registry.register(Box::new(OrderKernel(which)));
    }
}

// ---------------------------------------------------------------- shared

const ORDERING_CHOICES: &[&str] = &["adg", "natural", "degree", "degeneracy", "triangle"];

fn ordering_specs() -> [ParamSpec; 2] {
    [
        ParamSpec::choice(
            "ordering",
            "adg",
            ORDERING_CHOICES,
            "preprocessing vertex order (③)",
        ),
        ParamSpec::float(
            "eps",
            0.25,
            "epsilon of the (2+ε)-approximate degeneracy order",
        ),
    ]
}

fn ordering_from(params: &Params) -> OrderingKind {
    match params.get_str("ordering", "adg") {
        "natural" => OrderingKind::Natural,
        "degree" => OrderingKind::Degree,
        "degeneracy" => OrderingKind::Degeneracy,
        "triangle" => OrderingKind::TriangleCount,
        _ => OrderingKind::ApproxDegeneracy(params.get_float("eps", 0.25)),
    }
}

fn stage(preprocess: std::time::Duration, kernel: std::time::Duration) -> StageTimings {
    StageTimings {
        convert: std::time::Duration::ZERO,
        preprocess,
        kernel,
    }
}

// ---------------------------------------------------------------- pattern

/// Bron–Kerbosch with every §6.2 design axis as a typed parameter:
/// set layout, vertex order, H-subgraph policy, task depth.
struct BkKernel;

impl Kernel for BkKernel {
    fn name(&self) -> &'static str {
        "bk"
    }
    fn category(&self) -> Category {
        Category::Pattern
    }
    fn about(&self) -> &'static str {
        "maximal clique listing (Bron-Kerbosch, Algorithm 6), all design axes parameterized"
    }
    fn params(&self) -> Vec<ParamSpec> {
        let [ordering, eps] = ordering_specs();
        vec![
            ParamSpec::choice(
                "layout",
                "dense",
                &["dense", "sorted", "roaring", "hash", "counting"],
                "set layout backing P/X and the neighborhoods (⑤⁺); `counting` \
                 instruments sorted sets through the software counters",
            ),
            ordering,
            eps,
            ParamSpec::choice(
                "subgraph",
                "none",
                &["none", "outermost", "per-level"],
                "induced-subgraph policy of §6.2",
            ),
            ParamSpec::int("par-depth", 4, "task-spawn depth of the parallel search"),
            ParamSpec::bool("collect", false, "materialize the cliques in the payload"),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.run_with_cancel(graph, params, &CancelToken::none())
    }
    fn run_with_cancel(
        &self,
        graph: &CsrGraph,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        let config = BkConfig {
            ordering: ordering_from(params),
            subgraph: match params.get_str("subgraph", "none") {
                "outermost" => SubgraphMode::Outermost,
                "per-level" => SubgraphMode::PerLevel,
                _ => SubgraphMode::None,
            },
            collect: params.get_bool("collect", false),
            par_depth: params.get_int("par-depth", 4).max(0) as usize,
        };
        let out = match params.get_str("layout", "dense") {
            "sorted" => bron_kerbosch_cancellable::<SortedVecSet>(graph, &config, cancel),
            "roaring" => bron_kerbosch_cancellable::<RoaringSet>(graph, &config, cancel),
            "hash" => bron_kerbosch_cancellable::<HashVertexSet>(graph, &config, cancel),
            "counting" => {
                bron_kerbosch_cancellable::<CountingSet<SortedVecSet>>(graph, &config, cancel)
            }
            _ => bron_kerbosch_cancellable::<DenseBitSet>(graph, &config, cancel),
        };
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(Outcome::new(self.name(), out.clique_count)
            .with_timings(stage(out.preprocess, out.mine))
            .with_payload(match out.cliques {
                Some(cliques) => Payload::VertexGroups(cliques),
                None => Payload::None,
            }))
    }
}

/// One of the paper's five named BK variants, pinned to its layout and
/// order (Fig. 1 / Fig. 11 presentation names).
struct BkVariantKernel(BkVariant);

impl Kernel for BkVariantKernel {
    fn name(&self) -> &'static str {
        match self.0 {
            BkVariant::Das => "bk-das",
            BkVariant::GmsDeg => "bk-gms-deg",
            BkVariant::GmsDgr => "bk-gms-dgr",
            BkVariant::GmsAdg => "bk-gms-adg",
            BkVariant::GmsAdgS => "bk-gms-adg-s",
        }
    }
    fn category(&self) -> Category {
        Category::Pattern
    }
    fn about(&self) -> &'static str {
        "a named paper variant of Bron-Kerbosch maximal clique listing"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::bool(
            "collect",
            false,
            "materialize the cliques in the payload",
        )]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.run_with_cancel(graph, params, &CancelToken::none())
    }
    fn run_with_cancel(
        &self,
        graph: &CsrGraph,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        let out = self
            .0
            .run_cancellable(graph, params.get_bool("collect", false), cancel);
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(Outcome::new(self.name(), out.clique_count)
            .with_timings(stage(out.preprocess, out.mine))
            .with_payload(match out.cliques {
                Some(cliques) => Payload::VertexGroups(cliques),
                None => Payload::None,
            }))
    }
}

/// k-clique counting (Algorithm 7).
struct KCliqueKernel;

impl Kernel for KCliqueKernel {
    fn name(&self) -> &'static str {
        "k-clique"
    }
    fn category(&self) -> Category {
        Category::Pattern
    }
    fn about(&self) -> &'static str {
        "k-clique counting (Algorithm 7) with node- or edge-parallel driver"
    }
    fn params(&self) -> Vec<ParamSpec> {
        let [ordering, eps] = ordering_specs();
        vec![
            ParamSpec::int("k", 4, "clique size to count"),
            ordering,
            eps,
            ParamSpec::choice(
                "parallel",
                "edge",
                &["edge", "node"],
                "parallelization driver (§7.2)",
            ),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.run_with_cancel(graph, params, &CancelToken::none())
    }
    fn run_with_cancel(
        &self,
        graph: &CsrGraph,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        let k = params.get_int("k", 4);
        if k < 1 {
            return Err(KernelError::BadParam {
                kernel: self.name().to_string(),
                param: "k".to_string(),
                message: format!("k must be >= 1, got {k}"),
            });
        }
        let config = KcConfig {
            ordering: ordering_from(params),
            parallel: match params.get_str("parallel", "edge") {
                "node" => KcParallel::Node,
                _ => KcParallel::Edge,
            },
        };
        let out = k_clique_count_cancellable(graph, k as usize, &config, cancel);
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(Outcome::new(self.name(), out.count).with_timings(stage(out.preprocess, out.mine)))
    }
}

/// Triangle counting in both §6.3 shapes.
struct TriangleKernel;

impl Kernel for TriangleKernel {
    fn name(&self) -> &'static str {
        "triangle-count"
    }
    fn category(&self) -> Category {
        Category::Pattern
    }
    fn about(&self) -> &'static str {
        "triangle counting (rank-merge over the oriented CSR, or the node iterator)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::choice(
            "method",
            "rank-merge",
            &["rank-merge", "node-iterator"],
            "counting strategy",
        )]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let mut timings = StageTimings::default();
        let count = match params.get_str("method", "rank-merge") {
            "node-iterator" => {
                let t = Instant::now();
                let sg: SetGraph<SortedVecSet> = SetGraph::from_csr(graph);
                timings.convert = t.elapsed();
                let t = Instant::now();
                let count = triangle_count_node_iterator(&sg);
                timings.kernel = t.elapsed();
                count
            }
            _ => {
                let t = Instant::now();
                let count = triangle_count_rank_merge(graph);
                timings.kernel = t.elapsed();
                count
            }
        };
        Ok(Outcome::new(self.name(), count).with_timings(timings))
    }

    /// Decode-native override: counts triangles directly over the
    /// compressed neighborhoods through per-worker decode scratch —
    /// no materialized CSR, no per-vertex allocation. Both `method`
    /// choices produce the same count, so one compressed path serves
    /// them.
    fn run_compressed(
        &self,
        graph: &gms_graph::CompressedCsr,
        _params: &Params,
    ) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let count = gms_pattern::triangle_count_compressed(graph);
        let timings = StageTimings {
            kernel: t.elapsed(),
            ..StageTimings::default()
        };
        Ok(Outcome::new(self.name(), count).with_timings(timings))
    }

    /// Every triangle has three corners, so any triangle a mutation
    /// creates or destroys has a touched corner.
    fn delta_sensitivity(&self) -> DeltaSensitivity {
        DeltaSensitivity::VertexNeighborhood
    }

    /// Touched-wedge recount: subtract the triangles incident to the
    /// touched vertices in the old graph, add those in the new graph
    /// — each counted exactly once at its minimum-id touched corner.
    /// Work scales with the touched neighborhoods, not the graph.
    /// Both `method` choices count the same triangles, so one delta
    /// path serves every cached parameterization.
    fn run_delta(
        &self,
        old: &CsrGraph,
        new: &CsrGraph,
        delta: &EdgeDelta,
        previous: &Outcome,
        _params: &Params,
    ) -> Option<Outcome> {
        let t = Instant::now();
        let stale = triangle_count_touched(old, &delta.touched);
        let fresh = triangle_count_touched(new, &delta.touched);
        let count = (previous.patterns + fresh).checked_sub(stale)?;
        let timings = StageTimings {
            kernel: t.elapsed(),
            ..StageTimings::default()
        };
        Some(Outcome::new(self.name(), count).with_timings(timings))
    }
}

/// k-clique-star listing via (k+1)-cliques (§6.6).
struct CliqueStarKernel;

impl Kernel for CliqueStarKernel {
    fn name(&self) -> &'static str {
        "clique-star"
    }
    fn category(&self) -> Category {
        Category::Pattern
    }
    fn about(&self) -> &'static str {
        "k-clique-star listing via (k+1)-cliques (§6.6)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        let [ordering, eps] = ordering_specs();
        vec![
            ParamSpec::int("k", 3, "size of the clique core"),
            ParamSpec::int("min-satellites", 1, "minimum satellites per reported star"),
            ordering,
            eps,
            ParamSpec::bool(
                "collect",
                false,
                "materialize the star cores in the payload",
            ),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let k = params.get_int("k", 3).max(2) as usize;
        let min_satellites = params.get_int("min-satellites", 1).max(0) as usize;
        let config = KcConfig {
            ordering: ordering_from(params),
            parallel: KcParallel::Edge,
        };
        let t = Instant::now();
        let stars = k_clique_stars(graph, k, min_satellites, &config);
        let kernel = t.elapsed();
        let payload = if params.get_bool("collect", false) {
            Payload::VertexGroups(stars.iter().map(|s| s.core.clone()).collect())
        } else {
            Payload::None
        };
        Ok(Outcome::new(self.name(), stars.len() as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel))
            .with_payload(payload))
    }
}

// ---------------------------------------------------------------- matching

const QUERY_CHOICES: &[&str] = &["triangle", "clique4", "clique5", "path3", "path4", "star4"];

fn query_graph(name: &str) -> CsrGraph {
    match name {
        "clique4" => gms_gen::complete(4),
        "clique5" => gms_gen::complete(5),
        "path3" => CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]),
        "path4" => CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]),
        "star4" => CsrGraph::from_undirected_edges(4, &[(0, 1), (0, 2), (0, 3)]),
        _ => gms_gen::complete(3),
    }
}

fn iso_options(params: &Params) -> IsoOptions {
    let limit = params.get_int("limit", 0);
    IsoOptions {
        mode: match params.get_str("mode", "non-induced") {
            "induced" => IsoMode::Induced,
            _ => IsoMode::NonInduced,
        },
        limit: if limit <= 0 { u64::MAX } else { limit as u64 },
        ..IsoOptions::default()
    }
}

fn iso_specs() -> Vec<ParamSpec> {
    vec![
        ParamSpec::choice(
            "query",
            "triangle",
            QUERY_CHOICES,
            "query pattern matched against the loaded graph",
        ),
        ParamSpec::choice(
            "mode",
            "non-induced",
            &["non-induced", "induced"],
            "matching semantics",
        ),
        ParamSpec::int(
            "limit",
            0,
            "stop after this many embeddings (0 = enumerate all)",
        ),
    ]
}

/// Sequential VF2-style subgraph isomorphism counting a named query
/// pattern in the loaded (unlabeled) graph.
struct SubgraphIsoKernel;

impl Kernel for SubgraphIsoKernel {
    fn name(&self) -> &'static str {
        "subgraph-iso"
    }
    fn category(&self) -> Category {
        Category::Matching
    }
    fn about(&self) -> &'static str {
        "VF2-style embedding counting of a named query pattern (§6.4)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        iso_specs()
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.run_with_cancel(graph, params, &CancelToken::none())
    }
    fn run_with_cancel(
        &self,
        graph: &CsrGraph,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let query = LabeledGraph::unlabeled(query_graph(params.get_str("query", "triangle")));
        let target = LabeledGraph::unlabeled(graph.clone());
        let convert = t.elapsed();
        let t = Instant::now();
        let count = count_embeddings_cancellable(&query, &target, &iso_options(params), cancel);
        let kernel = t.elapsed();
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(Outcome::new(self.name(), count).with_timings(StageTimings {
            convert,
            preprocess: std::time::Duration::ZERO,
            kernel,
        }))
    }
}

/// The parallel VF3-Light-style driver over the same named queries.
struct ParallelIsoKernel;

impl Kernel for ParallelIsoKernel {
    fn name(&self) -> &'static str {
        "subgraph-iso-par"
    }
    fn category(&self) -> Category {
        Category::Matching
    }
    fn about(&self) -> &'static str {
        "parallel subgraph isomorphism with work splitting/stealing (§6.4)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = iso_specs();
        specs.push(ParamSpec::int(
            "threads",
            0,
            "worker threads (0 = the machine default)",
        ));
        specs.push(ParamSpec::bool(
            "stealing",
            true,
            "dynamic work stealing vs. static chunks",
        ));
        specs
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        self.run_with_cancel(graph, params, &CancelToken::none())
    }
    fn run_with_cancel(
        &self,
        graph: &CsrGraph,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let query = LabeledGraph::unlabeled(query_graph(params.get_str("query", "triangle")));
        let target = LabeledGraph::unlabeled(graph.clone());
        let convert = t.elapsed();
        let threads = params.get_int("threads", 0);
        let config = ParallelIsoConfig {
            threads: if threads <= 0 {
                ParallelIsoConfig::default().threads
            } else {
                threads as usize
            },
            work_stealing: params.get_bool("stealing", true),
            options: iso_options(params),
        };
        let t = Instant::now();
        let count = count_embeddings_parallel_cancellable(&query, &target, &config, cancel);
        let kernel = t.elapsed();
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(Outcome::new(self.name(), count).with_timings(StageTimings {
            convert,
            preprocess: std::time::Duration::ZERO,
            kernel,
        }))
    }
}

// ---------------------------------------------------------------- learn

const MEASURE_CHOICES: &[&str] = &[
    "jaccard",
    "overlap",
    "adamic-adar",
    "resource-allocation",
    "common-neighbors",
    "total-neighbors",
    "preferential-attachment",
];

fn measure_spec() -> ParamSpec {
    ParamSpec::choice(
        "measure",
        "jaccard",
        MEASURE_CHOICES,
        "vertex-similarity measure (Table 4)",
    )
}

fn measure_from(params: &Params) -> SimilarityMeasure {
    match params.get_str("measure", "jaccard") {
        "overlap" => SimilarityMeasure::Overlap,
        "adamic-adar" => SimilarityMeasure::AdamicAdar,
        "resource-allocation" => SimilarityMeasure::ResourceAllocation,
        "common-neighbors" => SimilarityMeasure::CommonNeighbors,
        "total-neighbors" => SimilarityMeasure::TotalNeighbors,
        "preferential-attachment" => SimilarityMeasure::PreferentialAttachment,
        _ => SimilarityMeasure::Jaccard,
    }
}

/// Bulk vertex similarity over every edge of the graph.
struct SimilarityKernel;

impl Kernel for SimilarityKernel {
    fn name(&self) -> &'static str {
        "similarity"
    }
    fn category(&self) -> Category {
        Category::Learn
    }
    fn about(&self) -> &'static str {
        "bulk vertex similarity scored over every edge (§6.5)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![measure_spec()]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let pairs: Vec<(NodeId, NodeId)> = graph.edges_undirected().collect();
        let convert = t.elapsed();
        let t = Instant::now();
        let scores = similarity_batch_csr(graph, measure_from(params), &pairs);
        let kernel = t.elapsed();
        let mean = if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        Ok(Outcome::new(self.name(), scores.len() as u64)
            .with_timings(StageTimings {
                convert,
                preprocess: std::time::Duration::ZERO,
                kernel,
            })
            .with_payload(Payload::Scalar(mean)))
    }
}

/// The §6.7 link-prediction accuracy protocol.
struct LinkPredictionKernel;

impl Kernel for LinkPredictionKernel {
    fn name(&self) -> &'static str {
        "link-prediction"
    }
    fn category(&self) -> Category {
        Category::Learn
    }
    fn about(&self) -> &'static str {
        "similarity-based link prediction, §6.7 protocol (patterns = recovered edges)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![
            measure_spec(),
            ParamSpec::float("fraction", 0.1, "fraction of edges held out"),
            ParamSpec::int("seed", 7, "hold-out sampling seed"),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let (hits, held_out) = evaluate_accuracy(
            graph,
            measure_from(params),
            params.get_float("fraction", 0.1).clamp(0.0, 0.99),
            params.get_int("seed", 7) as u64,
        );
        let kernel = t.elapsed();
        let accuracy = if held_out == 0 {
            0.0
        } else {
            hits as f64 / held_out as f64
        };
        Ok(Outcome::new(self.name(), hits as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel))
            .with_payload(Payload::Scalar(accuracy)))
    }
}

/// Jarvis–Patrick overlapping clustering.
struct JarvisPatrickKernel;

impl Kernel for JarvisPatrickKernel {
    fn name(&self) -> &'static str {
        "jarvis-patrick"
    }
    fn category(&self) -> Category {
        Category::Learn
    }
    fn about(&self) -> &'static str {
        "Jarvis-Patrick clustering on a similarity measure (§4.1.2)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("k", 6, "nearest-neighbor list size"),
            ParamSpec::int("min-shared", 2, "shared near-neighbors required to merge"),
            measure_spec(),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let config = JarvisPatrickConfig {
            k: params.get_int("k", 6).max(1) as usize,
            min_shared: params.get_int("min-shared", 2).max(0) as usize,
            measure: measure_from(params),
        };
        let t = Instant::now();
        let assignment = jarvis_patrick(graph, &config);
        let kernel = t.elapsed();
        Ok(Outcome::new(self.name(), num_clusters(&assignment) as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel))
            .with_payload(Payload::Assignment(assignment)))
    }
}

/// Label-propagation community detection.
struct LabelPropagationKernel;

impl Kernel for LabelPropagationKernel {
    fn name(&self) -> &'static str {
        "label-propagation"
    }
    fn category(&self) -> Category {
        Category::Learn
    }
    fn about(&self) -> &'static str {
        "label-propagation community detection (patterns = communities)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::int("max-iters", 50, "propagation round limit")]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let assignment = label_propagation(graph, params.get_int("max-iters", 50).max(1) as usize);
        let kernel = t.elapsed();
        Ok(Outcome::new(self.name(), num_clusters(&assignment) as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel))
            .with_payload(Payload::Assignment(assignment)))
    }
}

/// Louvain community detection.
struct LouvainKernel;

impl Kernel for LouvainKernel {
    fn name(&self) -> &'static str {
        "louvain"
    }
    fn category(&self) -> Category {
        Category::Learn
    }
    fn about(&self) -> &'static str {
        "Louvain modularity-maximizing community detection"
    }
    fn params(&self) -> Vec<ParamSpec> {
        Vec::new()
    }
    fn run(&self, graph: &CsrGraph, _params: &Params) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let assignment = louvain(graph);
        let kernel = t.elapsed();
        Ok(Outcome::new(self.name(), num_clusters(&assignment) as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel))
            .with_payload(Payload::Assignment(assignment)))
    }
}

// ---------------------------------------------------------------- opt

/// Graph coloring in the three §4.1.4 algorithm shapes.
struct ColoringKernel;

impl Kernel for ColoringKernel {
    fn name(&self) -> &'static str {
        "coloring"
    }
    fn category(&self) -> Category {
        Category::Opt
    }
    fn about(&self) -> &'static str {
        "graph coloring: greedy, Jones-Plassmann, or Johansson (patterns = colors used)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        let [ordering, eps] = ordering_specs();
        vec![
            ParamSpec::choice(
                "algo",
                "greedy",
                &["greedy", "jones-plassmann", "johansson"],
                "coloring algorithm",
            ),
            ordering,
            eps,
            ParamSpec::float("palette-factor", 2.0, "Johansson palette size multiplier"),
            ParamSpec::int("seed", 1, "Johansson randomness seed"),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let t0 = Instant::now();
        let rank = ordering_from(params).compute(graph);
        let preprocess = t0.elapsed();
        let t = Instant::now();
        let colors = match params.get_str("algo", "greedy") {
            "jones-plassmann" => jones_plassmann(graph, &rank).0,
            "johansson" => {
                johansson(
                    graph,
                    params.get_float("palette-factor", 2.0).max(1.0),
                    params.get_int("seed", 1) as u64,
                )
                .0
            }
            _ => greedy_coloring(graph, &rank),
        };
        let kernel = t.elapsed();
        let used = verify_coloring(graph, &colors).expect("builtin coloring must be proper");
        Ok(Outcome::new(self.name(), used as u64)
            .with_timings(stage(preprocess, kernel))
            .with_payload(Payload::Assignment(colors)))
    }
}

/// Deterministic pseudo-random edge weight in [0, 1).
fn edge_weight(u: NodeId, v: NodeId, seed: u64) -> f64 {
    let mut h = FxHasher::default();
    h.write_u64(seed);
    h.write_u32(u.min(v));
    h.write_u32(u.max(v));
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// Borůvka minimum spanning forest over seeded pseudo-random weights.
struct MstKernel;

impl Kernel for MstKernel {
    fn name(&self) -> &'static str {
        "mst-boruvka"
    }
    fn category(&self) -> Category {
        Category::Opt
    }
    fn about(&self) -> &'static str {
        "Boruvka minimum spanning forest over seeded edge weights (patterns = forest edges)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::int("seed", 1, "edge-weight seed")]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let seed = params.get_int("seed", 1) as u64;
        let t = Instant::now();
        let edges: Vec<WeightedEdge> = graph
            .edges_undirected()
            .map(|(u, v)| WeightedEdge {
                u,
                v,
                weight: edge_weight(u, v, seed),
            })
            .collect();
        let convert = t.elapsed();
        let t = Instant::now();
        let forest = boruvka(graph.num_vertices(), &edges);
        let kernel = t.elapsed();
        let weight = forest_weight(&edges, &forest);
        Ok(Outcome::new(self.name(), forest.len() as u64)
            .with_timings(StageTimings {
                convert,
                preprocess: std::time::Duration::ZERO,
                kernel,
            })
            .with_payload(Payload::Scalar(weight)))
    }
}

/// Karger–Stein randomized minimum cut.
struct MinCutKernel;

impl Kernel for MinCutKernel {
    fn name(&self) -> &'static str {
        "min-cut"
    }
    fn category(&self) -> Category {
        Category::Opt
    }
    fn about(&self) -> &'static str {
        "Karger-Stein randomized minimum cut (patterns = cut size)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("trials", 32, "independent contraction trials"),
            ParamSpec::int("seed", 7, "contraction randomness seed"),
        ]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let t = Instant::now();
        let cut = min_cut(
            graph,
            params.get_int("trials", 32).max(1) as usize,
            params.get_int("seed", 7) as u64,
        );
        let kernel = t.elapsed();
        Ok(Outcome::new(self.name(), cut as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel)))
    }
}

/// k-core membership by iterative peeling, with a localized re-peel
/// maintaining cached cores across removal-only mutations.
struct KCoreKernel;

impl Kernel for KCoreKernel {
    fn name(&self) -> &'static str {
        "k-core"
    }
    fn category(&self) -> Category {
        Category::Opt
    }
    fn about(&self) -> &'static str {
        "k-core membership via iterative peeling (patterns = core size)"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::int("k", 2, "minimum degree within the core")]
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let k = params.get_int("k", 2).max(0) as u32;
        let t = Instant::now();
        let mut core = k_core_by_peeling(graph, k);
        core.sort_unstable();
        let kernel = t.elapsed();
        Ok(Outcome::new(self.name(), core.len() as u64)
            .with_timings(stage(std::time::Duration::ZERO, kernel))
            .with_payload(Payload::VertexGroups(vec![core])))
    }

    /// Core membership cascades only through the mutated region: a
    /// vertex leaves the core only when its within-core degree drops
    /// below k, and under removal-only deltas that starts at a
    /// touched vertex.
    fn delta_sensitivity(&self) -> DeltaSensitivity {
        DeltaSensitivity::ComponentLocal
    }

    /// Localized re-peel for removal-only deltas. Removing edges can
    /// only shrink the core, so the old core is a superset of the new
    /// one; peeling the old core seeded from the touched vertices —
    /// with within-core degrees computed lazily, only along the
    /// eviction cascade — reproduces exactly what a full peel of the
    /// new graph would. Additions can grow the core through vertices
    /// arbitrarily far from the batch, so they decline to a full
    /// recompute.
    fn run_delta(
        &self,
        _old: &CsrGraph,
        new: &CsrGraph,
        delta: &EdgeDelta,
        previous: &Outcome,
        params: &Params,
    ) -> Option<Outcome> {
        if !delta.added.is_empty() {
            return None;
        }
        let Payload::VertexGroups(groups) = &previous.payload else {
            return None;
        };
        let prev_core = groups.first()?;
        let k = params.get_int("k", 2).max(0) as usize;
        let t = Instant::now();
        let n = new.num_vertices();
        let mut in_core = vec![false; n];
        for &v in prev_core {
            in_core[v as usize] = true;
        }
        // usize::MAX marks a within-core degree not yet computed; it
        // is filled in lazily the first time the cascade reaches the
        // vertex, then kept current by decrements.
        const UNKNOWN: usize = usize::MAX;
        let mut deg = vec![UNKNOWN; n];
        let within_core =
            |v: NodeId, in_core: &[bool]| new.neighbors(v).filter(|&u| in_core[u as usize]).count();
        let mut evict: Vec<NodeId> = Vec::new();
        for &v in &delta.touched {
            if in_core[v as usize] && deg[v as usize] == UNKNOWN {
                let d = within_core(v, &in_core);
                deg[v as usize] = d;
                if d < k {
                    evict.push(v);
                }
            }
        }
        while let Some(v) = evict.pop() {
            if !in_core[v as usize] {
                continue;
            }
            in_core[v as usize] = false;
            for u in new.neighbors(v) {
                let ui = u as usize;
                if !in_core[ui] {
                    continue;
                }
                if deg[ui] == UNKNOWN {
                    // Computed against the post-eviction membership,
                    // so v is already excluded.
                    deg[ui] = within_core(u, &in_core);
                } else {
                    deg[ui] -= 1;
                }
                if deg[ui] < k {
                    evict.push(u);
                }
            }
        }
        let core: Vec<NodeId> = prev_core
            .iter()
            .copied()
            .filter(|&v| in_core[v as usize])
            .collect();
        let kernel = t.elapsed();
        Some(
            Outcome::new(self.name(), core.len() as u64)
                .with_timings(stage(std::time::Duration::ZERO, kernel))
                .with_payload(Payload::VertexGroups(vec![core])),
        )
    }
}

// ---------------------------------------------------------------- order

/// Which reordering an [`OrderKernel`] computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OrderWhich {
    Degree,
    Degeneracy,
    Adg,
    TriangleCount,
    Bfs,
    Random,
}

impl OrderWhich {
    const ALL: [OrderWhich; 6] = [
        OrderWhich::Degree,
        OrderWhich::Degeneracy,
        OrderWhich::Adg,
        OrderWhich::TriangleCount,
        OrderWhich::Bfs,
        OrderWhich::Random,
    ];
}

/// A vertex reordering exposed as a runnable preprocessing stage: the
/// outcome's payload is the computed [`Payload::Rank`], its time is
/// booked under `timings.preprocess` (it *is* stage ③), and the
/// pattern count is the number of ranked vertices.
struct OrderKernel(OrderWhich);

impl Kernel for OrderKernel {
    fn name(&self) -> &'static str {
        match self.0 {
            OrderWhich::Degree => "order-degree",
            OrderWhich::Degeneracy => "order-degeneracy",
            OrderWhich::Adg => "order-adg",
            OrderWhich::TriangleCount => "order-triangle",
            OrderWhich::Bfs => "order-bfs",
            OrderWhich::Random => "order-random",
        }
    }
    fn category(&self) -> Category {
        Category::Order
    }
    fn about(&self) -> &'static str {
        "a vertex reordering (preprocessing stage ③) run standalone"
    }
    fn params(&self) -> Vec<ParamSpec> {
        match self.0 {
            OrderWhich::Adg => vec![ParamSpec::float("eps", 0.25, "approximation epsilon")],
            OrderWhich::Bfs => vec![ParamSpec::int("root", 0, "BFS start vertex")],
            OrderWhich::Random => vec![ParamSpec::int("seed", 1, "shuffle seed")],
            _ => Vec::new(),
        }
    }
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError> {
        let n = graph.num_vertices();
        let t = Instant::now();
        let rank = match self.0 {
            OrderWhich::Degree => OrderingKind::Degree.compute(graph),
            OrderWhich::Degeneracy => OrderingKind::Degeneracy.compute(graph),
            OrderWhich::Adg => {
                OrderingKind::ApproxDegeneracy(params.get_float("eps", 0.25)).compute(graph)
            }
            OrderWhich::TriangleCount => OrderingKind::TriangleCount.compute(graph),
            OrderWhich::Bfs => {
                let root = params.get_int("root", 0).max(0) as usize % n.max(1);
                bfs_order(graph, root as NodeId)
            }
            OrderWhich::Random => random_order(n, params.get_int("seed", 1) as u64),
        };
        let preprocess = t.elapsed();
        Ok(Outcome::new(self.name(), n as u64)
            .with_timings(stage(preprocess, std::time::Duration::ZERO))
            .with_payload(Payload::Rank(rank.ranks().to_vec())))
    }

    /// `order-random` is a seeded shuffle of `0..n` — a pure function
    /// of the vertex count and seed that edge mutations provably
    /// cannot affect. Every other ordering reads degrees or
    /// adjacency, so any edge change may move it.
    fn delta_sensitivity(&self) -> DeltaSensitivity {
        match self.0 {
            OrderWhich::Random => DeltaSensitivity::VertexCount,
            _ => DeltaSensitivity::Global,
        }
    }
}
