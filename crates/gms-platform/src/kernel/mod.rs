//! The unified kernel API — one typed entry point for every mining
//! kernel in the suite.
//!
//! GMS pitches graph mining as *one* programmable pipeline (load →
//! represent → preprocess → kernel), yet the crates below expose a
//! zoo of ad-hoc signatures (`BkVariant::run`, `k_clique_count`,
//! bespoke VF2/learn/opt functions). This module is the uniform
//! surface a service layer can sit on:
//!
//! * [`Kernel`] — the trait every mining entry point adapts to:
//!   `name()`, a typed parameter schema ([`ParamSpec`]), and
//!   `run(&CsrGraph, &Params) -> Outcome`;
//! * [`Registry`] — enumerates all kernels by name and [`Category`]
//!   (pattern / matching / learn / opt / order); the benchmark
//!   binaries iterate it, so registering a kernel automatically adds
//!   it to the benchmarks;
//! * [`Session`] — owns loaded graphs behind [`GraphHandle`]s,
//!   fingerprints their CSR arrays, and memoizes
//!   `(fingerprint, kernel, params)` → [`Outcome`] in an LRU cache;
//! * [`ResultCache`] — that cache as a thread-safe, `Arc`-shareable
//!   object in its own right: hit/miss/eviction/coalescing counters,
//!   single-flight deduplication of identical in-flight requests,
//!   and fingerprint invalidation for replaced graphs — the piece N
//!   concurrent serving sessions share;
//! * [`BatchRunner`] — pushes a slice of [`BatchRequest`]s through
//!   the work-stealing pool, deduplicating identical requests.
//!
//! ```
//! use gms_platform::kernel::{Params, Session};
//!
//! let mut session = Session::new();
//! let g = session.add_graph(gms_gen::planted_cliques(200, 0.02, 2, 6, 7).0);
//! let out = session.run("k-clique", g, &Params::new().with("k", 3)).unwrap();
//! assert!(out.patterns > 0 && !out.cached);
//! let hit = session.run("k-clique", g, &Params::new().with("k", 3)).unwrap();
//! assert!(hit.cached && hit.same_result(&out));
//! ```

mod batch;
mod builtin;
mod cache;
mod delta;
mod outcome;
mod params;
mod registry;
mod session;

pub use batch::{BatchRequest, BatchRunner};
pub use cache::{next_owner, CacheKey, CacheStats, MigrationDecision, MigrationStats, ResultCache};
pub use delta::{migrate_for_delta, DeltaSensitivity, GraphLineage, MutationOutcome};
pub use outcome::{Outcome, Payload};
pub use params::{ParamSpec, Params, Value, ValueKind};
pub use registry::Registry;
pub use session::{
    fingerprint, fingerprint_graph, GraphHandle, GraphStore, Session, SessionStats,
    SnapshotCompression,
};

use gms_core::CsrGraph;
use gms_graph::{CompressedCsr, EdgeDelta};

pub use gms_core::CancelToken;

/// The kernel families of the GMS specification (§4.1), plus the
/// reorderings of the preprocessing stage (③) exposed as runnable
/// kernels in their own right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Pattern mining: cliques, triangles, clique-stars (§4.1.1).
    Pattern,
    /// Subgraph matching / isomorphism (§4.1.3).
    Matching,
    /// Graph learning: similarity, link prediction, clustering,
    /// communities (§4.1.2).
    Learn,
    /// Optimization: coloring, MST, min cut (§4.1.4).
    Opt,
    /// Vertex reorderings as preprocessing stages (③).
    Order,
}

impl Category {
    /// All categories, in presentation order.
    pub const ALL: [Category; 5] = [
        Category::Pattern,
        Category::Matching,
        Category::Learn,
        Category::Opt,
        Category::Order,
    ];

    /// Lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Pattern => "pattern",
            Category::Matching => "matching",
            Category::Learn => "learn",
            Category::Opt => "opt",
            Category::Order => "order",
        }
    }
}

/// A uniformly-invocable mining kernel: the adapter trait every
/// public entry point of gms-pattern / gms-match / gms-learn /
/// gms-opt / gms-order is wrapped in.
pub trait Kernel: Send + Sync {
    /// Stable kebab-case name the kernel is requested by.
    fn name(&self) -> &'static str;

    /// Which family the kernel belongs to.
    fn category(&self) -> Category;

    /// One-line description for listings.
    fn about(&self) -> &'static str;

    /// The parameter schema: every accepted parameter with its type
    /// and default. Requests are validated against this before the
    /// kernel runs, and the schema's defaults complete the cache key.
    fn params(&self) -> Vec<ParamSpec>;

    /// Runs the kernel on `graph` with validated parameters.
    ///
    /// Implementations may assume `params` passed
    /// [`Params::validate`] against [`Kernel::params`]; they read
    /// values through the typed accessors with the same defaults the
    /// schema declares.
    fn run(&self, graph: &CsrGraph, params: &Params) -> Result<Outcome, KernelError>;

    /// Runs the kernel on a gap-compressed graph.
    ///
    /// The default decodes the whole graph once and delegates to
    /// [`Kernel::run`], charging the decode to the `convert` stage of
    /// the outcome's timings — always correct, never resident-memory
    /// free. Kernels with a decode-native hot path (e.g. triangle
    /// counting) override this to mine the compressed representation
    /// directly.
    fn run_compressed(
        &self,
        graph: &CompressedCsr,
        params: &Params,
    ) -> Result<Outcome, KernelError> {
        let start = std::time::Instant::now();
        let csr = graph.to_csr();
        let decode = start.elapsed();
        let mut outcome = self.run(&csr, params)?;
        outcome.timings.convert += decode;
        Ok(outcome)
    }

    /// Runs the kernel under a cooperative [`CancelToken`] — the
    /// entry point request deadlines travel through.
    ///
    /// The default runs [`Kernel::run`] to completion and fails with
    /// [`KernelError::DeadlineExceeded`] afterwards if the token has
    /// fired — always correct, never early. Kernels with cancellable
    /// hot loops (Bron–Kerbosch, k-clique, subgraph isomorphism)
    /// override this to probe the token mid-search, so an expired
    /// request stops burning CPU instead of finishing an answer
    /// nobody is waiting for. A fired token must surface as
    /// [`KernelError::DeadlineExceeded`], never as a partial
    /// [`Outcome`] — the result cache would memoize the truncation.
    fn run_with_cancel(
        &self,
        graph: &CsrGraph,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        let outcome = self.run(graph, params)?;
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(outcome)
    }

    /// [`Kernel::run_compressed`] under a cooperative [`CancelToken`].
    ///
    /// The default delegates to [`Kernel::run_compressed`] (so
    /// decode-native overrides keep their hot path) and applies the
    /// same fired-token-becomes-error contract as
    /// [`Kernel::run_with_cancel`].
    fn run_compressed_with_cancel(
        &self,
        graph: &CompressedCsr,
        params: &Params,
        cancel: &CancelToken,
    ) -> Result<Outcome, KernelError> {
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        let outcome = self.run_compressed(graph, params)?;
        if cancel.expired() {
            return Err(KernelError::DeadlineExceeded);
        }
        Ok(outcome)
    }

    /// How this kernel's result depends on structural deltas — the
    /// declaration delta-aware cache invalidation acts on. The
    /// default is the always-safe [`DeltaSensitivity::Global`] (any
    /// mutation invalidates); kernels whose result is provably local
    /// opt in to keep their cache entries alive across mutations.
    fn delta_sensitivity(&self) -> DeltaSensitivity {
        DeltaSensitivity::Global
    }

    /// Incrementally maintains a previously computed outcome across a
    /// batched edge mutation: `old` is the pre-mutation CSR,
    /// `new` the post-mutation CSR, `delta` what changed, and
    /// `previous` the cached outcome for `old` under the same
    /// parameters. Returns the outcome for `new`, or `None` when this
    /// kernel (or this particular delta shape) has no incremental
    /// path — the caller then invalidates and the next request
    /// recomputes from scratch, so declining is always safe.
    ///
    /// Only consulted for kernels declaring a non-[`Global`]
    /// ([`DeltaSensitivity::Global`]), non-[`VertexCount`]
    /// ([`DeltaSensitivity::VertexCount`]) sensitivity.
    ///
    /// [`Global`]: DeltaSensitivity::Global
    /// [`VertexCount`]: DeltaSensitivity::VertexCount
    fn run_delta(
        &self,
        old: &CsrGraph,
        new: &CsrGraph,
        delta: &EdgeDelta,
        previous: &Outcome,
        params: &Params,
    ) -> Option<Outcome> {
        let _ = (old, new, delta, previous, params);
        None
    }
}

/// Everything that can go wrong between a request and an [`Outcome`].
#[derive(Clone, Debug, PartialEq)]
pub enum KernelError {
    /// No kernel registered under the requested name.
    UnknownKernel(String),
    /// A parameter name the kernel's schema does not declare.
    UnknownParam {
        /// The kernel the request addressed.
        kernel: String,
        /// The undeclared parameter name.
        param: String,
    },
    /// A parameter with the wrong type or an inadmissible value.
    BadParam {
        /// The kernel the request addressed.
        kernel: String,
        /// The offending parameter name.
        param: String,
        /// What was wrong.
        message: String,
    },
    /// A [`GraphHandle`] that does not belong to the session.
    InvalidHandle,
    /// A raw-CSR view was requested from a handle whose graph is
    /// resident only in compressed form.
    NotMaterialized,
    /// A batched edge mutation was rejected (endpoint out of range).
    /// Edge mutations cannot create vertices.
    BadMutation {
        /// What was wrong with the batch.
        message: String,
    },
    /// The request's deadline passed before the kernel completed;
    /// the (partial) work was discarded. Deadline-exceeded results
    /// are never cached, so a later request recomputes from scratch.
    DeadlineExceeded,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnknownKernel(name) => write!(f, "unknown kernel {name:?}"),
            KernelError::UnknownParam { kernel, param } => {
                write!(f, "kernel {kernel:?} has no parameter {param:?}")
            }
            KernelError::BadParam {
                kernel,
                param,
                message,
            } => write!(
                f,
                "bad parameter {param:?} for kernel {kernel:?}: {message}"
            ),
            KernelError::InvalidHandle => write!(f, "graph handle not owned by this session"),
            KernelError::NotMaterialized => {
                write!(f, "graph is stored compressed; no raw CSR view exists")
            }
            KernelError::BadMutation { message } => {
                write!(f, "bad edge mutation: {message}")
            }
            KernelError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the kernel completed")
            }
        }
    }
}

impl std::error::Error for KernelError {}
