//! A serving session: loaded graphs behind handles, CSR
//! fingerprinting, and a fingerprint-keyed result cache — the state a
//! long-running mining service keeps between requests.
//!
//! The cache lives behind an [`Arc`]: a session constructed with
//! [`Session::new`] gets a private one, while
//! [`Session::with_registry_and_cache`] lets any number of concurrent
//! sessions (server worker threads, one session each) share a single
//! [`ResultCache`], so work one session pays for is served to all of
//! them — with single-flight deduplication for identical requests
//! that are in flight at the same time.

use super::cache::{next_owner, CacheKey, CacheStats, MigrationStats, ResultCache};
use super::delta::{migrate_for_delta, GraphLineage, MutationOutcome};
use super::{KernelError, Outcome, Params, Registry};
use gms_core::hash::FxHasher;
use gms_core::{CsrGraph, Edge, Graph, NodeId};
use gms_graph::io::{GraphIoError, SnapshotGraph};
use gms_graph::{patch_csr, CompressedCsr};
use std::hash::Hasher;
use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

/// An opaque ticket for a graph loaded into a [`Session`]. Cheap to
/// copy; valid only for the session that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphHandle(usize);

/// Content fingerprint of a CSR graph: a fast hash over the offset
/// and target arrays. Two graphs with identical adjacency structure
/// fingerprint identically however they were loaded, so cached
/// results survive reloading the same dataset.
pub fn fingerprint(graph: &CsrGraph) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(graph.offsets().len());
    for &offset in graph.offsets() {
        h.write_usize(offset);
    }
    for &target in graph.adjacency() {
        h.write_u32(target);
    }
    h.finish()
}

/// [`fingerprint`] generalized to any [`Graph`] implementation. Feeds
/// the hasher the exact byte sequence [`fingerprint`] derives from
/// the CSR arrays — the virtual offsets are the running degree prefix
/// sums — so a [`CompressedCsr`] fingerprints identically to the raw
/// CSR it encodes, and a kernel outcome computed on either backend is
/// served from the cache to both.
pub fn fingerprint_graph<G: Graph>(graph: &G) -> u64 {
    let n = graph.num_vertices();
    let mut h = FxHasher::default();
    h.write_usize(n + 1);
    let mut offset = 0usize;
    h.write_usize(offset);
    for v in 0..n as NodeId {
        offset += graph.degree(v);
        h.write_usize(offset);
    }
    for v in 0..n as NodeId {
        for target in graph.neighbors(v) {
            h.write_u32(target);
        }
    }
    h.finish()
}

/// How [`Session::save_snapshot_with`] encodes the `.gcsr` body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotCompression {
    /// Version 1: the raw CSR arrays, mmap-servable in place.
    Raw,
    /// Version 2: gap+varint compressed neighborhoods in the original
    /// vertex order — same fingerprint as the raw graph.
    Gap,
    /// Version 2 after a BFS locality reordering: smallest on disk,
    /// but a *relabeled isomorph* — the fingerprint changes, so cached
    /// outcomes do not carry over (pattern counts do).
    GapReorder,
}

/// One resident graph: either a materialized CSR or a gap-compressed
/// CSR serving kernels directly through its decode hot path. Which
/// one a handle holds depends on how it was loaded ([`Session::add_graph`]
/// vs [`Session::add_compressed`] / a v2 snapshot).
pub enum GraphStore {
    /// Raw CSR arrays.
    Csr(CsrGraph),
    /// Gap+varint compressed adjacency ([`CompressedCsr`]).
    Compressed(CompressedCsr),
}

impl GraphStore {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.num_vertices(),
            GraphStore::Compressed(c) => c.num_vertices(),
        }
    }

    /// Number of stored directed arcs.
    pub fn num_arcs(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.num_arcs(),
            GraphStore::Compressed(c) => c.num_arcs(),
        }
    }

    /// Heap bytes resident for the adjacency structure.
    pub fn resident_bytes(&self) -> usize {
        match self {
            GraphStore::Csr(g) => {
                std::mem::size_of_val(g.offsets()) + std::mem::size_of_val(g.adjacency())
            }
            GraphStore::Compressed(c) => c.heap_bytes(),
        }
    }

    /// Label of the resident representation: `"raw"`, `"gap"`, or
    /// `"gap+reorder"`.
    pub fn compression(&self) -> &'static str {
        match self {
            GraphStore::Csr(_) => "raw",
            GraphStore::Compressed(c) if c.is_reordered() => "gap+reorder",
            GraphStore::Compressed(_) => "gap",
        }
    }

    /// The raw CSR view, if this store is materialized.
    pub fn as_csr(&self) -> Option<&CsrGraph> {
        match self {
            GraphStore::Csr(g) => Some(g),
            GraphStore::Compressed(_) => None,
        }
    }

    /// Content fingerprint — identical across the two backends for
    /// the same adjacency structure.
    pub fn fingerprint(&self) -> u64 {
        match self {
            GraphStore::Csr(g) => fingerprint(g),
            GraphStore::Compressed(c) => fingerprint_graph(c),
        }
    }

    /// Decodes (or clones) into an owned CSR.
    pub fn to_csr(&self) -> CsrGraph {
        match self {
            GraphStore::Csr(g) => g.clone(),
            GraphStore::Compressed(c) => c.to_csr(),
        }
    }
}

/// This session's own view of the shared cache: how many of *its*
/// successful requests were answered from cache vs ran a kernel.
/// (The cache-wide counters, including eviction and cross-session
/// numbers, are [`Session::cache_stats`].)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests answered from the cache (including requests coalesced
    /// onto another session's in-flight computation).
    pub hits: u64,
    /// Requests that ran a kernel.
    pub misses: u64,
}

/// One loaded graph with its cached identity: the resident
/// representation, the current content fingerprint, and the versioned
/// lineage mutations advance.
struct Resident {
    store: GraphStore,
    fingerprint: u64,
    lineage: GraphLineage,
}

/// A long-running mining session: owns loaded graphs, a kernel
/// [`Registry`], and sits on a fingerprint-keyed [`ResultCache`] —
/// private by default, shareable across sessions. This is the typed
/// entry point the facade quick start demonstrates and `gms-serve`
/// wraps with a network front end.
pub struct Session {
    registry: Registry,
    graphs: Vec<Resident>,
    cache: Arc<ResultCache>,
    stats: SessionStats,
    owner: u64,
}

impl Session {
    /// A session over the full built-in kernel suite with a private
    /// default-size cache (128 outcomes).
    pub fn new() -> Self {
        Self::with_registry(Registry::with_builtins())
    }

    /// A session over a custom registry and a private cache.
    pub fn with_registry(registry: Registry) -> Self {
        Self::with_registry_and_cache(registry, Arc::new(ResultCache::new(128)))
    }

    /// A session over a custom registry and an existing — possibly
    /// shared — result cache. Sessions built over clones of one
    /// `Arc<ResultCache>` serve each other's cached outcomes and
    /// deduplicate identical in-flight requests across threads.
    pub fn with_registry_and_cache(registry: Registry, cache: Arc<ResultCache>) -> Self {
        Self {
            registry,
            graphs: Vec::new(),
            cache,
            stats: SessionStats::default(),
            owner: next_owner(),
        }
    }

    /// The result cache this session runs against; clone the `Arc`
    /// into [`Session::with_registry_and_cache`] to share it.
    pub fn shared_cache(&self) -> Arc<ResultCache> {
        Arc::clone(&self.cache)
    }

    /// Caps the result cache at `capacity` outcomes (0 disables
    /// caching). Existing entries are kept up to the new capacity.
    /// On a shared cache this resizes it for every session.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// The kernels this session can run.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Registers an additional kernel on this session.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// This session's own hit/miss counts (see [`SessionStats`]).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Counters of the underlying cache — hit/miss/eviction/
    /// coalescing/cross-session/invalidation totals across *all*
    /// sessions sharing it, plus current size and capacity.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of cached outcomes.
    pub fn cached_outcomes(&self) -> usize {
        self.cache.len()
    }

    /// Adopts an in-memory graph; returns its handle.
    pub fn add_graph(&mut self, graph: CsrGraph) -> GraphHandle {
        self.add_store(GraphStore::Csr(graph))
    }

    /// Adopts a gap-compressed graph, served through the decode hot
    /// path without ever materializing the CSR arrays. Fingerprints
    /// — and therefore cached outcomes — match the raw CSR of the
    /// same adjacency structure.
    pub fn add_compressed(&mut self, graph: CompressedCsr) -> GraphHandle {
        self.add_store(GraphStore::Compressed(graph))
    }

    fn add_store(&mut self, store: GraphStore) -> GraphHandle {
        let fp = store.fingerprint();
        self.graphs.push(Resident {
            store,
            fingerprint: fp,
            lineage: GraphLineage::new(fp),
        });
        GraphHandle(self.graphs.len() - 1)
    }

    /// Replaces the graph behind an existing handle and invalidates
    /// the cached outcomes of the old content, unless the old content
    /// is still reachable through another handle of this session (or
    /// the new graph has identical content). Returns the new
    /// fingerprint.
    pub fn replace_graph(
        &mut self,
        handle: GraphHandle,
        graph: CsrGraph,
    ) -> Result<u64, KernelError> {
        if handle.0 >= self.graphs.len() {
            return Err(KernelError::InvalidHandle);
        }
        let old_fp = self.graphs[handle.0].fingerprint;
        let fp = fingerprint(&graph);
        self.graphs[handle.0] = Resident {
            store: GraphStore::Csr(graph),
            fingerprint: fp,
            lineage: GraphLineage::new(fp),
        };
        if old_fp != fp && !self.graphs.iter().any(|r| r.fingerprint == old_fp) {
            self.cache.invalidate_fingerprint(old_fp);
        }
        Ok(fp)
    }

    /// Adds a batch of undirected edges to the graph behind `handle`
    /// — see [`Session::mutate_edges`].
    pub fn add_edges(
        &mut self,
        handle: GraphHandle,
        edges: &[Edge],
    ) -> Result<MutationOutcome, KernelError> {
        self.mutate_edges(handle, edges, &[])
    }

    /// Removes a batch of undirected edges from the graph behind
    /// `handle` — see [`Session::mutate_edges`].
    pub fn remove_edges(
        &mut self,
        handle: GraphHandle,
        edges: &[Edge],
    ) -> Result<MutationOutcome, KernelError> {
        self.mutate_edges(handle, &[], edges)
    }

    /// Applies a batched edge mutation to the graph behind `handle`
    /// with set semantics: the new edge set is `(E \ remove) ∪ add`
    /// (an edge in both lists ends up present), self-loops and
    /// duplicates are dropped, and already-satisfied requests are
    /// no-ops — so replaying the same batch is idempotent. Endpoints
    /// must name existing vertices; mutations never change the vertex
    /// count ([`KernelError::BadMutation`] otherwise, with the graph
    /// untouched).
    ///
    /// The handle keeps its identity: the resident representation is
    /// patched in place (a compressed store is transparently
    /// re-encoded; a `gap+reorder` resident re-encodes as plain
    /// `gap`, since the patch is expressed in the original labels),
    /// the content fingerprint advances, and
    /// [`GraphLineage::version`] increments for every effective
    /// batch. Cached outcomes of the old content are migrated to the
    /// new fingerprint per kernel [`DeltaSensitivity`] declarations —
    /// kept, incrementally refreshed, or invalidated (see
    /// [`MutationOutcome::cache`]) — unless the old content is still
    /// reachable through another handle, in which case its entries
    /// stay where they are.
    ///
    /// [`DeltaSensitivity`]: super::DeltaSensitivity
    pub fn mutate_edges(
        &mut self,
        handle: GraphHandle,
        add: &[Edge],
        remove: &[Edge],
    ) -> Result<MutationOutcome, KernelError> {
        let (old_fp, old_csr, was_compressed, lineage) = {
            let r = self
                .graphs
                .get(handle.0)
                .ok_or(KernelError::InvalidHandle)?;
            (
                r.fingerprint,
                r.store.to_csr(),
                matches!(r.store, GraphStore::Compressed(_)),
                r.lineage,
            )
        };
        let (new_csr, delta) =
            patch_csr(&old_csr, add, remove).map_err(|e| KernelError::BadMutation {
                message: e.to_string(),
            })?;
        if delta.is_empty() {
            // Every requested change already held: same content, same
            // fingerprint, no version bump, nothing to migrate.
            return Ok(MutationOutcome {
                fingerprint: old_fp,
                base_fingerprint: lineage.base_fingerprint,
                version: lineage.version,
                added: 0,
                removed: 0,
                touched: 0,
                vertices: old_csr.num_vertices(),
                edges: old_csr.num_arcs() / 2,
                cache: MigrationStats::default(),
            });
        }
        let new_fp = fingerprint(&new_csr);
        let still_referenced = self
            .graphs
            .iter()
            .enumerate()
            .any(|(i, r)| i != handle.0 && r.fingerprint == old_fp);
        let cache = if still_referenced {
            // The old content's cache entries must stay keyed to the
            // handle that still serves it.
            MigrationStats::default()
        } else {
            migrate_for_delta(
                &self.cache,
                &self.registry,
                &old_csr,
                &new_csr,
                old_fp,
                new_fp,
                &delta,
            )
        };
        let vertices = new_csr.num_vertices();
        let edges = new_csr.num_arcs() / 2;
        let (added, removed, touched) =
            (delta.added.len(), delta.removed.len(), delta.touched.len());
        let store = if was_compressed {
            GraphStore::Compressed(CompressedCsr::from_csr(&new_csr))
        } else {
            GraphStore::Csr(new_csr)
        };
        let resident = &mut self.graphs[handle.0];
        resident.store = store;
        resident.fingerprint = new_fp;
        resident.lineage.version += 1;
        Ok(MutationOutcome {
            fingerprint: new_fp,
            base_fingerprint: resident.lineage.base_fingerprint,
            version: resident.lineage.version,
            added,
            removed,
            touched,
            vertices,
            edges,
            cache,
        })
    }

    /// Streams an undirected SNAP-style edge list from disk into the
    /// session (pipeline step 1).
    pub fn load_edge_list<P: AsRef<Path>>(&mut self, path: P) -> Result<GraphHandle, GraphIoError> {
        let graph = gms_graph::io::load_undirected(path)?;
        Ok(self.add_graph(graph))
    }

    /// Streams an undirected edge list out of any buffered reader.
    pub fn load_edge_list_from<R: BufRead>(
        &mut self,
        reader: R,
    ) -> Result<GraphHandle, GraphIoError> {
        let graph = gms_graph::io::load_undirected_from(reader)?;
        Ok(self.add_graph(graph))
    }

    /// Reads a METIS graph file into the session. The loaded CSR is
    /// byte-identical to the same graph arriving as an edge list or
    /// snapshot, so cached outcomes are shared across formats.
    pub fn load_metis<P: AsRef<Path>>(&mut self, path: P) -> Result<GraphHandle, GraphIoError> {
        let graph = gms_graph::io::load_metis(path)?;
        Ok(self.add_graph(graph))
    }

    /// Streams a METIS graph out of any buffered reader.
    pub fn load_metis_from<R: BufRead>(&mut self, reader: R) -> Result<GraphHandle, GraphIoError> {
        let graph = gms_graph::io::load_metis_from(reader)?;
        Ok(self.add_graph(graph))
    }

    /// Loads a `.gcsr` binary snapshot through the mmap-backed,
    /// checksum-validated path, auto-detecting the body version: a v1
    /// file materializes the CSR arrays, a v2 file stays compressed
    /// and serves kernels through the decode hot path. Fingerprints —
    /// and therefore cached outcomes — match the text-format loads of
    /// the same graph either way.
    pub fn load_snapshot<P: AsRef<Path>>(&mut self, path: P) -> Result<GraphHandle, GraphIoError> {
        let store = match gms_graph::io::load_snapshot_auto(path)? {
            SnapshotGraph::Raw(g) => GraphStore::Csr(g),
            SnapshotGraph::Compressed(c) => GraphStore::Compressed(c),
        };
        Ok(self.add_store(store))
    }

    /// Saves a loaded graph as a raw (v1) `.gcsr` binary snapshot,
    /// the fastest format to load it back from. A handle foreign to
    /// this session reports
    /// [`GraphIoCause::Io`](gms_graph::io::GraphIoCause) with
    /// `InvalidInput` (nothing is written).
    pub fn save_snapshot<P: AsRef<Path>>(
        &self,
        handle: GraphHandle,
        path: P,
    ) -> Result<(), GraphIoError> {
        self.save_snapshot_with(handle, path, SnapshotCompression::Raw)
    }

    /// Saves a loaded graph as a `.gcsr` snapshot with an explicit
    /// body encoding (see [`SnapshotCompression`]). `GapReorder`
    /// writes a BFS-relabeled isomorph — smaller gaps, different
    /// fingerprint. A foreign handle reports
    /// [`GraphIoCause::Io`](gms_graph::io::GraphIoCause) with
    /// `InvalidInput` (nothing is written).
    pub fn save_snapshot_with<P: AsRef<Path>>(
        &self,
        handle: GraphHandle,
        path: P,
        compression: SnapshotCompression,
    ) -> Result<(), GraphIoError> {
        let store = self.store(handle).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "graph handle not owned by this session",
            )
        })?;
        match (compression, store) {
            (SnapshotCompression::Raw, GraphStore::Csr(g)) => gms_graph::io::save_snapshot(g, path),
            (SnapshotCompression::Raw, GraphStore::Compressed(c)) => {
                gms_graph::io::save_snapshot(&c.to_csr(), path)
            }
            (SnapshotCompression::Gap, GraphStore::Csr(g)) => {
                gms_graph::io::save_snapshot_compressed(&CompressedCsr::from_csr(g), path)
            }
            (SnapshotCompression::Gap, GraphStore::Compressed(c)) => {
                gms_graph::io::save_snapshot_compressed(c, path)
            }
            (SnapshotCompression::GapReorder, store) => {
                let csr = store.to_csr();
                let rank = gms_order::bfs_order(&csr, 0);
                gms_graph::io::save_snapshot_compressed(
                    &CompressedCsr::from_csr_ordered(&csr, &rank),
                    path,
                )
            }
        }
    }

    /// The raw CSR behind a handle. A handle backed by a compressed
    /// store has no materialized CSR arrays and reports
    /// [`KernelError::NotMaterialized`]; use [`Session::store`] to
    /// reach either backend.
    pub fn graph(&self, handle: GraphHandle) -> Result<&CsrGraph, KernelError> {
        match self.store(handle)? {
            GraphStore::Csr(g) => Ok(g),
            GraphStore::Compressed(_) => Err(KernelError::NotMaterialized),
        }
    }

    /// The resident representation behind a handle — raw or
    /// compressed.
    pub fn store(&self, handle: GraphHandle) -> Result<&GraphStore, KernelError> {
        self.graphs
            .get(handle.0)
            .map(|r| &r.store)
            .ok_or(KernelError::InvalidHandle)
    }

    /// The CSR fingerprint of a loaded graph — the graph half of the
    /// result-cache key.
    pub fn graph_fingerprint(&self, handle: GraphHandle) -> Result<u64, KernelError> {
        self.graphs
            .get(handle.0)
            .map(|r| r.fingerprint)
            .ok_or(KernelError::InvalidHandle)
    }

    /// The versioned lineage of a loaded graph: the fingerprint it was
    /// loaded with and how many mutation batches have been applied
    /// since. [`Session::replace_graph`] resets the lineage (new
    /// content, version 0); [`Session::mutate_edges`] advances it.
    pub fn graph_lineage(&self, handle: GraphHandle) -> Result<GraphLineage, KernelError> {
        self.graphs
            .get(handle.0)
            .map(|r| r.lineage)
            .ok_or(KernelError::InvalidHandle)
    }

    /// Handles of all loaded graphs, in load order.
    pub fn handles(&self) -> Vec<GraphHandle> {
        (0..self.graphs.len()).map(GraphHandle).collect()
    }

    pub(super) fn cache_key(
        &self,
        kernel: &str,
        handle: GraphHandle,
        params: &Params,
    ) -> Result<CacheKey, KernelError> {
        let k = self
            .registry
            .get(kernel)
            .ok_or_else(|| KernelError::UnknownKernel(kernel.to_string()))?;
        let fp = self.graph_fingerprint(handle)?;
        let store = self.store(handle)?;
        CacheKey::build(k, store.num_vertices() + 1, store.num_arcs(), fp, params)
    }

    /// This session's owner tag on the shared cache (cross-session
    /// hit attribution).
    pub(super) fn owner_tag(&self) -> u64 {
        self.owner
    }

    /// Cache lookup counting toward this session's stats on a hit
    /// (the batch runner's admission phase).
    pub(super) fn cache_get(&mut self, key: &CacheKey) -> Option<Outcome> {
        let hit = self.cache.get(key, self.owner)?;
        self.stats.hits += 1;
        Some(hit)
    }

    /// Folds a completed (non-duplicate) request into this session's
    /// stats.
    pub(super) fn note_outcome(&mut self, cached: bool) {
        if cached {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }

    /// Runs a kernel by name on a loaded graph: validates the
    /// parameters against the kernel's schema, serves a memoized
    /// outcome when `(fingerprint, kernel, params)` was already
    /// computed — waiting for an identical in-flight computation
    /// instead of duplicating it — and caches fresh results.
    pub fn run(
        &mut self,
        kernel: &str,
        handle: GraphHandle,
        params: &Params,
    ) -> Result<Outcome, KernelError> {
        let key = self.cache_key(kernel, handle, params)?;
        let cache = Arc::clone(&self.cache);
        let result = {
            // Key construction validated the name; unwrap is safe.
            let k = self.registry.get(kernel).expect("validated kernel name");
            match self.store(handle)? {
                GraphStore::Csr(graph) => {
                    cache.run_or_wait(&key, self.owner, || k.run(graph, params))
                }
                GraphStore::Compressed(graph) => {
                    cache.run_or_wait(&key, self.owner, || k.run_compressed(graph, params))
                }
            }
        };
        if let Ok(outcome) = &result {
            self.note_outcome(outcome.cached);
        }
        result
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrGraph {
        gms_gen::planted_cliques(120, 0.03, 2, 6, 9).0
    }

    #[test]
    fn fingerprint_is_content_based() {
        let g1 = small();
        let g2 = small();
        assert_eq!(fingerprint(&g1), fingerprint(&g2));
        let other = gms_gen::gnp(120, 0.03, 10);
        assert_ne!(fingerprint(&g1), fingerprint(&other));
    }

    #[test]
    fn generic_fingerprint_matches_the_csr_fingerprint_byte_for_byte() {
        for g in [
            small(),
            gms_gen::grid(7, 9),
            CsrGraph::from_undirected_edges(5, &[]),
        ] {
            assert_eq!(fingerprint_graph(&g), fingerprint(&g), "CSR backend");
            let compressed = CompressedCsr::from_csr(&g);
            assert_eq!(
                fingerprint_graph(&compressed),
                fingerprint(&g),
                "gap backend"
            );
        }
    }

    #[test]
    fn compressed_store_serves_kernels_and_shares_the_cache_with_raw() {
        let mut session = Session::new();
        let raw = session.add_graph(small());
        let gap = session.add_compressed(CompressedCsr::from_csr(&small()));
        assert_eq!(
            session.graph_fingerprint(raw).unwrap(),
            session.graph_fingerprint(gap).unwrap(),
            "backends of the same content must fingerprint identically"
        );
        assert_eq!(session.store(gap).unwrap().compression(), "gap");
        assert!(session.store(gap).unwrap().resident_bytes() > 0);
        assert!(matches!(
            session.graph(gap),
            Err(KernelError::NotMaterialized)
        ));

        // Decode-native kernel on the compressed store…
        let mined = session.run("triangle-count", gap, &Params::new()).unwrap();
        assert!(!mined.cached);
        // …serves the raw handle from the cache, and vice versa.
        let hit = session.run("triangle-count", raw, &Params::new()).unwrap();
        assert!(hit.cached, "raw handle must hit the compressed result");
        assert!(hit.same_result(&mined));

        // A kernel without a decode-native override still runs via
        // the decode-once default.
        let bk = session.run("bk", gap, &Params::new()).unwrap();
        assert!(bk.patterns > 0);
    }

    #[test]
    fn snapshot_compression_options_roundtrip_through_load() {
        let dir = std::env::temp_dir().join(format!("gms_session_v2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut session = Session::new();
        let raw = session.add_graph(small());
        let fp = session.graph_fingerprint(raw).unwrap();

        // Gap keeps the fingerprint; the reload stays compressed.
        let gap_path = dir.join("gap.gcsr");
        session
            .save_snapshot_with(raw, &gap_path, SnapshotCompression::Gap)
            .unwrap();
        let gap = session.load_snapshot(&gap_path).unwrap();
        assert_eq!(session.graph_fingerprint(gap).unwrap(), fp);
        assert_eq!(session.store(gap).unwrap().compression(), "gap");

        // GapReorder is a relabeled isomorph: same pattern counts,
        // different fingerprint.
        let reordered_path = dir.join("reordered.gcsr");
        session
            .save_snapshot_with(raw, &reordered_path, SnapshotCompression::GapReorder)
            .unwrap();
        let reordered = session.load_snapshot(&reordered_path).unwrap();
        assert_eq!(
            session.store(reordered).unwrap().compression(),
            "gap+reorder"
        );
        assert_ne!(session.graph_fingerprint(reordered).unwrap(), fp);
        let a = session.run("triangle-count", raw, &Params::new()).unwrap();
        let b = session
            .run("triangle-count", reordered, &Params::new())
            .unwrap();
        assert_eq!(a.patterns, b.patterns);

        // Raw from a compressed store materializes on the way out.
        let back_path = dir.join("back.gcsr");
        session
            .save_snapshot_with(gap, &back_path, SnapshotCompression::Raw)
            .unwrap();
        let back = session.load_snapshot(&back_path).unwrap();
        assert_eq!(session.graph_fingerprint(back).unwrap(), fp);
        assert_eq!(session.store(back).unwrap().compression(), "raw");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_requests_hit_the_cache() {
        let mut session = Session::new();
        let g = session.add_graph(small());
        let params = Params::new().with("k", 3);
        let first = session.run("k-clique", g, &params).unwrap();
        assert!(!first.cached);
        let second = session.run("k-clique", g, &params).unwrap();
        assert!(second.cached);
        assert!(second.same_result(&first));
        assert_eq!(second.timings.kernel, std::time::Duration::ZERO);
        assert_eq!(session.stats(), SessionStats { hits: 1, misses: 1 });
        let cache = session.cache_stats();
        assert_eq!((cache.hits, cache.misses, cache.entries), (1, 1, 1));
    }

    #[test]
    fn default_spelling_and_omission_share_a_cache_line() {
        let mut session = Session::new();
        let g = session.add_graph(small());
        session.run("k-clique", g, &Params::new()).unwrap();
        // `k=4` is the declared default: spelling it out is the same
        // request.
        let hit = session
            .run("k-clique", g, &Params::new().with("k", 4))
            .unwrap();
        assert!(hit.cached);
        // A different k is a different request.
        let miss = session
            .run("k-clique", g, &Params::new().with("k", 5))
            .unwrap();
        assert!(!miss.cached);
    }

    #[test]
    fn same_content_different_handle_still_hits() {
        let mut session = Session::new();
        let a = session.add_graph(small());
        let b = session.add_graph(small());
        session.run("triangle-count", a, &Params::new()).unwrap();
        let hit = session.run("triangle-count", b, &Params::new()).unwrap();
        assert!(hit.cached, "cache keys on content, not handle identity");
    }

    #[test]
    fn sessions_sharing_a_cache_serve_each_other() {
        let cache = Arc::new(ResultCache::new(64));
        let mut a = Session::with_registry_and_cache(Registry::with_builtins(), cache.clone());
        let mut b = Session::with_registry_and_cache(Registry::with_builtins(), cache.clone());
        let ga = a.add_graph(small());
        let gb = b.add_graph(small());
        let paid = a.run("triangle-count", ga, &Params::new()).unwrap();
        let served = b.run("triangle-count", gb, &Params::new()).unwrap();
        assert!(!paid.cached);
        assert!(served.cached, "session B reuses session A's work");
        assert!(served.same_result(&paid));
        assert_eq!(cache.stats().cross_hits, 1);
        assert_eq!(a.stats(), SessionStats { hits: 0, misses: 1 });
        assert_eq!(b.stats(), SessionStats { hits: 1, misses: 0 });
    }

    #[test]
    fn replace_graph_invalidates_unless_content_still_referenced() {
        let mut session = Session::new();
        let g = session.add_graph(small());
        session.run("triangle-count", g, &Params::new()).unwrap();
        assert_eq!(session.cached_outcomes(), 1);

        // Same content: nothing to invalidate.
        session.replace_graph(g, small()).unwrap();
        assert_eq!(session.cached_outcomes(), 1);

        // New content: the old outcome is dropped.
        session.replace_graph(g, gms_gen::gnp(90, 0.05, 3)).unwrap();
        assert_eq!(session.cached_outcomes(), 0);
        assert_eq!(session.cache_stats().invalidated, 1);
        let fresh = session.run("triangle-count", g, &Params::new()).unwrap();
        assert!(!fresh.cached);

        // Old content still reachable through another handle: its
        // cache lines survive the replace.
        let mut two = Session::new();
        let h1 = two.add_graph(small());
        let h2 = two.add_graph(small());
        two.run("triangle-count", h1, &Params::new()).unwrap();
        two.replace_graph(h1, gms_gen::gnp(90, 0.05, 3)).unwrap();
        let hit = two.run("triangle-count", h2, &Params::new()).unwrap();
        assert!(hit.cached, "content still referenced by h2");

        assert!(two
            .replace_graph(GraphHandle(99), small())
            .is_err_and(|e| e == KernelError::InvalidHandle));
    }

    #[test]
    fn lru_evicts_oldest_and_capacity_zero_disables() {
        let mut session = Session::new();
        session.set_cache_capacity(2);
        let g = session.add_graph(small());
        for k in [3i64, 4, 5] {
            session
                .run("k-clique", g, &Params::new().with("k", k))
                .unwrap();
        }
        assert_eq!(session.cached_outcomes(), 2);
        assert_eq!(session.cache_stats().evictions, 1);
        // k=3 was least recently used; rerunning it must miss.
        let again = session
            .run("k-clique", g, &Params::new().with("k", 3))
            .unwrap();
        assert!(!again.cached);

        session.set_cache_capacity(0);
        assert_eq!(session.cached_outcomes(), 0);
        let uncached = session
            .run("k-clique", g, &Params::new().with("k", 3))
            .unwrap();
        assert!(!uncached.cached);
    }

    #[test]
    fn loads_edge_lists_through_the_streaming_loader() {
        let mut session = Session::new();
        let text = "# toy triangle plus tail\n0\t1\n1\t2\n2 0\n2 3\n";
        let g = session.load_edge_list_from(text.as_bytes()).unwrap();
        let out = session.run("triangle-count", g, &Params::new()).unwrap();
        assert_eq!(out.patterns, 1);
    }

    #[test]
    fn all_formats_load_the_same_fingerprint_and_share_the_cache() {
        let graph = small();
        let dir = std::env::temp_dir().join(format!("gms_session_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("g.gcsr");

        let mut session = Session::new();
        let a = session.add_graph(graph.clone());
        session.save_snapshot(a, &snapshot).unwrap();

        let mut edge_list = Vec::new();
        gms_graph::io::write_edge_list(&graph, &mut edge_list).unwrap();
        let mut metis = Vec::new();
        gms_graph::io::write_metis(&graph, &mut metis).unwrap();

        let b = session.load_edge_list_from(edge_list.as_slice()).unwrap();
        let c = session.load_metis_from(metis.as_slice()).unwrap();
        let d = session.load_snapshot(&snapshot).unwrap();
        let fp = session.graph_fingerprint(a).unwrap();
        for handle in [b, c, d] {
            assert_eq!(session.graph_fingerprint(handle).unwrap(), fp);
        }

        // One kernel run serves all four handles from the cache.
        let miss = session.run("triangle-count", a, &Params::new()).unwrap();
        for handle in [b, c, d] {
            let hit = session
                .run("triangle-count", handle, &Params::new())
                .unwrap();
            assert!(hit.cached, "format-specific handle missed the cache");
            assert!(hit.same_result(&miss));
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn save_snapshot_rejects_foreign_handles() {
        let mut other = Session::new();
        let foreign = other.add_graph(small());
        let session = Session::new();
        let path =
            std::env::temp_dir().join(format!("gms_session_foreign_{}.gcsr", std::process::id()));
        let err = session.save_snapshot(foreign, &path).unwrap_err();
        assert!(matches!(
            err.cause,
            gms_graph::io::GraphIoCause::Io(ref e)
                if e.kind() == std::io::ErrorKind::InvalidInput
        ));
        assert!(!path.exists(), "nothing must be written for a bad handle");
    }

    #[test]
    fn mutations_bump_version_and_migrate_the_cache_per_sensitivity() {
        let mut session = Session::new();
        let g = session.add_graph(small());
        let base_fp = session.graph_fingerprint(g).unwrap();

        // Populate three cache lines with distinct sensitivities.
        let tri = session.run("triangle-count", g, &Params::new()).unwrap();
        let rand = session.run("order-random", g, &Params::new()).unwrap();
        session.run("order-degree", g, &Params::new()).unwrap();
        assert_eq!(session.cached_outcomes(), 3);

        let csr0 = session.store(g).unwrap().to_csr();
        let v = (0..csr0.num_vertices() as NodeId)
            .find(|&v| csr0.degree(v) >= 2)
            .unwrap();
        let targets: Vec<NodeId> = csr0.neighbors(v).take(2).collect();
        let out = session
            .remove_edges(g, &[(v, targets[0]), (v, targets[1])])
            .unwrap();
        assert_eq!(out.base_fingerprint, base_fp);
        assert_eq!(out.version, 1);
        assert_ne!(out.fingerprint, base_fp);
        assert_eq!(
            session.graph_lineage(g).unwrap(),
            GraphLineage {
                base_fingerprint: base_fp,
                version: 1
            }
        );
        // order-random survived (VertexCount), triangle-count was
        // refreshed incrementally, order-degree (Global) died.
        assert_eq!(out.cache.survived, 1);
        assert_eq!(out.cache.refreshed, 1);
        assert_eq!(out.cache.invalidated, 1);
        assert_eq!(session.cached_outcomes(), 2);

        // The migrated entries serve the mutated graph...
        let rand2 = session.run("order-random", g, &Params::new()).unwrap();
        assert!(rand2.cached);
        assert!(rand2.same_result(&rand));
        let tri2 = session.run("triangle-count", g, &Params::new()).unwrap();
        assert!(tri2.cached, "refreshed outcome must be a cache hit");
        // ...and the refreshed count matches a from-scratch recount.
        let mut fresh = Session::new();
        let csr = session.store(g).unwrap().to_csr();
        let h = fresh.add_graph(csr);
        let oracle = fresh.run("triangle-count", h, &Params::new()).unwrap();
        assert_eq!(tri2.patterns, oracle.patterns);
        assert!(tri.patterns >= tri2.patterns);
    }

    #[test]
    fn redundant_mutations_are_no_ops_and_bad_endpoints_are_rejected() {
        let mut session = Session::new();
        let g = session.add_graph(gms_gen::grid(4, 4));
        let fp = session.graph_fingerprint(g).unwrap();
        // Edge (0,1) already exists; removing a non-edge is equally moot.
        let out = session
            .mutate_edges(g, &[(0, 1)], &[(0, 15), (3, 3)])
            .unwrap();
        assert_eq!(out.version, 0, "no-op batches must not advance lineage");
        assert_eq!(out.fingerprint, fp);
        assert_eq!((out.added, out.removed, out.touched), (0, 0, 0));

        let err = session.add_edges(g, &[(0, 99)]).unwrap_err();
        assert!(matches!(err, KernelError::BadMutation { .. }));
        assert_eq!(
            session.graph_fingerprint(g).unwrap(),
            fp,
            "a rejected batch must leave the graph untouched"
        );
        // Replaying an applied batch is idempotent (set semantics).
        let first = session.add_edges(g, &[(0, 5)]).unwrap();
        assert_eq!(first.version, 1);
        let replay = session.add_edges(g, &[(0, 5)]).unwrap();
        assert_eq!(replay.version, 1);
        assert_eq!(replay.fingerprint, first.fingerprint);
    }

    #[test]
    fn mutating_a_compressed_store_rebuilds_transparently() {
        let plain = small();
        let u = (0..plain.num_vertices() as NodeId)
            .find(|&v| plain.degree(v) >= 1)
            .unwrap();
        let w = plain.neighbors(u).next().unwrap();
        let mut session = Session::new();
        let g = session.add_compressed(CompressedCsr::from_csr(&plain));
        assert_eq!(session.store(g).unwrap().compression(), "gap");
        let out = session.remove_edges(g, &[(u, w)]).unwrap();
        assert_eq!(out.removed, 1);
        assert_eq!(out.version, 1);
        assert_eq!(
            session.store(g).unwrap().compression(),
            "gap",
            "the resident representation survives the mutation"
        );
        // The re-encoded store fingerprints as its content.
        assert_eq!(
            session.store(g).unwrap().fingerprint(),
            session.graph_fingerprint(g).unwrap()
        );
        let tri = session.run("triangle-count", g, &Params::new()).unwrap();
        let mut fresh = Session::new();
        let h = fresh.add_graph(session.store(g).unwrap().to_csr());
        let oracle = fresh.run("triangle-count", h, &Params::new()).unwrap();
        assert_eq!(tri.patterns, oracle.patterns);
    }

    #[test]
    fn mutation_leaves_cache_entries_alone_while_content_is_shared() {
        let mut session = Session::new();
        let plain = small();
        let u = (0..plain.num_vertices() as NodeId)
            .find(|&v| plain.degree(v) >= 1)
            .unwrap();
        let w = plain.neighbors(u).next().unwrap();
        let a = session.add_graph(plain);
        let b = session.add_graph(small());
        session.run("triangle-count", a, &Params::new()).unwrap();
        let out = session.remove_edges(a, &[(u, w)]).unwrap();
        assert_eq!(out.version, 1);
        assert_eq!(
            out.cache,
            MigrationStats::default(),
            "shared content must not be migrated away"
        );
        let hit = session.run("triangle-count", b, &Params::new()).unwrap();
        assert!(hit.cached, "handle b still serves the original content");
    }

    #[test]
    fn invalid_handles_are_rejected() {
        let mut empty = Session::new();
        let mut other = Session::new();
        let foreign = other.add_graph(small());
        assert_eq!(
            empty
                .run("triangle-count", foreign, &Params::new())
                .unwrap_err(),
            KernelError::InvalidHandle
        );
    }
}
