//! Delta-aware cache maintenance for dynamic graphs.
//!
//! A batched edge mutation ([`Session::add_edges`] /
//! [`Session::remove_edges`]) changes a graph's content and therefore
//! its fingerprint — naively, every cached outcome for the old
//! fingerprint dies. But most kernels declare *how* a structural
//! delta can reach their result ([`DeltaSensitivity`]), and for the
//! declared-local ones an [`EdgeDelta`] is enough to either prove the
//! entry unaffected or maintain it incrementally
//! ([`Kernel::run_delta`]). [`migrate_for_delta`] is the policy that
//! turns those declarations into per-entry
//! [`MigrationDecision`](super::MigrationDecision)s for
//! [`ResultCache::migrate_fingerprint`]:
//!
//! * [`DeltaSensitivity::VertexCount`] — edge mutations cannot touch
//!   the result at all (e.g. `order-random`, a pure function of the
//!   vertex count and seed): the entry survives verbatim under the
//!   new fingerprint;
//! * [`DeltaSensitivity::VertexNeighborhood`] /
//!   [`DeltaSensitivity::ComponentLocal`] — the kernel is asked to
//!   maintain the outcome incrementally from the delta (touched-wedge
//!   triangle recount, localized k-core re-peeling); if it declines,
//!   the entry is invalidated and the next request recomputes from
//!   scratch — the always-correct fallback;
//! * [`DeltaSensitivity::Global`] — any structural change may move
//!   the result (MST, min-cut, BFS orders…): invalidate.
//!
//! [`Session::add_edges`]: super::Session::add_edges
//! [`Session::remove_edges`]: super::Session::remove_edges
//! [`Kernel::run_delta`]: super::Kernel::run_delta

use super::cache::{MigrationDecision, MigrationStats, ResultCache};
use super::{Params, Registry};
use gms_core::{CsrGraph, Graph};
use gms_graph::EdgeDelta;

/// How a kernel's result depends on structural deltas — each
/// [`Kernel`] declares one via [`Kernel::delta_sensitivity`]. The
/// declaration is a *promise the cache acts on*: declaring too-local
/// a sensitivity serves stale results, so the default is
/// [`DeltaSensitivity::Global`] and kernels opt into locality.
///
/// [`Kernel`]: super::Kernel
/// [`Kernel::delta_sensitivity`]: super::Kernel::delta_sensitivity
/// [`Kernel::run_delta`]: super::Kernel::run_delta
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeltaSensitivity {
    /// Any edge change anywhere may change the result (MST, min cut,
    /// colorings, BFS/degree orders…). Mutations always invalidate.
    #[default]
    Global,
    /// The result is determined per connected component and can be
    /// re-derived from the previous outcome plus the touched region
    /// (k-core: membership cascades only through the touched
    /// vertices' components). Mutations attempt
    /// [`Kernel::run_delta`], invalidating on decline.
    ///
    /// [`Kernel::run_delta`]: super::Kernel::run_delta
    ComponentLocal,
    /// The result decomposes over bounded vertex neighborhoods, so
    /// only patterns incident to touched vertices can appear or
    /// disappear (triangle counting: every affected triangle has a
    /// touched corner). Mutations attempt [`Kernel::run_delta`],
    /// invalidating on decline.
    ///
    /// [`Kernel::run_delta`]: super::Kernel::run_delta
    VertexNeighborhood,
    /// The result depends only on the vertex count and the
    /// parameters, never on edges (`order-random` is a seeded shuffle
    /// of `0..n`). Edge mutations provably cannot affect it: entries
    /// survive migration verbatim.
    VertexCount,
}

/// Versioned fingerprint lineage of a graph behind a handle: where
/// the content started ([`GraphLineage::base_fingerprint`], the hash
/// at load time) and how many mutation batches have been applied
/// since ([`GraphLineage::version`]). The *current* fingerprint keeps
/// keying the cache; the lineage is the stable identity mutations
/// preserve — the router places shards by base fingerprint so a
/// mutation never migrates a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphLineage {
    /// Content fingerprint at load time (version 0).
    pub base_fingerprint: u64,
    /// Number of effective (non-no-op) mutation batches applied.
    pub version: u64,
}

impl GraphLineage {
    /// Lineage of a freshly loaded graph.
    pub fn new(base_fingerprint: u64) -> Self {
        Self {
            base_fingerprint,
            version: 0,
        }
    }
}

/// What one `add_edges`/`remove_edges` batch did: the new identity of
/// the graph, the effective delta size, and how the result cache
/// fared ([`MigrationStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Content fingerprint after the mutation.
    pub fingerprint: u64,
    /// Fingerprint at load time (stable across mutations).
    pub base_fingerprint: u64,
    /// Version after the mutation (unchanged for a no-op batch).
    pub version: u64,
    /// Undirected edges actually added (requested-but-present ones
    /// don't count).
    pub added: usize,
    /// Undirected edges actually removed.
    pub removed: usize,
    /// Vertices whose neighborhood changed.
    pub touched: usize,
    /// Vertex count (mutations never change it).
    pub vertices: usize,
    /// Undirected edge count after the mutation.
    pub edges: usize,
    /// Cache migration results: survived / refreshed / invalidated.
    pub cache: MigrationStats,
}

/// Migrates every cached entry of the mutated graph from `old_fp` to
/// `new_fp` according to each kernel's declared [`DeltaSensitivity`]
/// — see the module docs for the decision table. Entries whose kernel
/// is no longer registered are invalidated (no declaration, no
/// proof).
///
/// Shared by [`Session`](super::Session) and the `gms-serve` worker
/// path so both mutation entry points apply one policy.
pub fn migrate_for_delta(
    cache: &ResultCache,
    registry: &Registry,
    old: &CsrGraph,
    new: &CsrGraph,
    old_fp: u64,
    new_fp: u64,
    delta: &EdgeDelta,
) -> MigrationStats {
    cache.migrate_fingerprint(
        old_fp,
        new_fp,
        new.num_vertices() + 1,
        new.num_arcs(),
        |key, previous| {
            let Some(kernel) = registry.get(key.kernel) else {
                return MigrationDecision::Invalidate;
            };
            match kernel.delta_sensitivity() {
                DeltaSensitivity::VertexCount => MigrationDecision::Keep,
                DeltaSensitivity::Global => MigrationDecision::Invalidate,
                DeltaSensitivity::ComponentLocal | DeltaSensitivity::VertexNeighborhood => {
                    let params = Params::from_canonical(&key.params);
                    match kernel.run_delta(old, new, delta, previous, &params) {
                        Some(outcome) => MigrationDecision::Refresh(outcome),
                        None => MigrationDecision::Invalidate,
                    }
                }
            }
        },
    )
}
