//! The shared result cache: a thread-safe, `Arc`-able LRU memo of
//! `(graph fingerprint, kernel, canonical params)` → [`Outcome`] that
//! any number of concurrent [`Session`](super::Session)s — or server
//! worker threads — can sit on top of.
//!
//! Beyond plain memoization the cache provides:
//!
//! * **observability** — hit / miss / eviction / coalescing /
//!   cross-owner counters ([`CacheStats`]), the numbers a serving
//!   stats endpoint reports;
//! * **single-flight deduplication** — [`ResultCache::run_or_wait`]
//!   admits exactly one computation per key; identical requests that
//!   arrive while it is in flight block until the leader finishes and
//!   are then served from the fresh entry, so a thundering herd of
//!   duplicate requests costs one kernel execution;
//! * **invalidation** — [`ResultCache::invalidate_fingerprint`] drops
//!   every outcome computed for a graph content hash, the hook
//!   [`Session::replace_graph`](super::Session::replace_graph) and
//!   the server's load-with-replace use when a graph is reloaded.
//!   Invalidation is *final*: each call stamps an epoch for the
//!   fingerprint, and an in-flight computation admitted before the
//!   stamp discards its insert instead of resurrecting a dropped
//!   entry — the stale-result window a replace racing a concurrent
//!   batch would otherwise open ([`CacheStats::stale_drops`]);
//! * **delta migration** — [`ResultCache::migrate_fingerprint`]
//!   re-keys the entries of a *mutated* graph (old fingerprint → new
//!   fingerprint) under a caller-supplied per-entry decision: keep
//!   verbatim (the kernel's declared delta sensitivity provably cannot
//!   be affected), refresh with an incrementally maintained outcome,
//!   or invalidate. This is what makes batched edge mutations cheaper
//!   than a blanket flush.

use super::{Kernel, KernelError, Outcome, Params};
use crate::pipeline::StageTimings;
use gms_core::hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Allocates a process-unique owner tag. Every [`Session`] draws one
/// at construction, and server workers draw one per worker thread;
/// the cache uses the tag to tell *cross-owner* hits (one session
/// reusing work another session paid for) from self-hits.
///
/// [`Session`]: super::Session
pub fn next_owner() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The full identity of one kernel request: the graph content hash
/// (with the exact CSR dimensions riding along so a 64-bit collision
/// between structurally different graphs cannot share cache lines),
/// the kernel name, and the canonical parameter rendering with
/// defaults filled in.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content fingerprint of the CSR arrays
    /// ([`fingerprint`](super::fingerprint)).
    pub fingerprint: u64,
    /// Length of the CSR offsets array (vertex count + 1).
    pub vertices: usize,
    /// Length of the CSR adjacency array (directed arc count).
    pub arcs: usize,
    /// Registered kernel name.
    pub kernel: &'static str,
    /// Canonical `name=value` parameter rendering
    /// ([`Params::canonical`]).
    pub params: String,
}

impl CacheKey {
    /// Builds the key for running `kernel` on a graph of the given
    /// CSR dimensions (`vertices` = offsets length = n+1, `arcs` =
    /// stored arc count) whose content hash is `fingerprint`,
    /// validating the parameters against the kernel's schema on the
    /// way. Taking the dimensions rather than the graph lets raw and
    /// compressed backends of the same content share one key.
    pub fn build(
        kernel: &dyn Kernel,
        vertices: usize,
        arcs: usize,
        fingerprint: u64,
        params: &Params,
    ) -> Result<Self, KernelError> {
        let specs = kernel.params();
        params.validate(kernel.name(), &specs)?;
        Ok(Self {
            fingerprint,
            vertices,
            arcs,
            kernel: kernel.name(),
            params: params.canonical(&specs),
        })
    }
}

/// A point-in-time snapshot of the cache's counters — the
/// observability surface of the result cache (stats endpoint,
/// `bench_batch` output).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cached entry.
    pub hits: u64,
    /// Computations admitted (each one ran a kernel).
    pub misses: u64,
    /// Entries dropped under capacity pressure.
    pub evictions: u64,
    /// Hits that waited for an identical in-flight computation
    /// instead of starting their own (single-flight deduplication).
    pub coalesced: u64,
    /// Hits served to a different owner (session / worker) than the
    /// one that paid for the computation.
    pub cross_hits: u64,
    /// Entries dropped by fingerprint invalidation (graph replaced,
    /// or a mutation delta its kernel's sensitivity could affect).
    pub invalidated: u64,
    /// Entries re-keyed to a mutated graph's new fingerprint because
    /// the mutation provably could not affect them ([`ResultCache::
    /// migrate_fingerprint`] decisions `Keep` + `Refresh`).
    pub migrated: u64,
    /// The subset of `migrated` whose outcome was incrementally
    /// maintained (`Refresh`) rather than kept verbatim.
    pub refreshed: u64,
    /// Completed computations discarded instead of inserted because
    /// their fingerprint was invalidated while they were in flight —
    /// the replace-mid-batch stale window, closed.
    pub stale_drops: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries (0 = caching disabled).
    pub capacity: usize,
}

/// Per-entry verdict for [`ResultCache::migrate_fingerprint`].
pub enum MigrationDecision {
    /// The mutation provably cannot affect this outcome: re-key it to
    /// the new fingerprint unchanged.
    Keep,
    /// The outcome was incrementally maintained across the delta:
    /// re-key it with this replacement value.
    Refresh(Outcome),
    /// The mutation may affect the outcome and no incremental path
    /// exists: drop it (the full-recompute fallback).
    Invalidate,
}

/// What one [`ResultCache::migrate_fingerprint`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Entries re-keyed verbatim.
    pub survived: usize,
    /// Entries re-keyed with an incrementally maintained outcome.
    pub refreshed: usize,
    /// Entries dropped.
    pub invalidated: usize,
}

struct Entry {
    outcome: Outcome,
    stamp: u64,
    owner: u64,
}

#[derive(Default)]
struct Inner {
    capacity: usize,
    tick: u64,
    entries: FxHashMap<CacheKey, Entry>,
    /// Keys with a computation currently in flight (single-flight).
    inflight: FxHashMap<CacheKey, ()>,
    /// Fingerprint → tick of its most recent invalidation or
    /// migration. Computations admitted before that tick must not
    /// insert: their graph was replaced or mutated while they ran,
    /// and a late insert would resurrect an entry invalidation
    /// already dropped.
    invalidated_at: FxHashMap<u64, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
    coalesced: u64,
    cross_hits: u64,
    invalidated: u64,
    migrated: u64,
    refreshed: u64,
    stale_drops: u64,
}

impl Inner {
    /// Serves `key` from the cache if present: refreshes its LRU
    /// stamp, bumps the counters, and returns a copy flagged
    /// `cached` with zeroed per-request timings (a hit does no
    /// kernel work).
    fn lookup(&mut self, key: &CacheKey, owner: u64, waited: bool) -> Option<Outcome> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.stamp = tick;
        self.hits += 1;
        if waited {
            self.coalesced += 1;
        }
        if entry.owner != owner {
            self.cross_hits += 1;
        }
        let mut outcome = entry.outcome.clone();
        outcome.cached = true;
        outcome.timings = StageTimings::default();
        Some(outcome)
    }

    /// Inserts a freshly computed outcome. `admitted` is the tick at
    /// which the computation was admitted: if the key's fingerprint
    /// was invalidated after that, the result is for content some
    /// handle no longer references and is dropped instead of cached.
    fn insert(&mut self, key: CacheKey, outcome: Outcome, owner: u64, admitted: u64) {
        if self.capacity == 0 {
            return;
        }
        if self
            .invalidated_at
            .get(&key.fingerprint)
            .is_some_and(|&at| at > admitted)
        {
            self.stale_drops += 1;
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.evict_oldest();
        }
        let stamp = self.tick;
        self.entries.insert(
            key,
            Entry {
                outcome,
                stamp,
                owner,
            },
        );
    }

    /// Stamps `fingerprint` as invalidated *now* and bounds the epoch
    /// map (a long-lived server replacing graphs forever must not
    /// grow it without limit; pruned stamps only cost a wasted —
    /// harmless — late insert).
    fn stamp_invalidated(&mut self, fingerprint: u64) {
        self.tick += 1;
        let tick = self.tick;
        self.invalidated_at.insert(fingerprint, tick);
        if self.invalidated_at.len() > 1024 {
            let mut ticks: Vec<u64> = self.invalidated_at.values().copied().collect();
            ticks.sort_unstable();
            let cutoff = ticks[ticks.len() / 2];
            self.invalidated_at.retain(|_, &mut at| at > cutoff);
        }
    }

    fn evict_oldest(&mut self) {
        if let Some(oldest) = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.stamp)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }
}

/// A bounded, thread-safe LRU memo of kernel outcomes, shared by
/// cloning the `Arc` it is constructed behind. See the
/// module-level docs above for the full contract.
pub struct ResultCache {
    inner: Mutex<Inner>,
    flight_done: Condvar,
}

impl ResultCache {
    /// A cache holding at most `capacity` outcomes (0 disables both
    /// caching and single-flight deduplication).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity,
                ..Inner::default()
            }),
            flight_done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Kernel panics never happen while the lock is held (compute
        // runs unlocked), so poisoning cannot leave bad state.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `key` up without computing anything. A hit counts toward
    /// [`CacheStats::hits`]; absence counts nothing (misses are
    /// counted when a computation is admitted).
    pub fn get(&self, key: &CacheKey, owner: u64) -> Option<Outcome> {
        self.lock().lookup(key, owner, false)
    }

    /// The single-flight entry point: serves `key` from the cache,
    /// or — if an identical request is already computing — waits for
    /// it, or becomes the leader and runs `compute` itself (exactly
    /// one leader per key at a time). Fresh successful outcomes are
    /// inserted; a leader's error is returned to the leader only, and
    /// one waiter is promoted to retry.
    pub fn run_or_wait<F>(
        &self,
        key: &CacheKey,
        owner: u64,
        compute: F,
    ) -> Result<Outcome, KernelError>
    where
        F: FnOnce() -> Result<Outcome, KernelError>,
    {
        let mut waited = false;
        let (track, admitted) = {
            let mut inner = self.lock();
            loop {
                if let Some(hit) = inner.lookup(key, owner, waited) {
                    return Ok(hit);
                }
                if inner.capacity == 0 || !inner.inflight.contains_key(key) {
                    break;
                }
                inner = self
                    .flight_done
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
                waited = true;
            }
            inner.misses += 1;
            let track = inner.capacity > 0;
            if track {
                inner.inflight.insert(key.clone(), ());
            }
            (track, inner.tick)
        };
        if !track {
            // Caching disabled: every request computes for itself.
            return compute();
        }
        // The guard unparks waiters even if `compute` panics, so a
        // crashed leader cannot strand its followers.
        let _flight = Flight { cache: self, key };
        let result = compute();
        if let Ok(outcome) = &result {
            self.lock()
                .insert(key.clone(), outcome.clone(), owner, admitted);
        }
        result
    }

    /// Drops every cached outcome computed for graphs with content
    /// hash `fingerprint`; returns how many entries were removed.
    /// Called when a graph is replaced under an existing handle or
    /// server-side name.
    pub fn invalidate_fingerprint(&self, fingerprint: u64) -> usize {
        let mut inner = self.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|key, _| key.fingerprint != fingerprint);
        let removed = before - inner.entries.len();
        inner.invalidated += removed as u64;
        // Stamp even when nothing was cached: an in-flight
        // computation for this fingerprint must still discard its
        // late insert.
        inner.stamp_invalidated(fingerprint);
        removed
    }

    /// Re-keys the cached entries of a mutated graph from `old_fp` to
    /// `new_fp` (with the new CSR dimensions), asking `decide` what
    /// to do with each one: [`MigrationDecision::Keep`] moves the
    /// outcome verbatim, [`MigrationDecision::Refresh`] moves an
    /// incrementally maintained replacement, and
    /// [`MigrationDecision::Invalidate`] drops the entry. The old
    /// fingerprint is stamped invalidated either way, so an in-flight
    /// computation against the pre-mutation content cannot resurrect
    /// an entry afterwards.
    ///
    /// `decide` runs with the cache lock held: it must not call back
    /// into this cache (incremental kernel maintenance is fine; cache
    /// lookups are not).
    pub fn migrate_fingerprint<F>(
        &self,
        old_fp: u64,
        new_fp: u64,
        new_vertices: usize,
        new_arcs: usize,
        mut decide: F,
    ) -> MigrationStats
    where
        F: FnMut(&CacheKey, &Outcome) -> MigrationDecision,
    {
        let mut stats = MigrationStats::default();
        let mut inner = self.lock();
        inner.stamp_invalidated(old_fp);
        if old_fp == new_fp {
            return stats;
        }
        let old_keys: Vec<CacheKey> = inner
            .entries
            .keys()
            .filter(|k| k.fingerprint == old_fp)
            .cloned()
            .collect();
        for key in old_keys {
            let entry = inner.entries.remove(&key).expect("key collected above");
            let new_key = CacheKey {
                fingerprint: new_fp,
                vertices: new_vertices,
                arcs: new_arcs,
                kernel: key.kernel,
                params: key.params,
            };
            let moved = match decide(&new_key, &entry.outcome) {
                MigrationDecision::Keep => {
                    stats.survived += 1;
                    Some(entry)
                }
                MigrationDecision::Refresh(outcome) => {
                    stats.refreshed += 1;
                    Some(Entry { outcome, ..entry })
                }
                MigrationDecision::Invalidate => {
                    stats.invalidated += 1;
                    None
                }
            };
            if let Some(entry) = moved {
                // Never clobber an entry already computed for the new
                // content (a racing fresh run beat the migration).
                inner.entries.entry(new_key).or_insert(entry);
            }
        }
        inner.migrated += (stats.survived + stats.refreshed) as u64;
        inner.refreshed += stats.refreshed as u64;
        inner.invalidated += stats.invalidated as u64;
        stats
    }

    /// Resizes the cache; shrinking evicts least-recently-used
    /// entries down to the new capacity.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        while inner.entries.len() > capacity {
            inner.evict_oldest();
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            coalesced: inner.coalesced,
            cross_hits: inner.cross_hits,
            invalidated: inner.invalidated,
            migrated: inner.migrated,
            refreshed: inner.refreshed,
            stale_drops: inner.stale_drops,
            entries: inner.entries.len(),
            capacity: inner.capacity,
        }
    }
}

/// Removes the in-flight marker and wakes waiters when the leader's
/// computation ends, however it ends.
struct Flight<'a> {
    cache: &'a ResultCache,
    key: &'a CacheKey,
}

impl Drop for Flight<'_> {
    fn drop(&mut self) {
        self.cache.lock().inflight.remove(self.key);
        self.cache.flight_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    fn key(fp: u64, params: &str) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            vertices: 10,
            arcs: 20,
            kernel: "test-kernel",
            params: params.to_string(),
        }
    }

    fn outcome(patterns: u64) -> Outcome {
        Outcome::new("test-kernel", patterns)
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let cache = ResultCache::new(2);
        for fp in [1u64, 2, 3] {
            cache
                .run_or_wait(&key(fp, "a"), 1, || Ok(outcome(fp)))
                .unwrap();
        }
        // Capacity 2: inserting the third evicted the first.
        let hit = cache.get(&key(3, "a"), 1).unwrap();
        assert!(hit.cached && hit.patterns == 3);
        assert!(cache.get(&key(1, "a"), 1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn single_flight_runs_identical_requests_once() {
        let cache = Arc::new(ResultCache::new(16));
        let runs = Arc::new(AtomicUsize::new(0));
        let n = 6;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let (cache, runs, barrier) = (cache.clone(), runs.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    cache
                        .run_or_wait(&key(7, "a"), i as u64 + 1, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(40));
                            Ok(outcome(9))
                        })
                        .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "one leader, N-1 followers");
        assert_eq!(outcomes.iter().filter(|o| !o.cached).count(), 1);
        assert!(outcomes.iter().all(|o| o.patterns == 9));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, n - 1);
        assert!(stats.cross_hits >= 1, "owners differ, hits are cross-owner");
    }

    #[test]
    fn leader_error_is_not_cached_and_promotes_a_waiter() {
        let cache = Arc::new(ResultCache::new(16));
        let runs = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(2));
        let spawn = |fail: bool| {
            let (cache, runs, barrier) = (cache.clone(), runs.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                cache.run_or_wait(&key(1, "a"), 1, move || {
                    let order = runs.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    if fail && order == 0 {
                        Err(KernelError::InvalidHandle)
                    } else {
                        Ok(outcome(5))
                    }
                })
            })
        };
        // Whichever thread leads first fails; the other must end up
        // with a real outcome (either it led first, or it was
        // promoted after the leader's error).
        let a = spawn(true);
        let b = spawn(true);
        let results = [a.join().unwrap(), b.join().unwrap()];
        assert!(results.iter().any(|r| r.is_ok()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_fingerprint_drops_only_that_graph() {
        let cache = ResultCache::new(16);
        cache
            .run_or_wait(&key(1, "a"), 1, || Ok(outcome(1)))
            .unwrap();
        cache
            .run_or_wait(&key(1, "b"), 1, || Ok(outcome(2)))
            .unwrap();
        cache
            .run_or_wait(&key(2, "a"), 1, || Ok(outcome(3)))
            .unwrap();
        assert_eq!(cache.invalidate_fingerprint(1), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(2, "a"), 1).is_some());
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn invalidation_mid_flight_discards_the_late_insert() {
        // The replace-mid-batch race: a computation admitted for
        // fingerprint 1 is still running when the graph is replaced
        // and fp 1 invalidated. Its insert must be discarded — the
        // cache promised "after invalidate returns, fp-1 entries do
        // not reappear unless recomputed".
        let cache = Arc::new(ResultCache::new(16));
        let started = Arc::new(Barrier::new(2));
        let cache2 = cache.clone();
        let started2 = started.clone();
        let worker = std::thread::spawn(move || {
            cache2.run_or_wait(&key(1, "a"), 1, || {
                started2.wait();
                // Hold the computation open long enough for the main
                // thread to invalidate.
                std::thread::sleep(Duration::from_millis(60));
                Ok(outcome(5))
            })
        });
        started.wait();
        std::thread::sleep(Duration::from_millis(10));
        cache.invalidate_fingerprint(1);
        let result = worker.join().unwrap().unwrap();
        assert_eq!(result.patterns, 5, "the caller still gets its result");
        assert!(
            cache.get(&key(1, "a"), 1).is_none(),
            "a late insert must not resurrect an invalidated fingerprint"
        );
        assert_eq!(cache.stats().stale_drops, 1);
        // A computation admitted *after* the invalidation caches
        // normally.
        cache
            .run_or_wait(&key(1, "a"), 1, || Ok(outcome(6)))
            .unwrap();
        assert_eq!(cache.get(&key(1, "a"), 1).unwrap().patterns, 6);
    }

    #[test]
    fn migrate_fingerprint_moves_refreshes_and_drops_per_decision() {
        let cache = ResultCache::new(16);
        let mk = |kernel: &'static str, fp: u64, patterns: u64| {
            let k = CacheKey {
                fingerprint: fp,
                vertices: 10,
                arcs: 20,
                kernel,
                params: "".to_string(),
            };
            cache.run_or_wait(&k, 1, || Ok(Outcome::new(kernel, patterns)))
        };
        mk("keep-me", 1, 10).unwrap();
        mk("refresh-me", 1, 20).unwrap();
        mk("drop-me", 1, 30).unwrap();
        mk("other-graph", 2, 40).unwrap();

        let stats = cache.migrate_fingerprint(1, 9, 11, 24, |key, prev| match key.kernel {
            "keep-me" => MigrationDecision::Keep,
            "refresh-me" => {
                MigrationDecision::Refresh(Outcome::new("refresh-me", prev.patterns + 1))
            }
            _ => MigrationDecision::Invalidate,
        });
        assert_eq!(
            stats,
            MigrationStats {
                survived: 1,
                refreshed: 1,
                invalidated: 1
            }
        );
        let at = |kernel: &'static str, fp: u64| CacheKey {
            fingerprint: fp,
            vertices: if fp == 9 { 11 } else { 10 },
            arcs: if fp == 9 { 24 } else { 20 },
            kernel,
            params: "".to_string(),
        };
        assert_eq!(cache.get(&at("keep-me", 9), 1).unwrap().patterns, 10);
        assert_eq!(cache.get(&at("refresh-me", 9), 1).unwrap().patterns, 21);
        assert!(cache.get(&at("drop-me", 9), 1).is_none());
        assert!(cache.get(&at("keep-me", 1), 1).is_none(), "old key gone");
        assert!(
            cache.get(&at("other-graph", 2), 1).is_some(),
            "unrelated fingerprints untouched"
        );
        let cs = cache.stats();
        assert_eq!((cs.migrated, cs.refreshed, cs.invalidated), (2, 1, 1));
    }

    #[test]
    fn capacity_zero_disables_caching_but_still_computes() {
        let cache = ResultCache::new(0);
        let first = cache
            .run_or_wait(&key(1, "a"), 1, || Ok(outcome(4)))
            .unwrap();
        let second = cache
            .run_or_wait(&key(1, "a"), 1, || Ok(outcome(4)))
            .unwrap();
        assert!(!first.cached && !second.cached);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn set_capacity_shrinks_lru_first() {
        let cache = ResultCache::new(8);
        for fp in 1..=4u64 {
            cache
                .run_or_wait(&key(fp, "a"), 1, || Ok(outcome(fp)))
                .unwrap();
        }
        // Touch fp=1 so it is the most recently used.
        cache.get(&key(1, "a"), 1).unwrap();
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1, "a"), 1).is_some());
        assert!(cache.get(&key(4, "a"), 1).is_some());
        assert!(cache.get(&key(2, "a"), 1).is_none());
    }
}
