//! The uniform result of any kernel run: pattern count, per-stage
//! timings (riding the existing [`StageTimings`]), and a
//! kernel-specific payload.

use crate::pipeline::StageTimings;
use gms_core::NodeId;

/// Kernel-specific result data beyond the pattern count.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Nothing beyond the count.
    None,
    /// Materialized vertex groups (maximal cliques, k-cliques, ...),
    /// each sorted ascending.
    VertexGroups(Vec<Vec<NodeId>>),
    /// A per-vertex assignment (colors, communities, clusters).
    Assignment(Vec<u32>),
    /// A vertex ranking (reordering kernels): `rank[v]` is the
    /// position of `v` in the computed order.
    Rank(Vec<u32>),
    /// A single quality number (modularity, forest weight, accuracy).
    Scalar(f64),
}

impl Payload {
    /// Whether the payload carries data.
    pub fn is_some(&self) -> bool {
        !matches!(self, Payload::None)
    }
}

/// The uniform outcome of one kernel request: what every kernel
/// returns through the [`Kernel`](super::Kernel) entry point,
/// whatever its legacy signature looked like.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Name of the kernel that produced this outcome.
    pub kernel: &'static str,
    /// Number of mined patterns — the §4.3 algorithmic-throughput
    /// numerator (maximal cliques, k-cliques, embeddings, colors,
    /// communities, ... as appropriate for the kernel).
    pub patterns: u64,
    /// Per-stage timings of the work done *for this request*: a
    /// cache hit reports zeros, because no kernel ran.
    pub timings: StageTimings,
    /// Kernel-specific extra data.
    pub payload: Payload,
    /// Whether this outcome was served from the session cache (or,
    /// in a batch, deduplicated onto another identical request)
    /// instead of running the kernel.
    pub cached: bool,
}

impl Outcome {
    /// A fresh (non-cached) outcome with the given pattern count and
    /// zero timings; chain [`Outcome::with_timings`] /
    /// [`Outcome::with_payload`] to fill it in.
    pub fn new(kernel: &'static str, patterns: u64) -> Self {
        Self {
            kernel,
            patterns,
            timings: StageTimings::default(),
            payload: Payload::None,
            cached: false,
        }
    }

    /// Sets the per-stage timings.
    pub fn with_timings(mut self, timings: StageTimings) -> Self {
        self.timings = timings;
        self
    }

    /// Sets the payload.
    pub fn with_payload(mut self, payload: Payload) -> Self {
        self.payload = payload;
        self
    }

    /// Algorithmic throughput (§4.3): patterns per second of kernel
    /// time. Returns 0 for cache hits (no kernel time was spent).
    pub fn throughput(&self) -> f64 {
        let secs = self.timings.kernel.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.patterns as f64 / secs
        }
    }

    /// Same mined result, ignoring provenance (timings and cache
    /// flag) — what "a cache hit returns the same outcome" means.
    pub fn same_result(&self, other: &Outcome) -> bool {
        self.kernel == other.kernel
            && self.patterns == other.patterns
            && self.payload == other.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn throughput_counts_kernel_time_only() {
        let o = Outcome::new("t", 100).with_timings(StageTimings {
            convert: Duration::from_secs(1),
            preprocess: Duration::from_secs(1),
            kernel: Duration::from_millis(500),
        });
        assert!((o.throughput() - 200.0).abs() < 1e-9);
        assert_eq!(Outcome::new("t", 100).throughput(), 0.0);
    }

    #[test]
    fn same_result_ignores_provenance() {
        let a = Outcome::new("t", 3).with_payload(Payload::Scalar(0.5));
        let mut b = a.clone().with_timings(StageTimings {
            kernel: Duration::from_secs(9),
            ..StageTimings::default()
        });
        b.cached = true;
        assert!(a.same_result(&b));
        assert!(!a.same_result(&Outcome::new("t", 4)));
    }
}
