//! The kernel registry: every mining kernel, enumerable by name and
//! category. The benchmark binaries iterate the registry instead of
//! hard-wiring calls, so a newly registered kernel shows up in the
//! benchmarks (and the integration suite) for free.

use super::{builtin, Category, Kernel, KernelError, Outcome, Params};
use gms_core::CsrGraph;

/// An ordered collection of [`Kernel`]s with unique names.
pub struct Registry {
    kernels: Vec<Box<dyn Kernel>>,
}

impl Registry {
    /// An empty registry (for tests and custom deployments).
    pub fn empty() -> Self {
        Self {
            kernels: Vec::new(),
        }
    }

    /// The full built-in suite: every public mining kernel of
    /// gms-pattern, gms-match, gms-learn and gms-opt, plus the
    /// gms-order reorderings as preprocessing kernels.
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        builtin::register_all(&mut registry);
        registry
    }

    /// Adds a kernel.
    ///
    /// # Panics
    /// Panics if a kernel with the same name is already registered —
    /// duplicate names would make name-based requests ambiguous.
    pub fn register(&mut self, kernel: Box<dyn Kernel>) {
        assert!(
            self.get(kernel.name()).is_none(),
            "kernel {:?} registered twice",
            kernel.name()
        );
        self.kernels.push(kernel);
    }

    /// Looks a kernel up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Kernel> {
        self.kernels
            .iter()
            .map(|k| k.as_ref())
            .find(|k| k.name() == name)
    }

    /// All kernels in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Kernel> {
        self.kernels.iter().map(|k| k.as_ref())
    }

    /// All kernel names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.iter().map(|k| k.name()).collect()
    }

    /// The kernels of one category, in registration order.
    pub fn by_category(&self, category: Category) -> Vec<&dyn Kernel> {
        self.iter().filter(|k| k.category() == category).collect()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Validates `params` against the named kernel's schema and runs
    /// it — the uncached entry point the benchmark harness uses
    /// (sessions add fingerprint-keyed memoization on top).
    pub fn run(
        &self,
        name: &str,
        graph: &CsrGraph,
        params: &Params,
    ) -> Result<Outcome, KernelError> {
        let kernel = self
            .get(name)
            .ok_or_else(|| KernelError::UnknownKernel(name.to_string()))?;
        params.validate(name, &kernel.params())?;
        kernel.run(graph, params)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_every_category_with_unique_names() {
        let registry = Registry::with_builtins();
        assert!(registry.len() >= 15, "expected a full suite");
        for category in Category::ALL {
            assert!(
                !registry.by_category(category).is_empty(),
                "no kernels in category {category:?}"
            );
        }
        let names = registry.names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn unknown_kernel_and_bad_params_are_errors() {
        let registry = Registry::with_builtins();
        let g = gms_gen::gnp(30, 0.2, 1);
        assert!(matches!(
            registry.run("no-such-kernel", &g, &Params::new()),
            Err(KernelError::UnknownKernel(_))
        ));
        assert!(matches!(
            registry.run("k-clique", &g, &Params::new().with("bogus", 1)),
            Err(KernelError::UnknownParam { .. })
        ));
        assert!(matches!(
            registry.run("k-clique", &g, &Params::new().with("k", "three")),
            Err(KernelError::BadParam { .. })
        ));
    }

    #[test]
    fn duplicate_registration_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut registry = Registry::with_builtins();
            builtin::register_all(&mut registry);
        });
        assert!(result.is_err());
    }
}
