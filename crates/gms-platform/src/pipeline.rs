//! The GMS processing pipeline (§5.4, Listing 3): load → build
//! representation (①–②) → preprocess (③) → kernel (④–⑤) → gather
//! data. The [`Pipeline`] trait mirrors the paper's `MyPipeline`
//! class; [`run_pipeline`] executes the stages and times each one
//! separately, enabling the fine-grained analyses (e.g. the
//! "fraction needed for reordering" bars of Fig. 4/5).

use std::time::{Duration, Instant};

/// A benchmark pipeline with the paper's three user-definable stages.
pub trait Pipeline {
    /// Converts the input graph to the representation the kernel
    /// wants (pipeline steps ①–②). Optional.
    fn convert(&mut self) {}

    /// Preprocessing, e.g. vertex reordering (step ③). Optional.
    fn preprocess(&mut self) {}

    /// The graph mining kernel (steps ④–⑤⁺).
    fn kernel(&mut self);

    /// Number of mined patterns, for algorithmic-throughput reporting
    /// (§4.3). Return 0 when not applicable.
    fn patterns_found(&self) -> u64 {
        0
    }
}

/// Per-stage timings of one pipeline execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Representation conversion time.
    pub convert: Duration,
    /// Preprocessing (reordering, ...) time.
    pub preprocess: Duration,
    /// Kernel time.
    pub kernel: Duration,
}

impl StageTimings {
    /// End-to-end time.
    pub fn total(&self) -> Duration {
        self.convert + self.preprocess + self.kernel
    }

    /// Fraction of the total spent preprocessing — the reordering
    /// overhead highlighted in Figs. 4 and 5.
    pub fn preprocess_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.preprocess.as_secs_f64() / total
        }
    }
}

/// Runs all stages, timing each; returns the timings and the pattern
/// count.
pub fn run_pipeline<P: Pipeline>(pipeline: &mut P) -> (StageTimings, u64) {
    let t = Instant::now();
    pipeline.convert();
    let convert = t.elapsed();
    let t = Instant::now();
    pipeline.preprocess();
    let preprocess = t.elapsed();
    let t = Instant::now();
    pipeline.kernel();
    let kernel = t.elapsed();
    (
        StageTimings {
            convert,
            preprocess,
            kernel,
        },
        pipeline.patterns_found(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        converted: bool,
        preprocessed: bool,
        result: u64,
    }

    impl Pipeline for Demo {
        fn convert(&mut self) {
            self.converted = true;
        }
        fn preprocess(&mut self) {
            assert!(self.converted, "stages run in order");
            self.preprocessed = true;
        }
        fn kernel(&mut self) {
            assert!(self.preprocessed, "stages run in order");
            self.result = 42;
        }
        fn patterns_found(&self) -> u64 {
            self.result
        }
    }

    #[test]
    fn stages_run_in_order_and_report() {
        let mut p = Demo {
            converted: false,
            preprocessed: false,
            result: 0,
        };
        let (timings, patterns) = run_pipeline(&mut p);
        assert_eq!(patterns, 42);
        assert!(timings.total() >= timings.kernel);
        assert!(timings.preprocess_fraction() <= 1.0);
    }

    #[test]
    fn default_stages_are_noops() {
        struct KernelOnly(u64);
        impl Pipeline for KernelOnly {
            fn kernel(&mut self) {
                self.0 += 1;
            }
        }
        let mut p = KernelOnly(0);
        let (_, patterns) = run_pipeline(&mut p);
        assert_eq!(patterns, 0);
        assert_eq!(p.0, 1);
    }
}
