//! # gms-match
//!
//! Subgraph isomorphism for GraphMineSuite-rs (§6.4): a VF2-style
//! backtracking matcher over vertex-labeled graphs, in induced and
//! non-induced variants, plus the parallel VF3-Light-style driver with
//! the paper's work-splitting / work-stealing / galloping-membership /
//! candidate-precompute optimizations.

#![warn(missing_docs)]

pub mod fsm;
pub mod labeled;
pub mod parallel;
pub mod vf2;

pub use fsm::{frequent_subgraphs, mni_support, ExplorationStrategy, FrequentPattern, FsmConfig};
pub use labeled::LabeledGraph;
pub use parallel::{
    count_embeddings_parallel, count_embeddings_parallel_cancellable, ParallelIsoConfig,
};
pub use vf2::{
    count_embeddings, count_embeddings_cancellable, enumerate_embeddings, is_subgraph, IsoMode,
    IsoOptions,
};
