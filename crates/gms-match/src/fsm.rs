//! Frequent Subgraph Mining (FSM, §4.1.1, §A): find all connected
//! labeled patterns occurring in a target graph with support above a
//! threshold. Per the paper, an FSM algorithm is (1) an exploration
//! strategy over the tree of candidate patterns — BFS (level-wise) or
//! DFS (recursive extension) — and (2) a subgraph-isomorphism kernel
//! deciding occurrences; both are provided here, sharing the VF2
//! matcher of this crate.
//!
//! Support is **minimum-image (MNI) support** — the standard
//! anti-monotone measure: the support of a pattern is the smallest,
//! over pattern vertices, number of distinct target vertices that
//! vertex maps to across all embeddings. Anti-monotonicity is what
//! makes level-wise pruning sound.

use crate::labeled::LabeledGraph;
use crate::vf2::{enumerate_embeddings, IsoMode, IsoOptions};
use gms_core::hash::{FxHashMap, FxHashSet};
use gms_core::{CsrBuilder, NodeId};

/// Exploration strategy for the candidate-pattern tree (§A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExplorationStrategy {
    /// Level-wise: all patterns with `e` edges before any with `e+1`.
    Bfs,
    /// Depth-first recursive extension.
    Dfs,
}

/// FSM configuration.
#[derive(Clone, Debug)]
pub struct FsmConfig {
    /// Minimum MNI support for a pattern to be reported.
    pub min_support: u64,
    /// Maximum pattern size (vertices); keeps the search bounded.
    pub max_vertices: usize,
    /// BFS or DFS exploration.
    pub strategy: ExplorationStrategy,
}

impl Default for FsmConfig {
    fn default() -> Self {
        Self {
            min_support: 2,
            max_vertices: 4,
            strategy: ExplorationStrategy::Bfs,
        }
    }
}

/// A frequent pattern with its support.
#[derive(Clone, Debug)]
pub struct FrequentPattern {
    /// The pattern graph (canonical vertex order).
    pub pattern: LabeledGraph,
    /// Its MNI support in the target.
    pub support: u64,
}

/// A pattern under construction: labels + undirected edges.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Pattern {
    labels: Vec<u32>,
    edges: Vec<(u8, u8)>, // small patterns: u8 endpoints
}

impl Pattern {
    fn to_graph(&self) -> LabeledGraph {
        let mut builder = CsrBuilder::new(self.labels.len());
        for &(a, b) in &self.edges {
            builder.push_arc(a as NodeId, b as NodeId);
            builder.push_arc(b as NodeId, a as NodeId);
        }
        LabeledGraph::new(builder.finish_dedup(), self.labels.clone())
    }

    /// Canonical code: the lexicographically smallest encoding over
    /// all vertex permutations (exact; patterns are tiny).
    fn canonical_code(&self) -> Vec<u32> {
        let k = self.labels.len();
        let mut order: Vec<u8> = (0..k as u8).collect();
        let mut best: Option<Vec<u32>> = None;
        permute(&mut order, 0, &mut |perm| {
            // position[p] = new index of original vertex p
            let mut position = vec![0u8; k];
            for (new_idx, &orig) in perm.iter().enumerate() {
                position[orig as usize] = new_idx as u8;
            }
            let mut code: Vec<u32> = perm.iter().map(|&v| self.labels[v as usize]).collect();
            let mut edges: Vec<(u8, u8)> = self
                .edges
                .iter()
                .map(|&(a, b)| {
                    let (x, y) = (position[a as usize], position[b as usize]);
                    (x.min(y), x.max(y))
                })
                .collect();
            edges.sort_unstable();
            for (a, b) in edges {
                code.push(u32::from(a) << 8 | u32::from(b));
            }
            match &best {
                Some(b) if *b <= code => {}
                _ => best = Some(code),
            }
        });
        best.expect("at least one permutation")
    }

    fn is_connected(&self) -> bool {
        let k = self.labels.len();
        if k == 0 {
            return false;
        }
        let mut adj = vec![Vec::new(); k];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut seen = vec![false; k];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == k
    }
}

fn permute(values: &mut Vec<u8>, at: usize, visit: &mut impl FnMut(&[u8])) {
    if at == values.len() {
        visit(values);
        return;
    }
    for i in at..values.len() {
        values.swap(at, i);
        permute(values, at + 1, visit);
        values.swap(at, i);
    }
}

/// MNI support of `pattern` in `target` (non-induced embeddings, per
/// FSM convention), with an embedding-enumeration cap for safety.
pub fn mni_support(pattern: &LabeledGraph, target: &LabeledGraph) -> u64 {
    let k = pattern.num_vertices();
    if k == 0 {
        return 0;
    }
    let mut images: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); k];
    let options = IsoOptions {
        mode: IsoMode::NonInduced,
        precompute: true,
        galloping: true,
        limit: u64::MAX,
    };
    enumerate_embeddings(pattern, target, &options, |mapping| {
        for (q, &t) in mapping.iter().enumerate() {
            images[q].insert(t);
        }
        true
    });
    images.iter().map(|s| s.len() as u64).min().unwrap_or(0)
}

/// Mines all frequent connected patterns up to `config.max_vertices`.
/// Both strategies return identical pattern sets (tested); they differ
/// in traversal order and memory profile.
pub fn frequent_subgraphs(target: &LabeledGraph, config: &FsmConfig) -> Vec<FrequentPattern> {
    assert!(
        config.max_vertices >= 1 && config.max_vertices <= 6,
        "patterns must stay tiny"
    );
    // Seeds: single-vertex patterns for every frequent label.
    let mut label_count: FxHashMap<u32, u64> = FxHashMap::default();
    for v in 0..target.num_vertices() as NodeId {
        *label_count.entry(target.label(v)).or_insert(0) += 1;
    }
    let mut frequent_labels: Vec<u32> = label_count
        .iter()
        .filter(|(_, &c)| c >= config.min_support)
        .map(|(&l, _)| l)
        .collect();
    frequent_labels.sort_unstable();

    let mut results: Vec<FrequentPattern> = Vec::new();
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut frontier: Vec<Pattern> = Vec::new();

    for &label in &frequent_labels {
        let pattern = Pattern {
            labels: vec![label],
            edges: Vec::new(),
        };
        seen.insert(pattern.canonical_code());
        results.push(FrequentPattern {
            pattern: pattern.to_graph(),
            support: label_count[&label],
        });
        frontier.push(pattern);
    }

    match config.strategy {
        ExplorationStrategy::Bfs => {
            // Level-wise: extend the whole frontier, keep frequent
            // extensions, repeat.
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for pattern in &frontier {
                    for ext in extensions(pattern, &frequent_labels, config.max_vertices) {
                        let code = ext.canonical_code();
                        if !seen.insert(code) {
                            continue;
                        }
                        let graph = ext.to_graph();
                        let support = mni_support(&graph, target);
                        if support >= config.min_support {
                            results.push(FrequentPattern {
                                pattern: graph,
                                support,
                            });
                            next.push(ext);
                        }
                    }
                }
                frontier = next;
            }
        }
        ExplorationStrategy::Dfs => {
            let mut stack = frontier;
            while let Some(pattern) = stack.pop() {
                for ext in extensions(&pattern, &frequent_labels, config.max_vertices) {
                    let code = ext.canonical_code();
                    if !seen.insert(code) {
                        continue;
                    }
                    let graph = ext.to_graph();
                    let support = mni_support(&graph, target);
                    if support >= config.min_support {
                        results.push(FrequentPattern {
                            pattern: graph,
                            support,
                        });
                        stack.push(ext);
                    }
                }
            }
        }
    }
    // Canonical result order: by (vertices, edges, code).
    results.sort_by_key(|fp| {
        let p = Pattern {
            labels: fp.pattern.labels.clone(),
            edges: fp
                .pattern
                .graph
                .edges_undirected()
                .map(|(a, b)| (a as u8, b as u8))
                .collect(),
        };
        (fp.pattern.num_vertices(), p.edges.len(), p.canonical_code())
    });
    results
}

/// One-edge extensions: close a cycle between existing vertices, or
/// attach a new vertex with a frequent label.
fn extensions(pattern: &Pattern, labels: &[u32], max_vertices: usize) -> Vec<Pattern> {
    let k = pattern.labels.len();
    let mut out = Vec::new();
    let has_edge = |a: u8, b: u8| {
        pattern
            .edges
            .iter()
            .any(|&(x, y)| (x, y) == (a.min(b), a.max(b)))
    };
    // Cycle-closing edges.
    for a in 0..k as u8 {
        for b in a + 1..k as u8 {
            if !has_edge(a, b) {
                let mut ext = pattern.clone();
                ext.edges.push((a, b));
                ext.edges.sort_unstable();
                if ext.is_connected() {
                    out.push(ext);
                }
            }
        }
    }
    // New-vertex extensions.
    if k < max_vertices {
        for a in 0..k as u8 {
            for &label in labels {
                let mut ext = pattern.clone();
                ext.labels.push(label);
                ext.edges.push((a, k as u8));
                ext.edges.sort_unstable();
                out.push(ext);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::{CsrGraph, Graph as _};

    fn labeled(n: usize, edges: &[(u32, u32)], labels: Vec<u32>) -> LabeledGraph {
        LabeledGraph::new(CsrGraph::from_undirected_edges(n, edges), labels)
    }

    #[test]
    fn mni_support_on_star() {
        // Star: center label 0, three leaves label 1.
        let target = labeled(4, &[(0, 1), (0, 2), (0, 3)], vec![0, 1, 1, 1]);
        let edge_pattern = labeled(2, &[(0, 1)], vec![0, 1]);
        // Center image = {0} (size 1), leaf image = {1,2,3} (size 3):
        // MNI = 1.
        assert_eq!(mni_support(&edge_pattern, &target), 1);
        let leaf_pair = labeled(2, &[(0, 1)], vec![1, 1]);
        assert_eq!(
            mni_support(&leaf_pair, &target),
            0,
            "leaves are not adjacent"
        );
    }

    #[test]
    fn frequent_edges_in_path() {
        // Path A-B-A-B: pattern A-B occurs with both A's and both B's.
        let target = labeled(4, &[(0, 1), (1, 2), (2, 3)], vec![0, 1, 0, 1]);
        let config = FsmConfig {
            min_support: 2,
            max_vertices: 2,
            ..Default::default()
        };
        let frequent = frequent_subgraphs(&target, &config);
        // Singles: A (2), B (2). Edges: A-B (support 2). Not A-A or B-B.
        assert_eq!(frequent.len(), 3, "{frequent:?}");
        let edge = frequent
            .iter()
            .find(|f| f.pattern.num_vertices() == 2)
            .expect("edge pattern");
        assert_eq!(edge.support, 2);
        let mut labels = edge.pattern.labels.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn bfs_and_dfs_find_identical_patterns() {
        let target = LabeledGraph::random_labels(gms_gen::gnp(40, 0.12, 4), 2, 7);
        let bfs = frequent_subgraphs(
            &target,
            &FsmConfig {
                min_support: 5,
                max_vertices: 3,
                strategy: ExplorationStrategy::Bfs,
            },
        );
        let dfs = frequent_subgraphs(
            &target,
            &FsmConfig {
                min_support: 5,
                max_vertices: 3,
                strategy: ExplorationStrategy::Dfs,
            },
        );
        assert_eq!(bfs.len(), dfs.len());
        for (a, b) in bfs.iter().zip(&dfs) {
            assert_eq!(a.support, b.support);
            assert_eq!(a.pattern.labels.len(), b.pattern.labels.len());
        }
    }

    #[test]
    fn support_is_antimonotone_along_results() {
        // Every reported k-vertex pattern contains a reported
        // (k-1)-vertex sub-pattern with >= support (spot-check: the
        // maximum support per level is non-increasing).
        let target = LabeledGraph::unlabeled(gms_gen::gnp(30, 0.2, 2));
        let frequent = frequent_subgraphs(
            &target,
            &FsmConfig {
                min_support: 3,
                max_vertices: 4,
                ..Default::default()
            },
        );
        let mut max_per_level: FxHashMap<usize, u64> = FxHashMap::default();
        for f in &frequent {
            let level = f.pattern.num_vertices();
            let entry = max_per_level.entry(level).or_insert(0);
            *entry = (*entry).max(f.support);
        }
        let mut levels: Vec<usize> = max_per_level.keys().copied().collect();
        levels.sort_unstable();
        for w in levels.windows(2) {
            assert!(
                max_per_level[&w[0]] >= max_per_level[&w[1]],
                "support must not grow with pattern size"
            );
        }
    }

    #[test]
    fn triangle_is_found_when_frequent() {
        // Two disjoint unlabeled triangles: the triangle pattern has
        // MNI support 6 (every corner maps to all six vertices).
        let target = labeled(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            vec![0; 6],
        );
        let frequent = frequent_subgraphs(
            &target,
            &FsmConfig {
                min_support: 2,
                max_vertices: 3,
                ..Default::default()
            },
        );
        let triangle = frequent
            .iter()
            .find(|f| f.pattern.num_vertices() == 3 && f.pattern.graph.num_arcs() == 6)
            .expect("triangle pattern found");
        assert_eq!(triangle.support, 6);
    }

    #[test]
    fn canonical_code_deduplicates_isomorphic_patterns() {
        // The same path pattern built with two different vertex orders.
        let a = Pattern {
            labels: vec![0, 1, 0],
            edges: vec![(0, 1), (1, 2)],
        };
        let b = Pattern {
            labels: vec![1, 0, 0],
            edges: vec![(0, 1), (0, 2)],
        };
        assert_eq!(a.canonical_code(), b.canonical_code());
        // Different labels → different codes.
        let c = Pattern {
            labels: vec![1, 1, 0],
            edges: vec![(0, 1), (0, 2)],
        };
        assert_ne!(a.canonical_code(), c.canonical_code());
    }
}
