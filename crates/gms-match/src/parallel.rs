//! Parallel subgraph isomorphism (§6.4): the VF3-Light-style driver
//! with the paper's two load-balancing features.
//!
//! * **Work splitting** — the root-candidate list (target vertices
//!   from which backtracking starts) is split across threads.
//! * **Work stealing** — idle workers steal further root chunks from
//!   busy ones instead of being stuck with a static chunk; the paper
//!   implements this with a CAS-retrieved queue of vertex IDs, which
//!   maps directly onto the `rayon` scheduler's stealable range
//!   tasks, so this driver is now just a parallel iterator over root
//!   chunks inside a sized pool (the former hand-rolled
//!   `thread::scope` + injector-queue loop is gone).
//!
//! Diverse backtracking depths per root vertex make some threads
//! finish early; stealing flattens that imbalance (the effect Fig. 7
//! measures thread-by-thread).

use crate::labeled::LabeledGraph;
use crate::vf2::{build_plan, IsoOptions, MatchState};
use gms_core::CancelToken;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parallel driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ParallelIsoConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Dynamic work stealing (vs. static per-thread chunks).
    pub work_stealing: bool,
    /// Matching options (semantics + §6.4 optimizations). The `limit`
    /// field is treated as a soft limit in parallel runs: the driver
    /// stops spawning new roots once reached, but roots already in
    /// flight complete.
    pub options: IsoOptions,
}

impl Default for ParallelIsoConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            work_stealing: true,
            options: IsoOptions::default(),
        }
    }
}

/// Counts embeddings of `query` in `target` with the parallel driver.
pub fn count_embeddings_parallel(
    query: &LabeledGraph,
    target: &LabeledGraph,
    config: &ParallelIsoConfig,
) -> u64 {
    count_embeddings_parallel_cancellable(query, target, config, &CancelToken::none())
}

/// [`count_embeddings_parallel`] under a cooperative [`CancelToken`]
/// probed at every chunk boundary and extension step. A fired token
/// yields a partial count the caller must discard.
pub fn count_embeddings_parallel_cancellable(
    query: &LabeledGraph,
    target: &LabeledGraph,
    config: &ParallelIsoConfig,
    cancel: &CancelToken,
) -> u64 {
    if query.num_vertices() == 0 {
        return 1;
    }
    if query.num_vertices() > target.num_vertices() {
        return 0;
    }
    let plan = build_plan(query, target, &config.options);
    let threads = config.threads.max(1);
    let total = AtomicU64::new(0);
    let roots = &plan.root_candidates;

    // Chunk granularity is the splitting/stealing knob: with stealing
    // on, roots fan out as many small stealable tasks (each chunk
    // amortizes one `MatchState` allocation); with stealing off, one
    // contiguous chunk per thread reproduces static work splitting.
    let chunk = if config.work_stealing {
        roots.len().div_ceil(threads * 8).max(1)
    } else {
        roots.len().div_ceil(threads).max(1)
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("threads >= 1");
    pool.install(|| {
        roots.par_chunks(chunk).for_each(|chunk_roots| {
            if total.load(Ordering::Relaxed) >= config.options.limit || cancel.is_cancelled() {
                return;
            }
            let mut state = MatchState::new(query, target, &plan, &config.options);
            state.cancel = cancel.clone();
            for &root in chunk_roots {
                if total.load(Ordering::Relaxed) >= config.options.limit {
                    break;
                }
                state.extend_from_root(root);
            }
            total.fetch_add(state.found, Ordering::Relaxed);
        });
    });
    total.load(Ordering::Relaxed).min(config.options.limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2::count_embeddings;
    use gms_core::CsrGraph;

    fn triangle() -> LabeledGraph {
        LabeledGraph::unlabeled(CsrGraph::from_undirected_edges(
            3,
            &[(0, 1), (1, 2), (0, 2)],
        ))
    }

    #[test]
    fn parallel_matches_sequential() {
        let target = LabeledGraph::random_labels(gms_gen::gnp(80, 0.15, 2), 2, 4);
        let query = target.induced(&[0, 5, 11, 17]);
        let sequential = count_embeddings(&query, &target, &IsoOptions::default());
        for threads in [1, 2, 4, 8] {
            for stealing in [false, true] {
                let config = ParallelIsoConfig {
                    threads,
                    work_stealing: stealing,
                    options: IsoOptions::default(),
                };
                assert_eq!(
                    count_embeddings_parallel(&query, &target, &config),
                    sequential,
                    "threads {threads} stealing {stealing}"
                );
            }
        }
    }

    #[test]
    fn triangle_in_k5() {
        let target = LabeledGraph::unlabeled(gms_gen::complete(5));
        let config = ParallelIsoConfig {
            threads: 3,
            ..ParallelIsoConfig::default()
        };
        // C(5,3) × 3! = 60.
        assert_eq!(count_embeddings_parallel(&triangle(), &target, &config), 60);
    }

    #[test]
    fn soft_limit_caps_result() {
        let target = LabeledGraph::unlabeled(gms_gen::complete(9));
        let config = ParallelIsoConfig {
            threads: 4,
            work_stealing: true,
            options: IsoOptions {
                limit: 10,
                ..IsoOptions::default()
            },
        };
        assert_eq!(count_embeddings_parallel(&triangle(), &target, &config), 10);
    }

    #[test]
    fn degenerate_queries() {
        let target = triangle();
        let empty = LabeledGraph::unlabeled(CsrGraph::from_undirected_edges(0, &[]));
        let config = ParallelIsoConfig::default();
        assert_eq!(count_embeddings_parallel(&empty, &target, &config), 1);
        let big = LabeledGraph::unlabeled(gms_gen::complete(10));
        assert_eq!(count_embeddings_parallel(&big, &target, &config), 0);
    }
}
