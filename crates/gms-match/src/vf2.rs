//! VF2-style backtracking subgraph isomorphism (§4.1.1, §A). Finds
//! embeddings of a query graph `H` in a target `G`, in both the
//! *non-induced* variant (extra target edges among mapped vertices are
//! allowed) and the *induced* variant (they are not) — the distinction
//! the paper's appendix spells out.
//!
//! The search maps query vertices in a static connectivity-aware order
//! (highest degree first among vertices adjacent to the mapped
//! prefix), generating candidates from the target neighborhood of an
//! already-mapped anchor. Two optional optimizations from §6.4 are
//! modeled:
//!
//! * **precompute** — a per-label candidate table filtering by label
//!   and degree before the search starts;
//! * **galloping membership** ("GMS SIMD") — adjacency checks via
//!   branch-light binary search instead of linear scans.

use crate::labeled::LabeledGraph;
use gms_core::{CancelToken, Graph, NodeId};

/// Matching semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsoMode {
    /// Mapped query non-edges may be target edges.
    NonInduced,
    /// Mapped query non-edges must be target non-edges.
    Induced,
}

/// Tuning knobs modeling the §6.4 optimizations.
#[derive(Clone, Copy, Debug)]
pub struct IsoOptions {
    /// Matching semantics.
    pub mode: IsoMode,
    /// Build label/degree candidate tables before searching.
    pub precompute: bool,
    /// Use binary-search adjacency tests.
    pub galloping: bool,
    /// Stop after this many embeddings (`u64::MAX` = enumerate all).
    pub limit: u64,
}

impl Default for IsoOptions {
    fn default() -> Self {
        Self {
            mode: IsoMode::NonInduced,
            precompute: true,
            galloping: true,
            limit: u64::MAX,
        }
    }
}

/// Plan shared by the sequential and parallel drivers: static query
/// order plus optional per-query-vertex candidate lists.
pub(crate) struct MatchPlan {
    /// Query vertices in matching order; `order[0]` is the root.
    pub order: Vec<NodeId>,
    /// For `order[i]` (i > 0): an earlier query vertex adjacent to it,
    /// used to anchor candidate generation.
    pub anchor: Vec<Option<NodeId>>,
    /// Precomputed target candidates for the root (label+degree
    /// filtered when `precompute` is on).
    pub root_candidates: Vec<NodeId>,
}

pub(crate) fn build_plan(
    query: &LabeledGraph,
    target: &LabeledGraph,
    options: &IsoOptions,
) -> MatchPlan {
    let q = query.num_vertices();
    // Root: maximum degree (most constrained first).
    let root = (0..q as NodeId)
        .max_by_key(|&v| query.graph.degree(v))
        .unwrap_or(0);
    let mut order = vec![root];
    let mut anchor: Vec<Option<NodeId>> = vec![None];
    let mut placed = vec![false; q];
    placed[root as usize] = true;
    while order.len() < q {
        // Next: an unplaced vertex adjacent to the prefix, of maximum
        // degree; fall back to any unplaced vertex (disconnected query).
        let next = (0..q as NodeId)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let adjacent = query
                    .graph
                    .neighbors(v)
                    .filter(|&w| placed[w as usize])
                    .count();
                (adjacent.min(1), query.graph.degree(v))
            })
            .expect("unplaced vertex exists");
        let anchor_vertex = query.graph.neighbors(next).find(|&w| placed[w as usize]);
        order.push(next);
        anchor.push(anchor_vertex);
        placed[next as usize] = true;
    }

    let root_candidates: Vec<NodeId> = if options.precompute {
        (0..target.num_vertices() as NodeId)
            .filter(|&t| {
                target.label(t) == query.label(root)
                    && target.graph.degree(t) >= query.graph.degree(root)
            })
            .collect()
    } else {
        (0..target.num_vertices() as NodeId).collect()
    };
    MatchPlan {
        order,
        anchor,
        root_candidates,
    }
}

pub(crate) struct MatchState<'a> {
    pub query: &'a LabeledGraph,
    pub target: &'a LabeledGraph,
    pub plan: &'a MatchPlan,
    pub options: &'a IsoOptions,
    /// `mapping[q]` = target vertex or `u32::MAX`.
    pub mapping: Vec<NodeId>,
    /// Targets already used.
    pub used: Vec<bool>,
    pub found: u64,
    /// Cooperative cancellation, probed at every extension step; a
    /// fired token makes `found` a partial count the caller discards.
    pub cancel: CancelToken,
}

const UNMAPPED: NodeId = u32::MAX;

impl<'a> MatchState<'a> {
    pub fn new(
        query: &'a LabeledGraph,
        target: &'a LabeledGraph,
        plan: &'a MatchPlan,
        options: &'a IsoOptions,
    ) -> Self {
        Self {
            query,
            target,
            plan,
            options,
            mapping: vec![UNMAPPED; query.num_vertices()],
            used: vec![false; target.num_vertices()],
            found: 0,
            cancel: CancelToken::none(),
        }
    }

    #[inline]
    fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        if self.options.galloping {
            self.target
                .graph
                .neighbors_slice(u)
                .binary_search(&v)
                .is_ok()
        } else {
            self.target.graph.neighbors_slice(u).contains(&v)
        }
    }

    /// Checks mapping query vertex `qv` to target `tv` against all
    /// previously mapped query vertices.
    fn feasible(&self, qv: NodeId, tv: NodeId) -> bool {
        if self.used[tv as usize] || self.target.label(tv) != self.query.label(qv) {
            return false;
        }
        if self.target.graph.degree(tv) < self.query.graph.degree(qv) {
            return false;
        }
        for prev_q in 0..self.query.num_vertices() as NodeId {
            let prev_t = self.mapping[prev_q as usize];
            if prev_t == UNMAPPED {
                continue;
            }
            let q_edge = self.query.graph.has_edge(qv, prev_q);
            if q_edge {
                if !self.adjacent(tv, prev_t) {
                    return false;
                }
            } else if self.options.mode == IsoMode::Induced && self.adjacent(tv, prev_t) {
                return false;
            }
        }
        true
    }

    /// Recursive extension from position `depth` in the plan order.
    pub fn extend(&mut self, depth: usize) {
        if self.found >= self.options.limit || self.cancel.is_cancelled() {
            return;
        }
        if depth == self.plan.order.len() {
            self.found += 1;
            return;
        }
        let qv = self.plan.order[depth];
        match self.plan.anchor[depth] {
            Some(anchor_q) => {
                let anchor_t = self.mapping[anchor_q as usize];
                debug_assert_ne!(anchor_t, UNMAPPED);
                let neighbors: Vec<NodeId> = self.target.graph.neighbors_slice(anchor_t).to_vec();
                for tv in neighbors {
                    if self.feasible(qv, tv) {
                        self.assign_and_recurse(qv, tv, depth);
                    }
                }
            }
            None => {
                // Root of a (component of the) query: try the
                // precomputed candidate list (only depth 0 in connected
                // queries) or all target vertices.
                let candidates: Vec<NodeId> = if depth == 0 {
                    self.plan.root_candidates.clone()
                } else {
                    (0..self.target.num_vertices() as NodeId).collect()
                };
                for tv in candidates {
                    if self.feasible(qv, tv) {
                        self.assign_and_recurse(qv, tv, depth);
                    }
                }
            }
        }
    }

    /// Seeds the root mapping and searches the rest; used by the
    /// parallel driver to split the root candidates across workers.
    pub fn extend_from_root(&mut self, root_target: NodeId) {
        let root_q = self.plan.order[0];
        if self.feasible(root_q, root_target) {
            self.assign_and_recurse(root_q, root_target, 0);
        }
    }

    #[inline]
    fn assign_and_recurse(&mut self, qv: NodeId, tv: NodeId, depth: usize) {
        self.mapping[qv as usize] = tv;
        self.used[tv as usize] = true;
        self.extend(depth + 1);
        self.mapping[qv as usize] = UNMAPPED;
        self.used[tv as usize] = false;
    }
}

impl MatchState<'_> {
    /// Visitor-driven extension: calls `visit` with the complete
    /// query→target mapping for every embedding; `visit` returning
    /// `false` aborts the traversal. Returns whether to continue.
    fn extend_visit<F: FnMut(&[NodeId]) -> bool>(&mut self, depth: usize, visit: &mut F) -> bool {
        if self.cancel.is_cancelled() {
            return false;
        }
        if depth == self.plan.order.len() {
            self.found += 1;
            // Mapping is indexed by query vertex, fully populated here.
            return visit(&self.mapping);
        }
        let qv = self.plan.order[depth];
        let candidates: Vec<NodeId> = match self.plan.anchor[depth] {
            Some(anchor_q) => {
                let anchor_t = self.mapping[anchor_q as usize];
                self.target.graph.neighbors_slice(anchor_t).to_vec()
            }
            None if depth == 0 => self.plan.root_candidates.clone(),
            None => (0..self.target.num_vertices() as NodeId).collect(),
        };
        for tv in candidates {
            if self.feasible(qv, tv) {
                self.mapping[qv as usize] = tv;
                self.used[tv as usize] = true;
                let keep_going = self.extend_visit(depth + 1, visit);
                self.mapping[qv as usize] = UNMAPPED;
                self.used[tv as usize] = false;
                if !keep_going {
                    return false;
                }
            }
        }
        true
    }
}

/// Enumerates every embedding of `query` in `target`, invoking `visit`
/// with the query-indexed mapping; `visit` returning `false` stops the
/// search. Returns the number of embeddings visited.
pub fn enumerate_embeddings(
    query: &LabeledGraph,
    target: &LabeledGraph,
    options: &IsoOptions,
    mut visit: impl FnMut(&[NodeId]) -> bool,
) -> u64 {
    if query.num_vertices() == 0 || query.num_vertices() > target.num_vertices() {
        return 0;
    }
    let plan = build_plan(query, target, options);
    let mut state = MatchState::new(query, target, &plan, options);
    state.extend_visit(0, &mut visit);
    state.found
}

/// Counts embeddings of `query` in `target` (sequential VF2).
pub fn count_embeddings(query: &LabeledGraph, target: &LabeledGraph, options: &IsoOptions) -> u64 {
    count_embeddings_cancellable(query, target, options, &CancelToken::none())
}

/// [`count_embeddings`] under a cooperative [`CancelToken`] probed
/// at every extension step. A fired token yields a partial count the
/// caller must discard.
pub fn count_embeddings_cancellable(
    query: &LabeledGraph,
    target: &LabeledGraph,
    options: &IsoOptions,
    cancel: &CancelToken,
) -> u64 {
    if query.num_vertices() == 0 || query.num_vertices() > target.num_vertices() {
        return if query.num_vertices() == 0 { 1 } else { 0 };
    }
    let plan = build_plan(query, target, options);
    let mut state = MatchState::new(query, target, &plan, options);
    state.cancel = cancel.clone();
    state.extend(0);
    state.found
}

/// `true` iff at least one embedding exists.
pub fn is_subgraph(query: &LabeledGraph, target: &LabeledGraph, mode: IsoMode) -> bool {
    let options = IsoOptions {
        mode,
        limit: 1,
        ..IsoOptions::default()
    };
    count_embeddings(query, target, &options) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::CsrGraph;

    fn unlabeled(n: usize, edges: &[(u32, u32)]) -> LabeledGraph {
        LabeledGraph::unlabeled(CsrGraph::from_undirected_edges(n, edges))
    }

    fn triangle() -> LabeledGraph {
        unlabeled(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_in_k4_has_24_embeddings() {
        // 4 vertex subsets × 3! orderings.
        let target = LabeledGraph::unlabeled(gms_gen::complete(4));
        assert_eq!(
            count_embeddings(&triangle(), &target, &IsoOptions::default()),
            24
        );
    }

    #[test]
    fn induced_vs_non_induced() {
        // Query: path on 3 vertices. Target: triangle.
        let path = unlabeled(3, &[(0, 1), (1, 2)]);
        let non_induced = IsoOptions::default();
        assert_eq!(count_embeddings(&path, &triangle(), &non_induced), 6);
        let induced = IsoOptions {
            mode: IsoMode::Induced,
            ..IsoOptions::default()
        };
        // A triangle has no induced P3.
        assert_eq!(count_embeddings(&path, &triangle(), &induced), 0);
    }

    #[test]
    fn labels_constrain_matching() {
        let target = LabeledGraph::new(
            CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2), (0, 2)]),
            vec![0, 0, 1],
        );
        let query = LabeledGraph::new(CsrGraph::from_undirected_edges(2, &[(0, 1)]), vec![0, 1]);
        // Ordered pairs with labels (0, 1): (0→2 edge? yes) and (1, 2).
        assert_eq!(count_embeddings(&query, &target, &IsoOptions::default()), 2);
    }

    #[test]
    fn sampled_subgraph_always_matches() {
        let target = LabeledGraph::random_labels(gms_gen::gnp(60, 0.2, 3), 3, 1);
        let query = target.induced(&[3, 7, 10, 21]);
        assert!(is_subgraph(&query, &target, IsoMode::NonInduced));
    }

    #[test]
    fn limit_short_circuits() {
        let target = LabeledGraph::unlabeled(gms_gen::complete(8));
        let options = IsoOptions {
            limit: 5,
            ..IsoOptions::default()
        };
        assert_eq!(count_embeddings(&triangle(), &target, &options), 5);
    }

    #[test]
    fn optimizations_do_not_change_counts() {
        let target = LabeledGraph::random_labels(gms_gen::gnp(40, 0.25, 5), 2, 2);
        let query = target.induced(&[1, 4, 9]);
        let base = IsoOptions {
            precompute: false,
            galloping: false,
            ..IsoOptions::default()
        };
        let opt = IsoOptions::default();
        assert_eq!(
            count_embeddings(&query, &target, &base),
            count_embeddings(&query, &target, &opt)
        );
    }

    #[test]
    fn oversized_query_matches_nothing() {
        let query = unlabeled(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let target = triangle();
        assert_eq!(count_embeddings(&query, &target, &IsoOptions::default()), 0);
    }

    #[test]
    fn empty_query_matches_once() {
        let query = unlabeled(0, &[]);
        assert_eq!(
            count_embeddings(&query, &triangle(), &IsoOptions::default()),
            1
        );
    }
}
