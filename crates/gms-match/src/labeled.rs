//! Vertex-labeled graphs for subgraph isomorphism (§6.4, §8.5 — the
//! paper evaluates on labeled Erdős–Rényi targets).

use gms_core::{CsrGraph, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph whose vertices carry integer labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabeledGraph {
    /// Topology.
    pub graph: CsrGraph,
    /// Label of every vertex.
    pub labels: Vec<u32>,
}

impl LabeledGraph {
    /// Pairs a graph with labels.
    ///
    /// # Panics
    /// Panics if the label array length differs from the vertex count.
    pub fn new(graph: CsrGraph, labels: Vec<u32>) -> Self {
        assert_eq!(graph.num_vertices(), labels.len());
        Self { graph, labels }
    }

    /// Labels every vertex `0` (unlabeled matching).
    pub fn unlabeled(graph: CsrGraph) -> Self {
        let labels = vec![0; graph.num_vertices()];
        Self { graph, labels }
    }

    /// Assigns uniform random labels from `0..alphabet`.
    pub fn random_labels(graph: CsrGraph, alphabet: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = (0..graph.num_vertices())
            .map(|_| rng.gen_range(0..alphabet))
            .collect();
        Self { graph, labels }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Label of `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Extracts the subgraph induced by `vertices` (with its labels),
    /// relabeling vertices to `0..k` in the given order. Useful for
    /// sampling guaranteed-present query graphs in tests/benchmarks.
    pub fn induced(&self, vertices: &[NodeId]) -> LabeledGraph {
        let (sub, _) = gms_graph::induced_subgraph(&self.graph, vertices);
        let labels = vertices.iter().map(|&v| self.label(v)).collect();
        LabeledGraph { graph: sub, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]);
        let lg = LabeledGraph::new(g.clone(), vec![5, 6, 7]);
        assert_eq!(lg.label(1), 6);
        let un = LabeledGraph::unlabeled(g);
        assert!(un.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn random_labels_deterministic() {
        let g = gms_gen::gnp(50, 0.1, 1);
        let a = LabeledGraph::random_labels(g.clone(), 4, 9);
        let b = LabeledGraph::random_labels(g, 4, 9);
        assert_eq!(a.labels, b.labels);
        assert!(a.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn induced_subgraph_keeps_labels() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let lg = LabeledGraph::new(g, vec![10, 20, 30, 40]);
        let sub = lg.induced(&[1, 3]);
        assert_eq!(sub.labels, vec![20, 40]);
        assert_eq!(sub.num_vertices(), 2);
    }
}
