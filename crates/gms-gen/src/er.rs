//! Erdős–Rényi random graphs (§4.2): the uniform random model the
//! paper prescribes for studying performance under controlled,
//! skew-free degree distributions.

use gms_core::{CsrGraph, Edge, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `G(n, p)`: every unordered pair is an edge independently
/// with probability `p`. Uses geometric skipping, so the cost is
/// proportional to the number of generated edges, not `n²`.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::new();
    if n < 2 || p == 0.0 {
        return CsrGraph::from_undirected_edges(n, &edges);
    }
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in u + 1..n as NodeId {
                edges.push((u, v));
            }
        }
        return CsrGraph::from_undirected_edges(n, &edges);
    }
    // Enumerate pairs (u, v), u < v, as a linear index and skip
    // geometrically between successive edges.
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let log1m = (1.0 - p).ln();
    let mut index: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1m).floor() as u64 + 1;
        index = match index.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if index > total_pairs {
            break;
        }
        edges.push(pair_from_index(n as u64, index - 1));
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Samples `G(n, m)`: exactly `m` distinct edges drawn uniformly.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let total_pairs = if n < 2 {
        0
    } else {
        n as u64 * (n as u64 - 1) / 2
    };
    assert!(
        m as u64 <= total_pairs,
        "m exceeds the number of vertex pairs"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let idx = rng.gen_range(0..total_pairs);
        if chosen.insert(idx) {
            edges.push(pair_from_index(n as u64, idx));
        }
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Maps a linear index in `0..n*(n-1)/2` to the corresponding
/// unordered pair `(u, v)`, `u < v`, in lexicographic order.
fn pair_from_index(n: u64, index: u64) -> Edge {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve directly.
    // Find the largest u with f(u) = u*(2n - u - 1)/2 <= index.
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let f = mid * (2 * n - mid - 1) / 2;
        if f <= index {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let offset = u * (2 * n - u - 1) / 2;
    let v = u + 1 + (index - offset);
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph;

    #[test]
    fn pair_indexing_is_bijective() {
        let n = 10u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = pair_from_index(n, idx);
            assert!(u < v && (v as u64) < n, "({u},{v})");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn gnp_determinism_and_density() {
        let a = gnp(500, 0.02, 7);
        let b = gnp(500, 0.02, 7);
        assert_eq!(a, b);
        let expected = 0.02 * 500.0 * 499.0 / 2.0;
        let m = a.num_edges_undirected() as f64;
        assert!(
            (m - expected).abs() < expected * 0.25,
            "m = {m}, expected ≈ {expected}"
        );
        // Different seeds differ.
        assert_ne!(a, gnp(500, 0.02, 8));
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(100, 0.0, 1).num_edges_undirected(), 0);
        assert_eq!(gnp(20, 1.0, 1).num_edges_undirected(), 190);
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, 1).num_edges_undirected(), 0);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(200, 1000, 3);
        assert_eq!(g.num_edges_undirected(), 1000);
        assert_eq!(gnm(200, 1000, 3), g);
    }

    #[test]
    #[should_panic(expected = "m exceeds")]
    fn gnm_rejects_impossible_m() {
        gnm(3, 10, 0);
    }
}
