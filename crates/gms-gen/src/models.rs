//! Additional random-graph models covering the remaining §4.2 dataset
//! axes: preferential attachment (hub-dominated degree skew with a
//! different tail than RMAT), small-world rewiring (tunable
//! diameter/locality), and bipartite graphs (recommendation-network
//! stand-ins, triangle-free by construction).

use gms_core::{CsrGraph, Edge, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert preferential attachment: starts from a small seed
/// clique, then every new vertex attaches to `m_per_vertex` existing
/// vertices with probability proportional to their current degree.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> CsrGraph {
    assert!(m_per_vertex >= 1);
    assert!(n > m_per_vertex, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * m_per_vertex);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_per_vertex);
    // Seed: a clique on m_per_vertex + 1 vertices.
    for u in 0..=m_per_vertex as NodeId {
        for v in u + 1..=m_per_vertex as NodeId {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m_per_vertex + 1)..n {
        let v = v as NodeId;
        let mut chosen = Vec::with_capacity(m_per_vertex);
        while chosen.len() < m_per_vertex {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if target != v && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &target in &chosen {
            edges.push((v, target));
            endpoints.push(v);
            endpoints.push(target);
        }
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Watts–Strogatz small-world graph: a ring lattice where every vertex
/// connects to its `k/2` nearest neighbors on each side, with each
/// edge rewired to a random endpoint with probability `beta`.
/// `beta = 0` keeps the high-diameter lattice; `beta = 1` approaches
/// an ER graph — the §4.2 diameter axis in one knob.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(k < n, "lattice degree must be below n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k / 2);
    for v in 0..n {
        for offset in 1..=k / 2 {
            let u = v as NodeId;
            let w = ((v + offset) % n) as NodeId;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint uniformly (avoiding self).
                let mut t = rng.gen_range(0..n as NodeId);
                while t == u {
                    t = rng.gen_range(0..n as NodeId);
                }
                edges.push((u, t));
            } else {
                edges.push((u, w));
            }
        }
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Random bipartite graph: `left × right` pairs are edges with
/// probability `p`. Vertices `0..left` form one side. Triangle-free
/// by construction — a recommendation-graph stand-in.
pub fn bipartite(left: usize, right: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for l in 0..left as NodeId {
        for r in 0..right as NodeId {
            if rng.gen::<f64>() < p {
                edges.push((l, left as NodeId + r));
            }
        }
    }
    CsrGraph::from_undirected_edges(left + right, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph as _;

    #[test]
    fn ba_has_hub_skew() {
        let g = barabasi_albert(800, 3, 4);
        let n = g.num_vertices() as f64;
        let avg = 2.0 * g.num_edges_undirected() as f64 / n;
        assert!(
            (5.0..=7.0).contains(&avg),
            "avg degree ≈ 2m_per_vertex, got {avg}"
        );
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "preferential attachment grows hubs: max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn ba_is_connected() {
        let g = barabasi_albert(300, 2, 9);
        assert_eq!(gms_graph::traverse::largest_component_size(&g), 300);
    }

    #[test]
    fn ws_beta_zero_is_a_lattice() {
        let g = watts_strogatz(100, 4, 0.0, 1);
        assert_eq!(g.num_edges_undirected(), 200);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "regular lattice");
        }
        // High diameter at beta = 0.
        assert!(gms_graph::traverse::pseudo_diameter(&g, 0) >= 20);
    }

    #[test]
    fn ws_rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(400, 4, 0.0, 2);
        let small_world = watts_strogatz(400, 4, 0.3, 2);
        let d_lat = gms_graph::traverse::pseudo_diameter(&lattice, 0);
        let d_sw = gms_graph::traverse::pseudo_diameter(&small_world, 0);
        assert!(
            d_sw * 2 < d_lat,
            "rewiring must shorten paths: {d_sw} vs {d_lat}"
        );
    }

    #[test]
    fn bipartite_has_no_triangles_and_no_side_edges() {
        let g = bipartite(40, 60, 0.1, 7);
        for (u, v) in g.edges_undirected() {
            assert!((u < 40) != (v < 40), "edges cross sides only");
        }
        assert_eq!(gms_order::triangle_count(&g), 0);
    }

    #[test]
    fn deterministic_models() {
        assert_eq!(barabasi_albert(200, 2, 5), barabasi_albert(200, 2, 5));
        assert_eq!(
            watts_strogatz(200, 6, 0.2, 5),
            watts_strogatz(200, 6, 0.2, 5)
        );
        assert_eq!(bipartite(30, 30, 0.2, 5), bipartite(30, 30, 0.2, 5));
    }
}
