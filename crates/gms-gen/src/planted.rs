//! Planted-structure generators. §8.6 of the paper shows that graphs
//! with near-identical size/sparsity/degree statistics can differ by
//! three orders of magnitude in higher-order structure (4-clique
//! counts of Livemocha vs Flickr). These generators reproduce that
//! axis deliberately: a sparse background plus planted cliques,
//! clique-stars, or dense-but-non-clique clusters.

use crate::er;
use gms_core::{CsrGraph, Edge, NodeId};

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Configuration for a planted-clique graph.
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Total vertex count.
    pub n: usize,
    /// Background edge probability.
    pub background_p: f64,
    /// Sizes of the planted structures.
    pub sizes: Vec<usize>,
    /// Intra-structure edge probability: `1.0` plants true cliques;
    /// values below 1 plant dense non-clique clusters (the
    /// "Livemocha-like" case).
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Plants dense vertex groups into an ER background. Groups are
/// disjoint, chosen from a random permutation of the vertices.
/// Returns the graph and the planted groups.
pub fn planted_dense_groups(config: &PlantedConfig) -> (CsrGraph, Vec<Vec<NodeId>>) {
    let total: usize = config.sizes.iter().sum();
    assert!(total <= config.n, "planted structures exceed n");
    assert!((0.0..=1.0).contains(&config.density));
    let background = er::gnp(config.n, config.background_p, config.seed);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9E37_79B9));
    let mut vertices: Vec<NodeId> = (0..config.n as NodeId).collect();
    vertices.shuffle(&mut rng);

    let mut edges: Vec<Edge> = background.edges_undirected().collect();
    let mut groups = Vec::with_capacity(config.sizes.len());
    let mut cursor = 0usize;
    for &size in &config.sizes {
        let group: Vec<NodeId> = vertices[cursor..cursor + size].to_vec();
        cursor += size;
        for i in 0..size {
            for j in i + 1..size {
                if config.density >= 1.0 || rng.gen::<f64>() < config.density {
                    edges.push((group[i], group[j]));
                }
            }
        }
        groups.push(group);
    }
    (CsrGraph::from_undirected_edges(config.n, &edges), groups)
}

/// Plants `count` cliques of size `size` into an ER background.
pub fn planted_cliques(
    n: usize,
    background_p: f64,
    count: usize,
    size: usize,
    seed: u64,
) -> (CsrGraph, Vec<Vec<NodeId>>) {
    planted_dense_groups(&PlantedConfig {
        n,
        background_p,
        sizes: vec![size; count],
        density: 1.0,
        seed,
    })
}

/// Plants a `k`-clique-star (§6.6): a `k`-clique whose every member is
/// also adjacent to `extra` shared satellite vertices. Returns the
/// graph, the clique core, and the satellites.
pub fn planted_clique_star(
    n: usize,
    background_p: f64,
    k: usize,
    extra: usize,
    seed: u64,
) -> (CsrGraph, Vec<NodeId>, Vec<NodeId>) {
    assert!(k + extra <= n);
    let background = er::gnp(n, background_p, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut vertices: Vec<NodeId> = (0..n as NodeId).collect();
    vertices.shuffle(&mut rng);
    let core: Vec<NodeId> = vertices[..k].to_vec();
    let satellites: Vec<NodeId> = vertices[k..k + extra].to_vec();
    let mut edges: Vec<Edge> = background.edges_undirected().collect();
    for i in 0..k {
        for j in i + 1..k {
            edges.push((core[i], core[j]));
        }
        for &s in &satellites {
            edges.push((core[i], s));
        }
    }
    (CsrGraph::from_undirected_edges(n, &edges), core, satellites)
}

/// Planted-partition ("stochastic block") graph for clustering and
/// community-detection oracles: `communities` equal-sized groups with
/// intra-probability `p_in` and inter-probability `p_out`. Returns the
/// graph and the ground-truth community of every vertex.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    assert!(communities >= 1 && communities <= n.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment: Vec<u32> = (0..n).map(|v| (v % communities) as u32).collect();
    let mut edges: Vec<Edge> = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            let p = if assignment[u] == assignment[v] {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    (CsrGraph::from_undirected_edges(n, &edges), assignment)
}

/// A 2-D grid ("road-network-like") graph: high diameter, tiny
/// triangle count — the paper's USA-roads stand-in.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
        }
    }
    CsrGraph::from_undirected_edges(rows * cols, &edges)
}

/// The complete graph `K_n` — the clique-count oracle workhorse.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph as _;

    #[test]
    fn planted_cliques_are_cliques() {
        let (g, groups) = planted_cliques(300, 0.01, 3, 8, 42);
        assert_eq!(groups.len(), 3);
        for group in &groups {
            assert_eq!(group.len(), 8);
            for (i, &u) in group.iter().enumerate() {
                for &v in &group[i + 1..] {
                    assert!(g.has_edge(u, v), "planted pair ({u},{v}) missing");
                }
            }
        }
    }

    #[test]
    fn dense_groups_are_not_cliques_below_density_one() {
        let (g, groups) = planted_dense_groups(&PlantedConfig {
            n: 200,
            background_p: 0.0,
            sizes: vec![30],
            density: 0.5,
            seed: 1,
        });
        let group = &groups[0];
        let mut present = 0;
        let mut total = 0;
        for (i, &u) in group.iter().enumerate() {
            for &v in &group[i + 1..] {
                total += 1;
                if g.has_edge(u, v) {
                    present += 1;
                }
            }
        }
        assert!(present < total, "density 0.5 must drop some pairs");
        assert!(present as f64 > total as f64 * 0.25, "...but keep many");
    }

    #[test]
    fn clique_star_structure() {
        let (g, core, satellites) = planted_clique_star(100, 0.0, 4, 3, 7);
        for (i, &u) in core.iter().enumerate() {
            for &v in &core[i + 1..] {
                assert!(g.has_edge(u, v));
            }
            for &s in &satellites {
                assert!(g.has_edge(u, s));
            }
        }
        // Satellites need not connect to each other.
        assert_eq!(core.len(), 4);
        assert_eq!(satellites.len(), 3);
    }

    #[test]
    fn partition_is_denser_inside() {
        let (g, communities) = planted_partition(120, 4, 0.5, 0.02, 11);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges_undirected() {
            if communities[u as usize] == communities[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 2, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges_undirected(), 3 * 5 + 4 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn complete_graph() {
        let g = complete(6);
        assert_eq!(g.num_edges_undirected(), 15);
        assert_eq!(g.max_degree(), 5);
    }
}
