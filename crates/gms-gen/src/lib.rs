//! # gms-gen
//!
//! Synthetic graph generators for GraphMineSuite-rs. The paper's
//! dataset chapter (§4.2) deliberately avoids fixing concrete
//! datasets; it instead characterizes inputs along structural axes —
//! sparsity `m/n`, degree skew, triangle count `T` and `T`-skew,
//! clique density vs cluster density, diameter. These generators
//! produce graphs at controlled points along each axis:
//!
//! * [`er::gnp`]/[`er::gnm`] — uniform random (skew-free);
//! * [`kronecker::kronecker`] — power-law/RMAT (degree skew, hubs);
//! * [`planted::planted_cliques`] & friends — higher-order structure
//!   control (the §8.6 Livemocha-vs-Flickr contrast);
//! * [`planted::planted_partition`] — community ground truth;
//! * [`planted::grid`] — road-network stand-in (high diameter, few
//!   triangles).

#![warn(missing_docs)]

pub mod er;
pub mod kronecker;
pub mod models;
pub mod planted;

pub use er::{gnm, gnp};
pub use kronecker::{kronecker, kronecker_default, RmatParams};
pub use models::{barabasi_albert, bipartite, watts_strogatz};
pub use planted::{
    complete, grid, planted_clique_star, planted_cliques, planted_dense_groups, planted_partition,
    PlantedConfig,
};
