//! Kronecker (RMAT) power-law graphs (§4.2): the paper's prescribed
//! generator for skewed degree distributions, matching the Graph500 /
//! GAPBS generator it integrates with. Edges are sampled by
//! recursively descending a 2×2 probability matrix.

use gms_core::{CsrGraph, Edge, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RMAT parameters. Graph500 uses `a=0.57, b=0.19, c=0.19`.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates a Kronecker graph with `2^scale` vertices and
/// `edge_factor * 2^scale` undirected edge samples (duplicates and
/// self-loops are dropped, as in the Graph500 specification, so the
/// final `m` is slightly lower).
pub fn kronecker(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    assert!(scale <= 30, "scale too large for u32 vertex IDs");
    let n = 1usize << scale;
    let samples = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let d = 1.0 - params.a - params.b - params.c;
    assert!(d >= -1e-9, "quadrant probabilities exceed 1");
    let mut edges: Vec<Edge> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        edges.push((u as NodeId, v as NodeId));
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Convenience wrapper with Graph500 parameters.
pub fn kronecker_default(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    kronecker(scale, edge_factor, RmatParams::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph;

    #[test]
    fn sizes_follow_scale() {
        let g = kronecker_default(8, 8, 1);
        assert_eq!(g.num_vertices(), 256);
        // Up to 2048 samples minus dedup/self-loop losses.
        assert!(g.num_edges_undirected() <= 2048);
        assert!(g.num_edges_undirected() > 1000);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(kronecker_default(7, 4, 9), kronecker_default(7, 4, 9));
        assert_ne!(kronecker_default(7, 4, 9), kronecker_default(7, 4, 10));
    }

    #[test]
    fn skewed_parameters_produce_degree_skew() {
        let skewed = kronecker_default(10, 8, 5);
        let n = skewed.num_vertices();
        let avg = 2.0 * skewed.num_edges_undirected() as f64 / n as f64;
        let max = skewed.max_degree() as f64;
        assert!(
            max > 6.0 * avg,
            "power-law graphs have hubs: max {max}, avg {avg}"
        );
        // A uniform quadrant matrix gives an ER-like (low-skew) graph.
        let uniform = kronecker(
            10,
            8,
            RmatParams {
                a: 0.25,
                b: 0.25,
                c: 0.25,
            },
            5,
        );
        let umax = uniform.max_degree() as f64;
        let uavg = 2.0 * uniform.num_edges_undirected() as f64 / n as f64;
        assert!(
            umax / uavg < max / avg,
            "uniform matrix must be less skewed"
        );
    }

    #[test]
    #[should_panic(expected = "probabilities exceed 1")]
    fn rejects_invalid_probabilities() {
        kronecker(
            4,
            2,
            RmatParams {
                a: 0.7,
                b: 0.3,
                c: 0.2,
            },
            0,
        );
    }
}
