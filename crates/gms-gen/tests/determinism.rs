//! Deterministic-seed smoke tests: every generator must produce an
//! identical graph when called twice with the same seed, and a
//! different one under a different seed. The cross-crate consistency
//! suites at the workspace root compare mining results on generated
//! graphs across runs, so any seed-instability here would surface
//! there as flakes — this file pins the property down at its source.

use gms_core::{CsrGraph, Graph};

/// Degree sequence (sorted ascending): equal sequences plus equal
/// edge sets is the fingerprint we compare between runs.
fn degree_sequence(g: &CsrGraph) -> Vec<usize> {
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    degrees
}

fn assert_identical(a: &CsrGraph, b: &CsrGraph, label: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{label}: vertex count");
    assert_eq!(a.num_arcs(), b.num_arcs(), "{label}: edge count");
    assert_eq!(
        degree_sequence(a),
        degree_sequence(b),
        "{label}: degree sequence"
    );
    // Strongest form: the exact same edge set, not just statistics.
    assert_eq!(a, b, "{label}: edge set");
}

#[test]
fn gnp_is_seed_deterministic() {
    for seed in [0, 1, 42] {
        let a = gms_gen::gnp(300, 0.03, seed);
        let b = gms_gen::gnp(300, 0.03, seed);
        assert_identical(&a, &b, &format!("gnp seed {seed}"));
    }
}

#[test]
fn gnp_seeds_differ() {
    let a = gms_gen::gnp(300, 0.03, 1);
    let b = gms_gen::gnp(300, 0.03, 2);
    assert_ne!(a, b, "different seeds must give different graphs");
}

#[test]
fn gnm_is_seed_deterministic_with_exact_edges() {
    let a = gms_gen::gnm(250, 900, 7);
    let b = gms_gen::gnm(250, 900, 7);
    assert_identical(&a, &b, "gnm seed 7");
    assert_eq!(
        a.num_arcs(),
        2 * 900,
        "gnm places exactly m undirected edges"
    );
}

#[test]
fn kronecker_is_seed_deterministic() {
    for seed in [3, 11] {
        let a = gms_gen::kronecker_default(9, 7, seed);
        let b = gms_gen::kronecker_default(9, 7, seed);
        assert_identical(&a, &b, &format!("kronecker seed {seed}"));
    }
    let c = gms_gen::kronecker_default(9, 7, 3);
    let d = gms_gen::kronecker_default(9, 7, 4);
    assert_ne!(c, d);
}

#[test]
fn planted_cliques_are_seed_deterministic_including_ground_truth() {
    let (graph_a, planted_a) = gms_gen::planted_cliques(400, 0.01, 3, 8, 17);
    let (graph_b, planted_b) = gms_gen::planted_cliques(400, 0.01, 3, 8, 17);
    assert_identical(&graph_a, &graph_b, "planted_cliques seed 17");
    assert_eq!(planted_a, planted_b, "planted ground truth must reproduce");
    assert_eq!(planted_a.len(), 3, "requested number of planted cliques");
    for clique in &planted_a {
        assert_eq!(clique.len(), 8, "requested clique size");
    }
}

#[test]
fn planted_partition_is_seed_deterministic_including_ground_truth() {
    let (graph_a, truth_a) = gms_gen::planted_partition(120, 3, 0.4, 0.02, 23);
    let (graph_b, truth_b) = gms_gen::planted_partition(120, 3, 0.4, 0.02, 23);
    assert_identical(&graph_a, &graph_b, "planted_partition seed 23");
    assert_eq!(truth_a, truth_b, "community labels must reproduce");
}

#[test]
fn structured_generators_are_input_deterministic() {
    // grid and complete take no seed; identical inputs must still
    // yield identical graphs (no hidden global state).
    assert_identical(&gms_gen::grid(9, 13), &gms_gen::grid(9, 13), "grid");
    assert_identical(&gms_gen::complete(25), &gms_gen::complete(25), "complete");
}
