//! Vertex similarity measures (§6.5, Table 4): the seven measures the
//! paper prescribes, all built on neighborhood set algebra — common
//! neighbors `|N(u) ∩ N(v)|` is the shared kernel, computed with
//! either merge or galloping intersection (⑤⁺, chosen inside the
//! [`gms_core::SortedVecSet`] implementation by operand sizes).

use gms_core::{NodeId, Set, SetGraph, SetNeighborhoods};

/// The vertex-similarity measures of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`
    Jaccard,
    /// `|N(u) ∩ N(v)| / min(|N(u)|, |N(v)|)`
    Overlap,
    /// `Σ_{w ∈ N(u) ∩ N(v)} 1 / log |N(w)|`
    AdamicAdar,
    /// `Σ_{w ∈ N(u) ∩ N(v)} 1 / |N(w)|`
    ResourceAllocation,
    /// `|N(u) ∩ N(v)|`
    CommonNeighbors,
    /// `|N(u) ∪ N(v)|`
    TotalNeighbors,
    /// `|N(u)| · |N(v)|`
    PreferentialAttachment,
}

impl SimilarityMeasure {
    /// All measures in Table 4 order.
    pub const ALL: [SimilarityMeasure; 7] = [
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::Overlap,
        SimilarityMeasure::AdamicAdar,
        SimilarityMeasure::ResourceAllocation,
        SimilarityMeasure::CommonNeighbors,
        SimilarityMeasure::TotalNeighbors,
        SimilarityMeasure::PreferentialAttachment,
    ];

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            SimilarityMeasure::Jaccard => "Jaccard",
            SimilarityMeasure::Overlap => "Overlap",
            SimilarityMeasure::AdamicAdar => "AdamicAdar",
            SimilarityMeasure::ResourceAllocation => "ResourceAllocation",
            SimilarityMeasure::CommonNeighbors => "CommonNeighbors",
            SimilarityMeasure::TotalNeighbors => "TotalNeighbors",
            SimilarityMeasure::PreferentialAttachment => "PreferentialAttachment",
        }
    }
}

/// Computes `measure(u, v)` on a set-centric graph.
pub fn similarity<G: SetNeighborhoods>(
    graph: &G,
    measure: SimilarityMeasure,
    u: NodeId,
    v: NodeId,
) -> f64 {
    let nu = graph.neighborhood(u);
    let nv = graph.neighborhood(v);
    let du = nu.cardinality() as f64;
    let dv = nv.cardinality() as f64;
    match measure {
        SimilarityMeasure::Jaccard => {
            let common = nu.intersect_count(nv) as f64;
            let union = du + dv - common;
            if union == 0.0 {
                0.0
            } else {
                common / union
            }
        }
        SimilarityMeasure::Overlap => {
            let common = nu.intersect_count(nv) as f64;
            let denom = du.min(dv);
            if denom == 0.0 {
                0.0
            } else {
                common / denom
            }
        }
        SimilarityMeasure::AdamicAdar => nu
            .intersect(nv)
            .iter()
            .map(|w| {
                let dw = graph.degree(w) as f64;
                if dw > 1.0 {
                    1.0 / dw.ln()
                } else {
                    0.0
                }
            })
            .sum(),
        SimilarityMeasure::ResourceAllocation => nu
            .intersect(nv)
            .iter()
            .map(|w| {
                let dw = graph.degree(w) as f64;
                if dw > 0.0 {
                    1.0 / dw
                } else {
                    0.0
                }
            })
            .sum(),
        SimilarityMeasure::CommonNeighbors => nu.intersect_count(nv) as f64,
        SimilarityMeasure::TotalNeighbors => nu.union_count(nv) as f64,
        SimilarityMeasure::PreferentialAttachment => du * dv,
    }
}

/// Computes a measure for every given vertex pair in parallel; returns
/// the scores aligned with `pairs`. This is the bulk entry point whose
/// rate defines the paper's "vertex pairs with similarity derived per
/// second" algorithmic throughput.
pub fn similarity_batch<G: SetNeighborhoods>(
    graph: &G,
    measure: SimilarityMeasure,
    pairs: &[(NodeId, NodeId)],
) -> Vec<f64> {
    use rayon::prelude::*;
    pairs
        .par_iter()
        .map(|&(u, v)| similarity(graph, measure, u, v))
        .collect()
}

/// Convenience: builds a sorted-set graph and scores all pairs.
pub fn similarity_batch_csr(
    graph: &gms_core::CsrGraph,
    measure: SimilarityMeasure,
    pairs: &[(NodeId, NodeId)],
) -> Vec<f64> {
    let sg: SetGraph<gms_core::SortedVecSet> = SetGraph::from_csr(graph);
    similarity_batch(&sg, measure, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::{CsrGraph, SortedVecSet};

    fn sample() -> SetGraph<SortedVecSet> {
        // 0 and 1 share neighbors {2, 3}; 0 also sees 4; 1 also sees 5.
        let csr =
            CsrGraph::from_undirected_edges(6, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 5)]);
        SetGraph::from_csr(&csr)
    }

    #[test]
    fn jaccard_and_overlap() {
        let g = sample();
        // N(0) = {2,3,4}, N(1) = {2,3,5}: common 2, union 4.
        assert_eq!(similarity(&g, SimilarityMeasure::Jaccard, 0, 1), 0.5);
        assert_eq!(similarity(&g, SimilarityMeasure::Overlap, 0, 1), 2.0 / 3.0);
        assert_eq!(
            similarity(&g, SimilarityMeasure::CommonNeighbors, 0, 1),
            2.0
        );
        assert_eq!(similarity(&g, SimilarityMeasure::TotalNeighbors, 0, 1), 4.0);
        assert_eq!(
            similarity(&g, SimilarityMeasure::PreferentialAttachment, 0, 1),
            9.0
        );
    }

    #[test]
    fn degree_weighted_measures() {
        let g = sample();
        // Common neighbors 2 and 3 both have degree 2.
        let aa = similarity(&g, SimilarityMeasure::AdamicAdar, 0, 1);
        assert!((aa - 2.0 / 2f64.ln()).abs() < 1e-12);
        let ra = similarity(&g, SimilarityMeasure::ResourceAllocation, 0, 1);
        assert!((ra - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_pairs_are_zero() {
        let csr = CsrGraph::from_undirected_edges(3, &[(0, 1)]);
        let g: SetGraph<SortedVecSet> = SetGraph::from_csr(&csr);
        // Vertex 2 is isolated.
        assert_eq!(similarity(&g, SimilarityMeasure::Jaccard, 0, 2), 0.0);
        assert_eq!(similarity(&g, SimilarityMeasure::Overlap, 0, 2), 0.0);
        assert_eq!(similarity(&g, SimilarityMeasure::AdamicAdar, 0, 2), 0.0);
    }

    #[test]
    fn batch_matches_single() {
        let g = sample();
        let pairs = [(0u32, 1u32), (2, 3), (4, 5)];
        for measure in SimilarityMeasure::ALL {
            let batch = similarity_batch(&g, measure, &pairs);
            for (i, &(u, v)) in pairs.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    similarity(&g, measure, u, v),
                    "{}",
                    measure.label()
                );
            }
        }
    }

    #[test]
    fn symmetry() {
        let g = sample();
        for measure in SimilarityMeasure::ALL {
            for &(u, v) in &[(0u32, 1u32), (2, 5), (0, 4)] {
                assert_eq!(
                    similarity(&g, measure, u, v),
                    similarity(&g, measure, v, u),
                    "{}",
                    measure.label()
                );
            }
        }
    }
}
