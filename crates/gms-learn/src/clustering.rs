//! Jarvis–Patrick clustering (§4.1.2, Table 4): the paper's example of
//! overlapping, single-level clustering built directly on vertex
//! similarity. Two adjacent vertices land in the same cluster when
//! each lists the other among its `k` most similar neighbors and the
//! two shared-neighbor lists overlap enough — all of it set algebra.

use crate::similarity::{similarity, SimilarityMeasure};
use gms_core::{CsrGraph, Graph, NodeId, Set, SetGraph, SortedVecSet};
use rayon::prelude::*;

/// Jarvis–Patrick parameters.
#[derive(Clone, Copy, Debug)]
pub struct JarvisPatrickConfig {
    /// Size of each vertex's nearest-neighbor list.
    pub k: usize,
    /// Minimum shared near-neighbors for two vertices to merge.
    pub min_shared: usize,
    /// Similarity measure ranking the neighbor lists.
    pub measure: SimilarityMeasure,
}

impl Default for JarvisPatrickConfig {
    fn default() -> Self {
        Self {
            k: 6,
            min_shared: 2,
            measure: SimilarityMeasure::Jaccard,
        }
    }
}

/// Clusters the graph; returns a cluster ID per vertex (clusters are
/// the connected components of the JP merge graph).
pub fn jarvis_patrick(graph: &CsrGraph, config: &JarvisPatrickConfig) -> Vec<u32> {
    let n = graph.num_vertices();
    let sg: SetGraph<SortedVecSet> = SetGraph::from_csr(graph);

    // k-nearest-neighbor lists by similarity (ties by vertex ID for
    // determinism), stored as sorted sets for O(log)-membership and
    // fast intersection.
    let knn: Vec<SortedVecSet> = (0..n as NodeId)
        .into_par_iter()
        .map(|u| {
            let mut scored: Vec<(f64, NodeId)> = graph
                .neighbors_slice(u)
                .iter()
                .map(|&v| (similarity(&sg, config.measure, u, v), v))
                .collect();
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            });
            scored.truncate(config.k);
            scored.into_iter().map(|(_, v)| v).collect()
        })
        .collect();

    // Union-find over merge edges.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    for (u, v) in graph.edges_undirected() {
        let mutual = knn[u as usize].contains(v) && knn[v as usize].contains(u);
        if !mutual {
            continue;
        }
        let shared = knn[u as usize].intersect_count(&knn[v as usize]);
        if shared >= config.min_shared {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }

    // Canonicalize cluster IDs to 0..c.
    let mut id_of_root = std::collections::HashMap::new();
    let mut assignment = vec![0u32; n];
    for v in 0..n as u32 {
        let root = find(&mut parent, v);
        let next_id = id_of_root.len() as u32;
        let id = *id_of_root.entry(root).or_insert(next_id);
        assignment[v as usize] = id;
    }
    assignment
}

/// Number of distinct clusters in an assignment.
pub fn num_clusters(assignment: &[u32]) -> usize {
    let unique: std::collections::HashSet<u32> = assignment.iter().copied().collect();
    unique.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cliques_make_two_clusters() {
        // Two K5s joined by a single bridge edge.
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5)); // bridge
        let g = CsrGraph::from_undirected_edges(10, &edges);
        let clusters = jarvis_patrick(
            &g,
            &JarvisPatrickConfig {
                k: 4,
                min_shared: 2,
                measure: SimilarityMeasure::Jaccard,
            },
        );
        // Both cliques are internally merged...
        for group in [0..5u32, 5..10u32] {
            let ids: std::collections::HashSet<u32> = group.map(|v| clusters[v as usize]).collect();
            assert_eq!(ids.len(), 1, "clique not merged: {clusters:?}");
        }
        // ...and the bridge does not join them (no shared neighbors).
        assert_ne!(clusters[0], clusters[9]);
    }

    #[test]
    fn partition_graph_recovers_blocks() {
        let (g, truth) = gms_gen::planted_partition(80, 4, 0.8, 0.01, 6);
        // Communities of 20 with p_in = 0.8 give ~15 intra-neighbors;
        // the k-NN list must be wide enough to keep them mutual.
        let clusters = jarvis_patrick(
            &g,
            &JarvisPatrickConfig {
                k: 12,
                min_shared: 2,
                measure: SimilarityMeasure::Jaccard,
            },
        );
        // Most same-community pairs must share a cluster; most
        // cross-community pairs must not.
        let mut same_ok = 0usize;
        let mut same_total = 0usize;
        let mut cross_ok = 0usize;
        let mut cross_total = 0usize;
        for u in 0..80usize {
            for v in u + 1..80 {
                if truth[u] == truth[v] {
                    same_total += 1;
                    same_ok += usize::from(clusters[u] == clusters[v]);
                } else {
                    cross_total += 1;
                    cross_ok += usize::from(clusters[u] != clusters[v]);
                }
            }
        }
        assert!(
            same_ok as f64 / same_total as f64 > 0.7,
            "intra {same_ok}/{same_total}"
        );
        assert!(
            cross_ok as f64 / cross_total as f64 > 0.9,
            "inter {cross_ok}/{cross_total}"
        );
    }

    #[test]
    fn deterministic() {
        let g = gms_gen::gnp(60, 0.1, 8);
        let a = jarvis_patrick(&g, &JarvisPatrickConfig::default());
        let b = jarvis_patrick(&g, &JarvisPatrickConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1)]);
        let clusters = jarvis_patrick(&g, &JarvisPatrickConfig::default());
        // 0-1 are mutual nearest neighbors but share no third vertex,
        // so nothing merges: four singleton clusters.
        assert_eq!(num_clusters(&clusters), 4);
        assert_ne!(clusters[2], clusters[3]);
    }
}
