//! The two explicit ∩ routines of §6.5: *merge* (simultaneous scan,
//! O(|A| + |B|)) and *galloping* (per-element binary search,
//! O(|A| log |B|)). [`gms_core::SortedVecSet`] picks between them
//! adaptively; this module exposes both directly so the similarity
//! kernels can be pinned to either — the fine-tuning knob the paper
//! describes — and so the crossover can be measured.

use gms_core::NodeId;

/// Merge-scan common-neighbor count over sorted slices.
pub fn common_neighbors_merge(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Galloping common-neighbor count: binary-search each element of the
/// smaller slice in the larger one.
pub fn common_neighbors_galloping(a: &[NodeId], b: &[NodeId]) -> usize {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0;
    let mut from = 0usize;
    for &x in small {
        let pos = from + big[from..].partition_point(|&y| y < x);
        if pos < big.len() && big[pos] == x {
            count += 1;
            from = pos + 1;
        } else {
            from = pos;
        }
        if from >= big.len() {
            break;
        }
    }
    count
}

/// Which routine a size-adaptive policy would pick (the heuristic
/// inside `SortedVecSet`): galloping when one side is ≥16× larger.
pub fn adaptive_choice(len_a: usize, len_b: usize) -> &'static str {
    let (small, big) = (len_a.min(len_b), len_a.max(len_b));
    if small > 0 && big / small >= 16 {
        "galloping"
    } else {
        "merge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routines_agree_on_fixed_cases() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![1, 2, 3], vec![]),
            (vec![1, 3, 5, 7], vec![2, 3, 4, 7]),
            ((0..100).collect(), (50..150).collect()),
            (vec![5], (0..10_000).collect()),
        ];
        for (a, b) in cases {
            assert_eq!(
                common_neighbors_merge(&a, &b),
                common_neighbors_galloping(&a, &b),
                "{a:?} ∩ {b:?}"
            );
        }
    }

    #[test]
    fn routines_agree_on_random_neighborhoods() {
        use gms_core::Graph as _;
        let g = gms_gen::kronecker_default(9, 8, 11);
        for u in (0..g.num_vertices() as u32).step_by(17) {
            for v in (1..g.num_vertices() as u32).step_by(23) {
                let a = g.neighbors_slice(u);
                let b = g.neighbors_slice(v);
                assert_eq!(
                    common_neighbors_merge(a, b),
                    common_neighbors_galloping(a, b)
                );
            }
        }
    }

    #[test]
    fn adaptive_policy_switches_at_the_ratio() {
        assert_eq!(adaptive_choice(100, 110), "merge");
        assert_eq!(adaptive_choice(10, 100), "merge");
        assert_eq!(adaptive_choice(10, 160), "galloping");
        assert_eq!(adaptive_choice(160, 10), "galloping");
        assert_eq!(adaptive_choice(0, 100), "merge");
    }

    #[test]
    fn counts_match_set_interface() {
        use gms_core::{Set, SortedVecSet};
        let a: Vec<u32> = (0..500).step_by(3).collect();
        let b: Vec<u32> = (0..500).step_by(5).collect();
        let sa = SortedVecSet::from_sorted(&a);
        let sb = SortedVecSet::from_sorted(&b);
        assert_eq!(common_neighbors_merge(&a, &b), sa.intersect_count(&sb));
        assert_eq!(common_neighbors_galloping(&a, &b), sa.intersect_count(&sb));
    }
}
