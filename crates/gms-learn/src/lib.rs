//! # gms-learn
//!
//! Graph learning problems of the GMS specification (§4.1.2):
//!
//! * [`mod@similarity`] — the seven vertex-similarity measures of Table 4
//!   (Jaccard, Overlap, Adamic-Adar, Resource Allocation, Common /
//!   Total Neighbors, Preferential Attachment), all expressed over
//!   neighborhood set intersections (⑤⁺);
//! * [`linkpred`] — similarity-based link prediction and the §6.7
//!   accuracy protocol (`eff = |E_predict ∩ E_rndm|`);
//! * [`clustering`] — Jarvis–Patrick clustering on top of any
//!   similarity measure;
//! * [`community`] — Label Propagation and the Louvain method, with
//!   modularity and Rand-index utilities.

#![warn(missing_docs)]

pub mod clustering;
pub mod community;
pub mod intersect_routines;
pub mod linkpred;
pub mod similarity;

pub use clustering::{jarvis_patrick, num_clusters, JarvisPatrickConfig};
pub use community::{label_propagation, louvain, modularity, rand_index};
pub use intersect_routines::{adaptive_choice, common_neighbors_galloping, common_neighbors_merge};
pub use linkpred::{
    evaluate_accuracy, score_candidates, split_edges, LinkPredictionSplit, ScoredPair,
};
pub use similarity::{similarity, similarity_batch, similarity_batch_csr, SimilarityMeasure};
