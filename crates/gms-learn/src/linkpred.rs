//! Link prediction and its accuracy protocol (§6.7).
//!
//! The paper's evaluation scheme: remove a random subset `E_rndm` of
//! edges from `E` (leaving `E_sparse`), score non-edges of the sparse
//! graph with a similarity measure, and report the effectiveness
//! `eff = |E_predict ∩ E_rndm|` where `E_predict` holds the
//! `|E_rndm|` highest-scored candidate pairs.

use crate::similarity::{similarity, SimilarityMeasure};
use gms_core::{CsrGraph, Edge, Graph, NodeId, SetGraph, SortedVecSet};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use rayon::prelude::*;

/// The sparse graph plus the held-out edges to predict.
#[derive(Clone, Debug)]
pub struct LinkPredictionSplit {
    /// `E_sparse = E \ E_rndm`.
    pub sparse: CsrGraph,
    /// The removed edges `E_rndm` (normalized `u < v`).
    pub held_out: Vec<Edge>,
}

/// Removes `fraction` of the edges uniformly at random (§6.7 setup).
pub fn split_edges(graph: &CsrGraph, fraction: f64, seed: u64) -> LinkPredictionSplit {
    assert!((0.0..1.0).contains(&fraction));
    let mut edges: Vec<Edge> = graph.edges_undirected().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    let k = (edges.len() as f64 * fraction).round() as usize;
    let held_out: Vec<Edge> = edges[..k].to_vec();
    let remaining = &edges[k..];
    LinkPredictionSplit {
        sparse: CsrGraph::from_undirected_edges(graph.num_vertices(), remaining),
        held_out,
    }
}

/// A scored candidate link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredPair {
    /// The candidate pair (`u < v`).
    pub pair: Edge,
    /// Similarity score under the chosen measure.
    pub score: f64,
}

/// Scores every non-adjacent vertex pair with ≥1 common neighbor.
/// (Pairs with no common neighbors score 0 under all
/// neighborhood-based measures, so enumerating 2-hop pairs is exact
/// for them while avoiding the full `V × V` sweep.)
pub fn score_candidates(graph: &CsrGraph, measure: SimilarityMeasure) -> Vec<ScoredPair> {
    let sg: SetGraph<SortedVecSet> = SetGraph::from_csr(graph);
    let n = graph.num_vertices();
    let mut candidates: Vec<Edge> = (0..n as NodeId)
        .into_par_iter()
        .flat_map_iter(|u| {
            // 2-hop neighbors greater than u, not adjacent to u.
            let mut twohop: Vec<NodeId> = graph
                .neighbors_slice(u)
                .iter()
                .flat_map(|&w| graph.neighbors_slice(w).iter().copied())
                .filter(|&v| v > u && !graph.has_edge(u, v))
                .collect();
            twohop.sort_unstable();
            twohop.dedup();
            twohop.into_iter().map(move |v| (u, v)).collect::<Vec<_>>()
        })
        .collect();
    candidates.par_sort_unstable();
    candidates
        .into_par_iter()
        .map(|(u, v)| ScoredPair {
            pair: (u, v),
            score: similarity(&sg, measure, u, v),
        })
        .collect()
}

/// Runs the full §6.7 protocol and returns
/// `(eff, |E_rndm|)`: how many held-out edges appear among the
/// top-`|E_rndm|` predictions.
pub fn evaluate_accuracy(
    graph: &CsrGraph,
    measure: SimilarityMeasure,
    fraction: f64,
    seed: u64,
) -> (usize, usize) {
    let split = split_edges(graph, fraction, seed);
    let mut scored = score_candidates(&split.sparse, measure);
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pair.cmp(&b.pair))
    });
    let k = split.held_out.len();
    let predicted: std::collections::HashSet<Edge> =
        scored.iter().take(k).map(|s| s.pair).collect();
    let hits = split
        .held_out
        .iter()
        .filter(|e| predicted.contains(*e))
        .count();
    (hits, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_edge_partition() {
        let g = gms_gen::gnp(100, 0.08, 3);
        let m = g.num_edges_undirected();
        let split = split_edges(&g, 0.2, 7);
        assert_eq!(
            split.sparse.num_edges_undirected() + split.held_out.len(),
            m
        );
        // E_sparse ∩ E_rndm = ∅.
        for &(u, v) in &split.held_out {
            assert!(!split.sparse.has_edge(u, v));
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn candidates_exclude_existing_edges() {
        let g = gms_gen::gnp(60, 0.1, 1);
        let scored = score_candidates(&g, SimilarityMeasure::CommonNeighbors);
        for s in &scored {
            let (u, v) = s.pair;
            assert!(u < v);
            assert!(!g.has_edge(u, v));
            assert!(s.score >= 1.0, "2-hop candidates share a neighbor");
        }
    }

    #[test]
    fn prediction_beats_random_on_clustered_graph() {
        // Near-complete planted blocks: after removing 10% of the
        // edges, held-out pairs are a large share of the high-scoring
        // intra-community non-edges, so common-neighbor prediction
        // recovers far more of them than the cross-community chance
        // level (~1% of candidates).
        let (g, _) = gms_gen::planted_partition(120, 4, 0.9, 0.005, 5);
        let (hits, k) = evaluate_accuracy(&g, SimilarityMeasure::CommonNeighbors, 0.1, 2);
        assert!(k > 0);
        let rate = hits as f64 / k as f64;
        assert!(rate > 0.25, "hit rate {rate} too close to chance");
    }

    #[test]
    fn deterministic_split() {
        let g = gms_gen::gnp(50, 0.1, 9);
        let a = split_edges(&g, 0.25, 11);
        let b = split_edges(&g, 0.25, 11);
        assert_eq!(a.held_out, b.held_out);
    }

    #[test]
    fn measures_rank_differently_but_all_run() {
        let g = gms_gen::gnp(40, 0.15, 4);
        for measure in SimilarityMeasure::ALL {
            let (hits, k) = evaluate_accuracy(&g, measure, 0.2, 3);
            assert!(hits <= k, "{}", measure.label());
        }
    }
}
