//! Community detection (§4.1.2, Table 4): Label Propagation
//! (convergence-based) and the Louvain method (modularity-based) —
//! the paper's two examples of non-overlapping community schemes.

use gms_core::hash::FxHashMap;
use gms_core::{CsrGraph, Graph, NodeId};

/// Label Propagation (Raghavan et al.): every vertex repeatedly adopts
/// the most frequent label among its neighbors (ties to the smallest
/// label for determinism), asynchronously in vertex order, until a
/// fixed point or `max_iters`. Returns canonical community IDs.
pub fn label_propagation(graph: &CsrGraph, max_iters: usize) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut histogram: FxHashMap<u32, usize> = FxHashMap::default();
    for _ in 0..max_iters {
        let mut changed = false;
        for v in 0..n as NodeId {
            histogram.clear();
            for w in graph.neighbors(v) {
                *histogram.entry(labels[w as usize]).or_insert(0) += 1;
            }
            if histogram.is_empty() {
                continue;
            }
            let best = histogram
                .iter()
                .map(|(&label, &count)| (count, std::cmp::Reverse(label)))
                .max()
                .map(|(_, std::cmp::Reverse(label))| label)
                .expect("non-empty histogram");
            if best != labels[v as usize] {
                labels[v as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    canonicalize(&labels)
}

/// Modularity of a community assignment (resolution 1):
/// `Q = Σ_c (e_c / m - (deg_c / 2m)²)` with `e_c` intra-community
/// edges and `deg_c` the community degree sum.
pub fn modularity(graph: &CsrGraph, communities: &[u32]) -> f64 {
    let m = graph.num_edges_undirected() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut intra: FxHashMap<u32, f64> = FxHashMap::default();
    let mut degree: FxHashMap<u32, f64> = FxHashMap::default();
    for v in graph.vertices() {
        *degree.entry(communities[v as usize]).or_insert(0.0) += graph.degree(v) as f64;
    }
    for (u, v) in graph.edges_undirected() {
        if communities[u as usize] == communities[v as usize] {
            *intra.entry(communities[u as usize]).or_insert(0.0) += 1.0;
        }
    }
    degree
        .iter()
        .map(|(c, &deg_c)| {
            let e_c = intra.get(c).copied().unwrap_or(0.0);
            e_c / m - (deg_c / (2.0 * m)).powi(2)
        })
        .sum()
}

/// The Louvain method (Blondel et al.): greedy local moving to the
/// neighboring community with maximal modularity gain, followed by
/// graph aggregation, repeated until modularity stops improving.
pub fn louvain(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.num_vertices();
    // `membership[v]` tracks v's community in the ORIGINAL graph.
    let mut membership: Vec<u32> = (0..n as u32).collect();
    let mut level_graph = graph.clone();
    // Edge weights of the (aggregated) level graph; parallel edges
    // collapse into weights, self-loops hold intra-community mass.
    let mut weights: FxHashMap<(NodeId, NodeId), f64> =
        level_graph.arcs().map(|(u, v)| ((u, v), 1.0)).collect();
    let mut self_loops: FxHashMap<NodeId, f64> = FxHashMap::default();

    loop {
        let ln = level_graph.num_vertices();
        let two_m: f64 = weights.values().sum::<f64>() + 2.0 * self_loops.values().sum::<f64>();
        if two_m == 0.0 {
            break;
        }
        // Local moving phase on the level graph.
        let mut community: Vec<u32> = (0..ln as u32).collect();
        let mut community_degree: Vec<f64> = (0..ln as NodeId)
            .map(|v| {
                level_graph
                    .neighbors(v)
                    .map(|w| weights[&(v, w)])
                    .sum::<f64>()
                    + 2.0 * self_loops.get(&v).copied().unwrap_or(0.0)
            })
            .collect();
        let vertex_degree = community_degree.clone();

        let mut improved_any = false;
        loop {
            let mut moved = false;
            for v in 0..ln as NodeId {
                let current = community[v as usize];
                // Weight from v to each neighboring community.
                let mut to_community: FxHashMap<u32, f64> = FxHashMap::default();
                for w in level_graph.neighbors(v) {
                    let c = community[w as usize];
                    *to_community.entry(c).or_insert(0.0) += weights[&(v, w)];
                }
                // Detach v.
                community_degree[current as usize] -= vertex_degree[v as usize];
                let k_v = vertex_degree[v as usize];
                let base = to_community.get(&current).copied().unwrap_or(0.0);
                let mut best = (current, 0.0f64);
                let mut candidates: Vec<(u32, f64)> = to_community.into_iter().collect();
                candidates.sort_unstable_by_key(|&(c, _)| c);
                for (c, w_vc) in candidates {
                    let gain = (w_vc - base)
                        - k_v * (community_degree[c as usize] - community_degree[current as usize])
                            / two_m;
                    if gain > best.1 + 1e-12 {
                        best = (c, gain);
                    }
                }
                community_degree[best.0 as usize] += k_v;
                if best.0 != current {
                    community[v as usize] = best.0;
                    moved = true;
                    improved_any = true;
                }
            }
            if !moved {
                break;
            }
        }
        if !improved_any {
            break;
        }

        // Propagate to original-vertex membership.
        for entry in membership.iter_mut() {
            *entry = community[*entry as usize];
        }
        // Aggregate: one vertex per community.
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        for &c in community.iter() {
            let next = remap.len() as u32;
            remap.entry(c).or_insert(next);
        }
        for entry in membership.iter_mut() {
            *entry = remap[entry];
        }
        let new_n = remap.len();
        if new_n == ln {
            break; // no compression: converged
        }
        let mut new_weights: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();
        let mut new_self: FxHashMap<NodeId, f64> = FxHashMap::default();
        for ((u, v), w) in &weights {
            let cu = remap[&community[*u as usize]];
            let cv = remap[&community[*v as usize]];
            if cu == cv {
                // Each undirected intra-edge appears as two arcs.
                *new_self.entry(cu).or_insert(0.0) += w / 2.0;
            } else {
                *new_weights.entry((cu, cv)).or_insert(0.0) += w;
            }
        }
        for (v, w) in &self_loops {
            let c = remap[&community[*v as usize]];
            *new_self.entry(c).or_insert(0.0) += w;
        }
        let mut arcs: Vec<(NodeId, NodeId)> = new_weights.keys().copied().collect();
        arcs.sort_unstable();
        level_graph = CsrGraph::from_arcs(new_n, &arcs);
        weights = new_weights;
        self_loops = new_self;
    }
    canonicalize(&membership)
}

/// Renumbers labels to a dense `0..c` range (stable in first-seen
/// order).
fn canonicalize(labels: &[u32]) -> Vec<u32> {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    labels
        .iter()
        .map(|&l| {
            let next = remap.len() as u32;
            *remap.entry(l).or_insert(next)
        })
        .collect()
}

/// Agreement between a detected assignment and ground truth as the
/// fraction of vertex pairs classified consistently (pair-counting
/// Rand index).
pub fn rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total += 1;
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            agree += usize::from(same_a == same_b);
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_bridge() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in i + 1..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((5, 6));
        CsrGraph::from_undirected_edges(12, &edges)
    }

    #[test]
    fn label_propagation_splits_cliques() {
        let g = two_cliques_bridge();
        let labels = label_propagation(&g, 50);
        // Each clique is uniform.
        assert!((0..6).all(|v| labels[v] == labels[0]));
        assert!((6..12).all(|v| labels[v] == labels[6]));
    }

    #[test]
    fn louvain_splits_cliques_and_improves_modularity() {
        let g = two_cliques_bridge();
        let communities = louvain(&g);
        assert!((0..6).all(|v| communities[v] == communities[0]));
        assert!((6..12).all(|v| communities[v] == communities[6]));
        assert_ne!(communities[0], communities[6]);
        let trivial: Vec<u32> = vec![0; 12];
        assert!(modularity(&g, &communities) > modularity(&g, &trivial));
    }

    #[test]
    fn modularity_of_known_partition() {
        // Two disjoint edges, each its own community:
        // Q = Σ (1/2 - (2/4)²) = 2 * (0.5 - 0.25) = 0.5.
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (2, 3)]);
        let q = modularity(&g, &[0, 0, 1, 1]);
        assert!((q - 0.5).abs() < 1e-12);
        // Everything in one community: Q = 1 - 1 = 0.
        assert!(modularity(&g, &[0, 0, 0, 0]).abs() < 1e-12);
    }

    #[test]
    fn louvain_recovers_planted_partition() {
        let (g, truth) = gms_gen::planted_partition(100, 4, 0.5, 0.01, 8);
        let detected = louvain(&g);
        assert!(
            rand_index(&detected, &truth) > 0.9,
            "rand index {}",
            rand_index(&detected, &truth)
        );
    }

    #[test]
    fn label_propagation_recovers_planted_partition() {
        let (g, truth) = gms_gen::planted_partition(90, 3, 0.6, 0.005, 2);
        let detected = label_propagation(&g, 100);
        assert!(
            rand_index(&detected, &truth) > 0.85,
            "rand index {}",
            rand_index(&detected, &truth)
        );
    }

    #[test]
    fn rand_index_extremes() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
        assert!(rand_index(&[0, 1, 0, 1], &[0, 0, 1, 1]) < 0.5);
        assert_eq!(rand_index(&[0], &[3]), 1.0);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = CsrGraph::from_undirected_edges(3, &[]);
        assert_eq!(label_propagation(&g, 10), vec![0, 1, 2]);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
        let communities = louvain(&g);
        assert_eq!(communities.len(), 3);
    }
}
