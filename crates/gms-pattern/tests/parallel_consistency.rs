//! Scheduler-facing determinism suite: the work-stealing execution of
//! the mining kernels must be *semantically invisible*. Parallel runs
//! (multi-worker pool, join-split subtrees, edge-parallel recursive
//! split) must produce exactly the results of the sequential kernels
//! on the same inputs, for any interleaving the scheduler happens to
//! pick — which is exercised here on 20 seeded graphs per kernel.

use gms_core::DenseBitSet;
use gms_order::OrderingKind;
use gms_pattern::bk::SubgraphMode;
use gms_pattern::{bron_kerbosch, k_clique_count, BkConfig, KcConfig, KcParallel};

/// 20 deterministic graphs of varying size/density (seeded ER).
fn seeded_graphs() -> Vec<gms_core::CsrGraph> {
    (0..20u64)
        .map(|seed| {
            let n = 30 + (seed as usize % 5) * 10;
            let p = 0.15 + (seed % 3) as f64 * 0.08;
            gms_gen::gnp(n, p, seed)
        })
        .collect()
}

fn sequential_bk(graph: &gms_core::CsrGraph) -> (u64, Option<Vec<Vec<u32>>>) {
    // par_depth 0 + width-1 pool: the byte-identical sequential path.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let config = BkConfig {
        ordering: OrderingKind::Degeneracy,
        subgraph: SubgraphMode::None,
        collect: true,
        par_depth: 0,
    };
    let outcome = pool.install(|| bron_kerbosch::<DenseBitSet>(graph, &config));
    (outcome.clique_count, outcome.cliques)
}

#[test]
fn parallel_bk_matches_sequential_on_20_seeded_graphs() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    for (i, graph) in seeded_graphs().iter().enumerate() {
        let (seq_count, seq_cliques) = sequential_bk(graph);
        let config = BkConfig {
            ordering: OrderingKind::Degeneracy,
            subgraph: SubgraphMode::None,
            collect: true,
            par_depth: 3,
        };
        let outcome = pool.install(|| bron_kerbosch::<DenseBitSet>(graph, &config));
        assert_eq!(outcome.clique_count, seq_count, "graph {i}: clique count");
        assert_eq!(outcome.cliques, seq_cliques, "graph {i}: clique lists");
    }
}

#[test]
fn parallel_bk_subtree_depths_all_agree() {
    // The split point between join-task levels and the sequential
    // scratch-reusing kernel must not matter.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let graph = gms_gen::gnp(60, 0.25, 42);
    let (seq_count, _) = sequential_bk(&graph);
    for par_depth in [1, 2, 5, 16] {
        let config = BkConfig {
            ordering: OrderingKind::Degeneracy,
            subgraph: SubgraphMode::None,
            collect: false,
            par_depth,
        };
        let outcome = pool.install(|| bron_kerbosch::<DenseBitSet>(&graph, &config));
        assert_eq!(outcome.clique_count, seq_count, "par_depth {par_depth}");
    }
}

#[test]
fn parallel_bk_consistent_across_subgraph_modes() {
    // The induced-subgraph variants route through the same join-split
    // machinery (including the per-level rebuild in branch leaves).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    for seed in [3u64, 11, 27] {
        let graph = gms_gen::gnp(50, 0.2, seed);
        let (seq_count, _) = sequential_bk(&graph);
        for subgraph in [
            SubgraphMode::None,
            SubgraphMode::Outermost,
            SubgraphMode::PerLevel,
        ] {
            let config = BkConfig {
                ordering: OrderingKind::Degeneracy,
                subgraph,
                collect: false,
                par_depth: 3,
            };
            let outcome = pool.install(|| bron_kerbosch::<DenseBitSet>(&graph, &config));
            assert_eq!(outcome.clique_count, seq_count, "seed {seed} {subgraph:?}");
        }
    }
}

#[test]
fn parallel_kclique_matches_sequential_on_20_seeded_graphs() {
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let pool4 = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    for (i, graph) in seeded_graphs().iter().enumerate() {
        for k in [3usize, 4] {
            for parallel in [KcParallel::Node, KcParallel::Edge] {
                let config = KcConfig {
                    ordering: OrderingKind::Degeneracy,
                    parallel,
                };
                let seq = pool1.install(|| k_clique_count(graph, k, &config)).count;
                let par = pool4.install(|| k_clique_count(graph, k, &config)).count;
                assert_eq!(par, seq, "graph {i} k {k} {parallel:?}");
            }
        }
    }
}
