//! Parallel `k`-clique listing/counting (§6.3, Algorithm 7) after
//! Danisch et al., reformulated over set algebra.
//!
//! Preprocessing (③) relabels vertices by a chosen order and orients
//! the graph (`dir(G)`: an arc `u → v` iff `η(u) < η(v)`), so every
//! clique is discovered exactly once, in rank order. The recursion
//! then repeatedly intersects candidate sets with forward
//! neighborhoods (⑤⁺):
//!
//! ```text
//! count(i, C_i):  if i == k → |C_k|
//!                 else      → Σ_{v ∈ C_i} count(i+1, N⁺(v) ∩ C_i)
//! ```
//!
//! One formulation serves every `k ≥ 3` (the paper notes the original
//! code needed a special case for `k = 3`). Both the *node-parallel*
//! and the *edge-parallel* drivers of the paper's concurrency analysis
//! (§7.2) are provided; the space per branch is bounded by the
//! candidate set sizes, not by Δ².

use crate::scratch::{with_worker_scratch, SetPool};
use gms_core::{CancelToken, CsrGraph, Graph, NodeId, Set, SortedVecSet};
use gms_graph::{orient_by_rank, relabel, Rank};
use gms_order::OrderingKind;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Parallelization driver (§7.2 trade-off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KcParallel {
    /// One task per vertex (lower space, higher depth).
    Node,
    /// One task per oriented edge (higher space, lower depth; the
    /// practical winner in the paper).
    Edge,
}

/// Configuration of a k-clique run.
#[derive(Clone, Debug)]
pub struct KcConfig {
    /// Preprocessing order (DEG / DGR / ADG / ...).
    pub ordering: OrderingKind,
    /// Node- or edge-parallel driver.
    pub parallel: KcParallel,
}

impl Default for KcConfig {
    fn default() -> Self {
        Self {
            ordering: OrderingKind::ApproxDegeneracy(0.25),
            parallel: KcParallel::Edge,
        }
    }
}

/// Result of a k-clique counting run.
#[derive(Clone, Debug)]
pub struct KcOutcome {
    /// Number of `k`-cliques.
    pub count: u64,
    /// Time for ordering + relabeling + orientation.
    pub preprocess: Duration,
    /// Time for the counting kernel.
    pub mine: Duration,
}

impl KcOutcome {
    /// Algorithmic throughput (§4.3): k-cliques per second of mining.
    pub fn throughput(&self) -> f64 {
        self.count as f64 / self.mine.as_secs_f64().max(1e-12)
    }
}

fn count_rec<S: Set>(
    dag: &CsrGraph,
    level: usize,
    k: usize,
    candidates: &S,
    pool: &mut SetPool<S>,
    cancel: &CancelToken,
) -> u64 {
    if cancel.is_cancelled() {
        return 0;
    }
    if level == k {
        return candidates.cardinality() as u64;
    }
    if level + 1 == k {
        // Deepest expansion — the bulk of the recursion's volume.
        // `|N⁺(v) ∩ C|` is counted straight against the CSR slice:
        // nothing is materialized at the level that runs most often.
        return candidates
            .iter()
            .map(|v| candidates.intersect_count_sorted(dag.neighbors_slice(v)) as u64)
            .sum();
    }
    let mut total = 0u64;
    let mut forward = pool.take();
    let mut next = pool.take();
    for v in candidates.iter() {
        forward.assign_sorted(dag.neighbors_slice(v));
        next.clone_from(candidates);
        next.intersect_inplace(&forward);
        total += count_rec(dag, level + 1, k, &next, pool, cancel);
    }
    pool.put(next);
    pool.put(forward);
    total
}

/// Counts `k`-cliques with representation `S` for the candidate sets.
pub fn k_clique_count_with<S: Set>(graph: &CsrGraph, k: usize, config: &KcConfig) -> KcOutcome {
    k_clique_count_cancellable_with::<S>(graph, k, config, &CancelToken::none())
}

/// [`k_clique_count_with`] under a cooperative [`CancelToken`]
/// probed at every recursion entry and task root. A fired token
/// yields a partial count the caller must discard.
pub fn k_clique_count_cancellable_with<S: Set>(
    graph: &CsrGraph,
    k: usize,
    config: &KcConfig,
    cancel: &CancelToken,
) -> KcOutcome {
    assert!(k >= 1, "k must be positive");
    let t0 = Instant::now();
    let rank = config.ordering.compute(graph);
    let relabeled = relabel(graph, &rank);
    let dag = orient_by_rank(&relabeled, &Rank::identity(relabeled.num_vertices()));
    let preprocess = t0.elapsed();

    let t1 = Instant::now();
    let count = match k {
        1 => graph.num_vertices() as u64,
        2 => graph.num_edges_undirected() as u64,
        _ => match config.parallel {
            KcParallel::Node => (0..dag.num_vertices() as NodeId)
                .into_par_iter()
                .map(|u| {
                    if cancel.is_cancelled() {
                        return 0;
                    }
                    with_worker_scratch::<SetPool<S>, _>(|pool| {
                        let mut c2 = pool.take();
                        c2.assign_sorted(dag.neighbors_slice(u));
                        let total = count_rec(&dag, 2, k, &c2, pool, cancel);
                        pool.put(c2);
                        total
                    })
                })
                .sum(),
            KcParallel::Edge => {
                // Edge-parallel root expansion with recursive split
                // (§7.2): the oriented edge list is materialized once
                // and fanned out as splittable range tasks, so the
                // many cheap edges and the few edges whose candidate
                // subtrees explode are balanced by work stealing
                // rather than trapped in a static per-vertex chunk.
                let roots: Vec<(NodeId, NodeId)> = (0..dag.num_vertices() as NodeId)
                    .flat_map(|u| dag.neighbors_slice(u).iter().map(move |&v| (u, v)))
                    .collect();
                roots
                    .into_par_iter()
                    .with_min_len(16)
                    .map(|(u, v)| {
                        if cancel.is_cancelled() {
                            return 0;
                        }
                        with_worker_scratch::<SetPool<S>, _>(|pool| {
                            let mut nu = pool.take();
                            nu.assign_sorted(dag.neighbors_slice(u));
                            let total = if k == 3 {
                                // Triangle base case: one slice count,
                                // nothing materialized per edge.
                                nu.intersect_count_sorted(dag.neighbors_slice(v)) as u64
                            } else {
                                let mut nv = pool.take();
                                nv.assign_sorted(dag.neighbors_slice(v));
                                nu.intersect_inplace(&nv);
                                pool.put(nv);
                                count_rec(&dag, 3, k, &nu, pool, cancel)
                            };
                            pool.put(nu);
                            total
                        })
                    })
                    .sum()
            }
        },
    };
    let mine = t1.elapsed();
    KcOutcome {
        count,
        preprocess,
        mine,
    }
}

/// Counts `k`-cliques with the default sorted-array candidate sets.
pub fn k_clique_count(graph: &CsrGraph, k: usize, config: &KcConfig) -> KcOutcome {
    k_clique_count_with::<SortedVecSet>(graph, k, config)
}

/// [`k_clique_count`] under a cooperative [`CancelToken`].
pub fn k_clique_count_cancellable(
    graph: &CsrGraph,
    k: usize,
    config: &KcConfig,
    cancel: &CancelToken,
) -> KcOutcome {
    k_clique_count_cancellable_with::<SortedVecSet>(graph, k, config, cancel)
}

/// Lists all `k`-cliques (original vertex IDs, each sorted; the whole
/// list sorted). Intended for tests, examples and small graphs — the
/// output itself can be exponential in size.
pub fn k_clique_list(graph: &CsrGraph, k: usize, config: &KcConfig) -> Vec<Vec<NodeId>> {
    assert!(k >= 2);
    let rank = config.ordering.compute(graph);
    let relabeled = relabel(graph, &rank);
    let dag = orient_by_rank(&relabeled, &Rank::identity(relabeled.num_vertices()));
    let order = rank.order();

    fn list_rec(
        dag: &CsrGraph,
        k: usize,
        prefix: &mut Vec<NodeId>,
        candidates: &SortedVecSet,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if prefix.len() == k {
            out.push(prefix.clone());
            return;
        }
        for v in candidates.iter() {
            let forward = SortedVecSet::from_sorted(dag.neighbors_slice(v));
            let next = forward.intersect(candidates);
            prefix.push(v);
            if prefix.len() == k {
                out.push(prefix.clone());
            } else {
                list_rec(dag, k, prefix, &next, out);
            }
            prefix.pop();
        }
    }

    let mut out = Vec::new();
    for u in 0..dag.num_vertices() as NodeId {
        let c = SortedVecSet::from_sorted(dag.neighbors_slice(u));
        let mut prefix = vec![u];
        list_rec(&dag, k, &mut prefix, &c, &mut out);
    }
    let mut mapped: Vec<Vec<NodeId>> = out
        .into_iter()
        .map(|clique| {
            let mut original: Vec<NodeId> = clique.into_iter().map(|v| order[v as usize]).collect();
            original.sort_unstable();
            original
        })
        .collect();
    mapped.sort();
    mapped
}

/// Named k-clique baselines compared in Fig. 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KcVariant {
    /// GMS: edge-parallel + ADG (this paper).
    Gms,
    /// GBBS-style: node-parallel + exact degeneracy order.
    GbbsStyle,
    /// Danisch et al.-style: edge-parallel + exact degeneracy order.
    DanischStyle,
}

impl KcVariant {
    /// All variants in presentation order.
    pub const ALL: [KcVariant; 3] = [
        KcVariant::DanischStyle,
        KcVariant::GbbsStyle,
        KcVariant::Gms,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            KcVariant::Gms => "GMS",
            KcVariant::GbbsStyle => "GBBS",
            KcVariant::DanischStyle => "Danisch",
        }
    }

    /// Runs the variant.
    pub fn run(&self, graph: &CsrGraph, k: usize) -> KcOutcome {
        let config = match self {
            KcVariant::Gms => KcConfig {
                ordering: OrderingKind::ApproxDegeneracy(0.25),
                parallel: KcParallel::Edge,
            },
            KcVariant::GbbsStyle => KcConfig {
                ordering: OrderingKind::Degeneracy,
                parallel: KcParallel::Node,
            },
            KcVariant::DanischStyle => KcConfig {
                ordering: OrderingKind::Degeneracy,
                parallel: KcParallel::Edge,
            },
        };
        k_clique_count(graph, k, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_k_cliques_brute;
    use gms_core::RoaringSet;

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut result = 1u64;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }

    #[test]
    fn complete_graph_counts_are_binomials() {
        let g = gms_gen::complete(10);
        for k in 1..=10 {
            let outcome = k_clique_count(&g, k, &KcConfig::default());
            assert_eq!(outcome.count, binomial(10, k as u64), "k = {k}");
        }
    }

    #[test]
    fn node_and_edge_drivers_agree() {
        let g = gms_gen::gnp(60, 0.25, 5);
        for k in 3..=5 {
            let node = k_clique_count(
                &g,
                k,
                &KcConfig {
                    ordering: OrderingKind::Degeneracy,
                    parallel: KcParallel::Node,
                },
            );
            let edge = k_clique_count(
                &g,
                k,
                &KcConfig {
                    ordering: OrderingKind::Degeneracy,
                    parallel: KcParallel::Edge,
                },
            );
            assert_eq!(node.count, edge.count, "k = {k}");
        }
    }

    #[test]
    fn orderings_do_not_change_counts() {
        let g = gms_gen::gnp(50, 0.3, 9);
        let orderings = [
            OrderingKind::Natural,
            OrderingKind::Degree,
            OrderingKind::Degeneracy,
            OrderingKind::ApproxDegeneracy(0.5),
        ];
        let expected = count_k_cliques_brute(&g, 4);
        for ordering in orderings {
            let outcome = k_clique_count(
                &g,
                4,
                &KcConfig {
                    ordering,
                    parallel: KcParallel::Edge,
                },
            );
            assert_eq!(outcome.count, expected, "{}", ordering.label());
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4 {
            let g = gms_gen::gnp(30, 0.35, seed);
            for k in 3..=6 {
                let fast = k_clique_count(&g, k, &KcConfig::default()).count;
                assert_eq!(fast, count_k_cliques_brute(&g, k), "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn roaring_candidates_agree_with_sorted() {
        let g = gms_gen::gnp(50, 0.3, 2);
        let sorted = k_clique_count(&g, 4, &KcConfig::default()).count;
        let roaring = k_clique_count_with::<RoaringSet>(&g, 4, &KcConfig::default()).count;
        assert_eq!(sorted, roaring);
    }

    #[test]
    fn listing_matches_counting() {
        let g = gms_gen::gnp(25, 0.4, 8);
        for k in 3..=4 {
            let cliques = k_clique_list(&g, k, &KcConfig::default());
            let count = k_clique_count(&g, k, &KcConfig::default()).count;
            assert_eq!(cliques.len() as u64, count);
            // Every listed clique is distinct and complete.
            let unique: std::collections::HashSet<&Vec<NodeId>> = cliques.iter().collect();
            assert_eq!(unique.len(), cliques.len());
            for clique in &cliques {
                assert!(crate::brute::is_clique(&g, clique));
                assert_eq!(clique.len(), k);
            }
        }
    }

    #[test]
    fn variants_agree() {
        let (g, _) = gms_gen::planted_cliques(100, 0.05, 2, 7, 6);
        let counts: Vec<u64> = KcVariant::ALL.iter().map(|v| v.run(&g, 5).count).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert!(
            counts[0] >= 2 * binomial(7, 5),
            "planted cliques contribute"
        );
    }

    #[test]
    fn fired_token_yields_a_discardable_partial_count() {
        let g = gms_gen::complete(10);
        let token = CancelToken::manual();
        token.cancel();
        let out = k_clique_count_cancellable(&g, 4, &KcConfig::default(), &token);
        assert_eq!(out.count, 0, "every task root sees the fired token");
        let live = k_clique_count_cancellable(&g, 4, &KcConfig::default(), &CancelToken::manual());
        assert_eq!(
            live.count,
            k_clique_count(&g, 4, &KcConfig::default()).count
        );
    }

    #[test]
    fn small_k_shortcuts() {
        let g = gms_gen::gnp(40, 0.2, 3);
        assert_eq!(k_clique_count(&g, 1, &KcConfig::default()).count, 40);
        assert_eq!(
            k_clique_count(&g, 2, &KcConfig::default()).count,
            g.num_edges_undirected() as u64
        );
    }
}
