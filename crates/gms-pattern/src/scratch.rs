//! Per-worker scratch storage for the parallel mining kernels.
//!
//! Subtree tasks produced by `rayon::join` and `par_iter` run to
//! completion on a single worker, so scratch buffers only need to be
//! per-*worker*, not per-*task*. Before this module each leaf task
//! started with empty buffers and re-grew them from scratch, which put
//! an allocation burst on every stolen subtree — measurable as the
//! scheduler-adjacent slowdown at 2–4 threads. Here each OS thread
//! keeps one type-erased pool keyed by `TypeId`; a task borrows the
//! pool for its set type, and whatever buffer capacity the previous
//! task on this worker grew is reused.
//!
//! The pool entry is *taken out* of the thread-local for the duration
//! of the closure (and restored afterwards), so a re-entrant borrow of
//! the same type — e.g. a nested task executed inline while helping a
//! `join` — degrades gracefully to a fresh pool instead of aborting.

use gms_core::Set;
use std::any::{Any, TypeId};
use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<(TypeId, Box<dyn Any>)>> = const { RefCell::new(Vec::new()) };
}

/// Borrows this worker's scratch value of type `T`, creating it on
/// first use. The value persists on the thread across calls, so any
/// capacity it accumulates is reused by later tasks on this worker.
pub fn with_worker_scratch<T: Default + 'static, R>(f: impl FnOnce(&mut T) -> R) -> R {
    let key = TypeId::of::<T>();
    let mut value: Box<T> = POOL
        .with(|pool| {
            let mut pool = pool.borrow_mut();
            pool.iter()
                .position(|(k, _)| *k == key)
                .map(|i| pool.swap_remove(i).1)
        })
        .and_then(|boxed| boxed.downcast().ok())
        .unwrap_or_default();
    let result = f(&mut value);
    POOL.with(|pool| pool.borrow_mut().push((key, value)));
    result
}

/// Free list of `Set` buffers reused across a sequential recursion:
/// child sets are written into recycled buffers via `clone_from` +
/// `*_inplace` instead of freshly allocated per recursive call. Lives
/// in worker-local storage (see [`with_worker_scratch`]) so the
/// capacity survives from one subtree task to the next.
pub struct SetPool<S: Set> {
    free: Vec<S>,
}

impl<S: Set> Default for SetPool<S> {
    fn default() -> Self {
        SetPool { free: Vec::new() }
    }
}

impl<S: Set> SetPool<S> {
    /// Pops a recycled buffer, or creates an empty set.
    pub fn take(&mut self) -> S {
        self.free.pop().unwrap_or_else(S::empty)
    }

    /// Returns a buffer to the free list for reuse.
    pub fn put(&mut self, set: S) {
        self.free.push(set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::{DenseBitSet, Set, SortedVecSet};

    #[test]
    fn scratch_persists_across_calls_on_one_thread() {
        with_worker_scratch::<SetPool<SortedVecSet>, _>(|pool| {
            let mut s = pool.take();
            for i in 0..1000 {
                s.add(i);
            }
            pool.put(s);
        });
        with_worker_scratch::<SetPool<SortedVecSet>, _>(|pool| {
            let s = pool.take();
            assert!(
                s.heap_bytes() >= 1000 * std::mem::size_of::<u32>(),
                "recycled buffer kept its capacity"
            );
            pool.put(s);
        });
    }

    #[test]
    fn distinct_types_get_distinct_pools() {
        with_worker_scratch::<SetPool<DenseBitSet>, _>(|pool| {
            let mut s = pool.take();
            s.add(5000);
            pool.put(s);
        });
        // Reentrant borrow of a different type works, and a reentrant
        // borrow of the SAME type degrades to a fresh pool.
        with_worker_scratch::<SetPool<DenseBitSet>, _>(|outer| {
            let outer_set = outer.take();
            with_worker_scratch::<SetPool<SortedVecSet>, _>(|inner| {
                let s = inner.take();
                assert_eq!(s.cardinality(), 0);
                inner.put(s);
            });
            with_worker_scratch::<SetPool<DenseBitSet>, _>(|nested| {
                let s = nested.take();
                assert_eq!(s.cardinality(), 0);
                nested.put(s);
            });
            outer.put(outer_set);
        });
    }
}
