//! Triangle counting (Table 4: "different variants of Triangle
//! Counting"): the *node-iterator* and *rank-merge* schemes the
//! paper's representation analysis (Table 8) contrasts. Both are
//! expressed with set intersections (⑤⁺) — the `tc += |N(v) ∩ N(w)|`
//! snippet of Figure 2 verbatim.

use gms_core::set::intersect_count_sorted_slices;
use gms_core::{CsrGraph, Graph, NodeId, Set, SetGraph, SetNeighborhoods};
use gms_graph::{orient_by_rank, relabel, CompressedCsr, Rank};
use gms_order::degree_order;
use rayon::prelude::*;

use crate::scratch::with_worker_scratch;

/// Per-worker decode buffers for [`triangle_count_compressed`]: one
/// neighborhood per nesting level, reused across every vertex a rayon
/// worker processes so the kernel loop never allocates after warm-up.
#[derive(Default)]
struct DecodeScratch {
    outer: Vec<NodeId>,
    inner: Vec<NodeId>,
}

/// Node-iterator triangle counting: for every vertex `v` and neighbor
/// `w`, accumulate `|N(v) ∩ N(w)|`; every triangle is counted six
/// times (twice per corner). Generic over the set layout.
pub fn triangle_count_node_iterator<S: Set>(graph: &SetGraph<S>) -> u64 {
    let total: u64 = (0..graph.num_vertices() as NodeId)
        .into_par_iter()
        .map(|v| {
            let nv = graph.neighborhood(v);
            nv.iter()
                .map(|w| nv.intersect_count(graph.neighborhood(w)) as u64)
                .sum::<u64>()
        })
        .sum();
    total / 6
}

/// Rank-merge triangle counting: orient by degree order, then count
/// `|N⁺(u) ∩ N⁺(v)|` over the DAG arcs — each triangle exactly once.
/// The degree order bounds forward degrees, the optimization §4.1.3
/// attributes to vertex reordering. Each arc is one allocation-free
/// count directly over the two CSR neighbor slices (galloping or
/// block-skipping merge, chosen by size skew).
pub fn triangle_count_rank_merge(graph: &CsrGraph) -> u64 {
    let rank = degree_order(graph);
    let relabeled = relabel(graph, &rank);
    let dag = orient_by_rank(&relabeled, &Rank::identity(relabeled.num_vertices()));
    (0..dag.num_vertices() as NodeId)
        .into_par_iter()
        .map(|u| {
            let nu = dag.neighbors_slice(u);
            nu.iter()
                .map(|&v| intersect_count_sorted_slices(nu, dag.neighbors_slice(v)) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Decode-native triangle counting over a gap-compressed CSR: the
/// forward-neighbor variant of node-iterator, run directly on the
/// compressed representation. Each worker decodes `N(u)` and `N(v)`
/// into thread-local scratch ([`with_worker_scratch`]) and counts
/// `|N(u) ∩ N(v)|` for `v > u` over the sorted slices, so every
/// triangle is seen exactly three times (once per corner as the
/// smallest-by-id pair anchor). No materialized CSR, no per-vertex
/// allocation: the compressed graph stays the only resident copy.
pub fn triangle_count_compressed(graph: &CompressedCsr) -> u64 {
    let total: u64 = (0..graph.num_vertices() as NodeId)
        .into_par_iter()
        .map(|u| {
            with_worker_scratch(|scratch: &mut DecodeScratch| {
                graph.decode_into(u, &mut scratch.outer);
                let mut local = 0u64;
                for i in 0..scratch.outer.len() {
                    let v = scratch.outer[i];
                    if v <= u {
                        continue;
                    }
                    graph.decode_into(v, &mut scratch.inner);
                    local += intersect_count_sorted_slices(&scratch.outer, &scratch.inner) as u64;
                }
                local
            })
        })
        .sum();
    total / 3
}

/// Touched-wedge triangle recount: the number of triangles containing
/// at least one vertex of `touched` (sorted, deduplicated). This is
/// the incremental-maintenance primitive for dynamic graphs — a
/// batched edge mutation can only create or destroy triangles whose
/// corners include a touched endpoint, so
/// `new = old - touched_count(old_graph) + touched_count(new_graph)`
/// with both recounts local to the mutation, not the whole graph.
///
/// Each qualifying triangle is counted exactly once, at its
/// minimum-id *touched* corner: for every touched `s`, every wedge
/// `u < v` in `N(s)` closed by an edge `(u, v)` contributes iff no
/// touched corner smaller than `s` exists. Cost is
/// `O(Σ_{s∈touched} deg(s)² · log deg)` — proportional to the touched
/// neighborhoods, independent of graph size.
pub fn triangle_count_touched(graph: &CsrGraph, touched: &[NodeId]) -> u64 {
    debug_assert!(touched.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
    let is_touched = |v: NodeId| touched.binary_search(&v).is_ok();
    touched
        .par_iter()
        .map(|&s| {
            let ns = graph.neighbors_slice(s);
            let mut local = 0u64;
            for (i, &u) in ns.iter().enumerate() {
                if u < s && is_touched(u) {
                    continue; // counted at u
                }
                for &v in &ns[i + 1..] {
                    if v < s && is_touched(v) {
                        continue;
                    }
                    if graph.has_edge(u, v) {
                        local += 1;
                    }
                }
            }
            local
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::{DenseBitSet, RoaringSet, SortedVecSet};

    fn node_iter_count(graph: &CsrGraph) -> u64 {
        let sg: SetGraph<SortedVecSet> = SetGraph::from_csr(graph);
        triangle_count_node_iterator(&sg)
    }

    #[test]
    fn known_counts() {
        let paw = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(node_iter_count(&paw), 1);
        assert_eq!(triangle_count_rank_merge(&paw), 1);
        let k6 = gms_gen::complete(6);
        assert_eq!(node_iter_count(&k6), 20);
        assert_eq!(triangle_count_rank_merge(&k6), 20);
    }

    #[test]
    fn schemes_agree_across_set_layouts() {
        let g = gms_gen::gnp(120, 0.08, 4);
        let expected = triangle_count_rank_merge(&g);
        let sorted: SetGraph<SortedVecSet> = SetGraph::from_csr(&g);
        let roaring: SetGraph<RoaringSet> = SetGraph::from_csr(&g);
        let dense: SetGraph<DenseBitSet> = SetGraph::from_csr(&g);
        assert_eq!(triangle_count_node_iterator(&sorted), expected);
        assert_eq!(triangle_count_node_iterator(&roaring), expected);
        assert_eq!(triangle_count_node_iterator(&dense), expected);
    }

    #[test]
    fn compressed_counter_agrees_with_csr_counters() {
        let gallery = [
            gms_gen::gnp(120, 0.08, 4),
            gms_gen::kronecker_default(8, 6, 7),
            gms_gen::complete(9),
            gms_gen::grid(8, 8),
            CsrGraph::from_undirected_edges(0, &[]),
            CsrGraph::from_undirected_edges(5, &[]),
        ];
        for g in &gallery {
            let compressed = CompressedCsr::from_csr(g);
            assert_eq!(
                triangle_count_compressed(&compressed),
                triangle_count_rank_merge(g)
            );
        }
    }

    #[test]
    fn compressed_counter_is_order_invariant() {
        // Locality reordering relabels vertices; the triangle count is
        // an isomorphism invariant and must not change.
        let g = gms_gen::gnp(150, 0.06, 11);
        let rank = degree_order(&g);
        let reordered = CompressedCsr::from_csr_ordered(&g, &rank);
        assert_eq!(
            triangle_count_compressed(&reordered),
            triangle_count_rank_merge(&g)
        );
    }

    #[test]
    fn agrees_with_ordering_crate() {
        let g = gms_gen::kronecker_default(8, 6, 7);
        assert_eq!(triangle_count_rank_merge(&g), gms_order::triangle_count(&g));
    }

    #[test]
    fn touched_recount_matches_filtered_enumeration() {
        let g = gms_gen::gnp(80, 0.1, 9);
        // Reference: enumerate all triangles, keep those touching S.
        let all_with = |s: &[NodeId]| -> u64 {
            let mut count = 0u64;
            for u in 0..g.num_vertices() as NodeId {
                for &v in g.neighbors_slice(u).iter().filter(|&&v| v > u) {
                    for &w in g.neighbors_slice(v).iter().filter(|&&w| w > v) {
                        if g.has_edge(u, w)
                            && (s.binary_search(&u).is_ok()
                                || s.binary_search(&v).is_ok()
                                || s.binary_search(&w).is_ok())
                        {
                            count += 1;
                        }
                    }
                }
            }
            count
        };
        for touched in [
            vec![],
            vec![0],
            vec![3, 17, 42],
            (0..80).collect::<Vec<NodeId>>(),
        ] {
            assert_eq!(triangle_count_touched(&g, &touched), all_with(&touched));
        }
        // Touching everything is the full count.
        let everyone: Vec<NodeId> = (0..80).collect();
        assert_eq!(
            triangle_count_touched(&g, &everyone),
            triangle_count_rank_merge(&g)
        );
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(triangle_count_rank_merge(&gms_gen::grid(8, 8)), 0);
        let bipartite =
            CsrGraph::from_undirected_edges(6, &[(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 5)]);
        assert_eq!(node_iter_count(&bipartite), 0);
    }
}
