//! `k`-clique-star listing (§6.6): a `k`-clique-star is a `k`-clique
//! together with the satellite vertices adjacent to *all* clique
//! members. The paper's observation: core ∪ {satellite} forms a
//! (k+1)-clique, so mining (k+1)-cliques first and regrouping them by
//! their `k`-subsets recovers every clique-star with set union,
//! membership and difference operations.

use crate::kclique::{k_clique_list, KcConfig};
use gms_core::hash::FxHashMap;
use gms_core::{CsrGraph, NodeId};

/// A `k`-clique-star: the clique core plus its shared satellites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueStar {
    /// The `k`-clique (sorted).
    pub core: Vec<NodeId>,
    /// Vertices adjacent to every core member (sorted); possibly empty
    /// when the core extends to no (k+1)-clique.
    pub satellites: Vec<NodeId>,
}

/// Lists every `k`-clique-star with at least `min_satellites`
/// satellites. Implemented per §6.6: mine (k+1)-cliques, then for each
/// of their `k`-subsets record the leftover vertex as a satellite.
pub fn k_clique_stars(
    graph: &CsrGraph,
    k: usize,
    min_satellites: usize,
    config: &KcConfig,
) -> Vec<CliqueStar> {
    assert!(k >= 2, "clique-star cores need k >= 2");
    let bigger = k_clique_list(graph, k + 1, config);
    let mut stars: FxHashMap<Vec<NodeId>, Vec<NodeId>> = FxHashMap::default();
    for clique in &bigger {
        // Each k-subset of a (k+1)-clique is a core; the excluded
        // member is one of its satellites (set difference of §6.6).
        for skip in 0..clique.len() {
            let mut core = clique.clone();
            let satellite = core.remove(skip);
            stars.entry(core).or_default().push(satellite);
        }
    }
    let mut result: Vec<CliqueStar> = stars
        .into_iter()
        .filter_map(|(core, mut satellites)| {
            satellites.sort_unstable();
            satellites.dedup();
            (satellites.len() >= min_satellites).then_some(CliqueStar { core, satellites })
        })
        .collect();
    result.sort_by(|a, b| a.core.cmp(&b.core));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph as _;

    #[test]
    fn planted_star_is_recovered() {
        let (g, mut core, mut satellites) = gms_gen::planted_clique_star(60, 0.0, 3, 4, 2);
        core.sort_unstable();
        satellites.sort_unstable();
        let stars = k_clique_stars(&g, 3, 1, &KcConfig::default());
        let found = stars
            .iter()
            .find(|s| s.core == core)
            .expect("planted core present");
        // Every planted satellite is adjacent to the whole core.
        for s in &satellites {
            assert!(found.satellites.contains(s), "satellite {s} missing");
        }
    }

    #[test]
    fn k4_stars_of_triangles() {
        // In K4 every triangle (3-clique) has exactly one satellite:
        // the remaining vertex.
        let g = gms_gen::complete(4);
        let stars = k_clique_stars(&g, 3, 1, &KcConfig::default());
        assert_eq!(stars.len(), 4);
        for star in &stars {
            assert_eq!(star.satellites.len(), 1);
            let all: Vec<NodeId> = (0..4).collect();
            let missing: Vec<NodeId> = all.into_iter().filter(|v| !star.core.contains(v)).collect();
            assert_eq!(star.satellites, missing);
        }
    }

    #[test]
    fn min_satellites_filters() {
        let g = gms_gen::complete(6);
        // In K6, each triangle has 3 satellites.
        let all = k_clique_stars(&g, 3, 3, &KcConfig::default());
        assert_eq!(all.len(), 20);
        let none = k_clique_stars(&g, 3, 4, &KcConfig::default());
        assert!(none.is_empty());
    }

    #[test]
    fn satellites_are_fully_connected_to_core() {
        let g = gms_gen::gnp(40, 0.3, 14);
        for star in k_clique_stars(&g, 3, 1, &KcConfig::default()) {
            for &s in &star.satellites {
                for &c in &star.core {
                    assert!(g.has_edge(s, c));
                }
            }
        }
    }
}
