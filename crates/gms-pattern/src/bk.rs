//! Parallel Bron–Kerbosch maximal clique listing (§6.2, Algorithm 6).
//!
//! The GMS formulation is generic over the [`Set`] implementation used
//! for the candidate set `P`, the excluded set `X` and the vertex
//! neighborhoods — the paper's set-algebra modularity (⑤⁺). The outer
//! loop processes vertices in a configurable preprocessing order (③):
//!
//! * **BK-DAS** — the Das et al. (ParMCE) baseline shape: degeneracy
//!   order, hash-set adjacency, and Eppstein-style per-recursion-level
//!   induced-subgraph rebuilding — the design §6.2 improves on;
//! * **BK-GMS-DEG / DGR / ADG** — GMS variants over bitvector sets
//!   with degree / exact degeneracy / approximate degeneracy orders.
//!   The paper uses roaring bitmaps on million-vertex graphs; below
//!   65536 vertices a roaring bitmap is structurally a u16 array (its
//!   bitmap containers never engage), so the bitvector family's
//!   laptop-scale member — the dense bitvector (`DenseBitSet`) — backs
//!   the named variants here. `bron_kerbosch::<RoaringSet>` remains one
//!   line away (see the `ablation_set_layouts` binary);
//! * **BK-GMS-ADG-S** — additionally precomputes the induced subgraph
//!   `H` on `P ∪ X` at the outermost level and runs all pivot
//!   selections and intersections against the smaller `N_H` sets
//!   (the §6.2 subgraph optimization).
//!
//! Pivoting follows Tomita et al.: choose `u ∈ P ∪ X` maximizing
//! `|P ∩ N(u)|`, then only `P \ N(u)` spawns recursive calls.

use crate::scratch::{with_worker_scratch, SetPool};
use gms_core::hash::FxHashMap;
use gms_core::{
    CancelToken, CsrGraph, DenseBitSet, Graph, HashVertexSet, NodeId, Set, SetGraph,
    SetNeighborhoods,
};
use gms_graph::relabel;
use gms_order::OrderingKind;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// How the induced subgraph `H` on `P ∪ X` is (re)built (§6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubgraphMode {
    /// No `H`: all set operations run against full neighborhoods.
    None,
    /// Build `H` once per outermost vertex and reuse it down the whole
    /// search tree — the GMS improvement (BK-ADG-S).
    Outermost,
    /// Rebuild `H` at every recursion level, as originally advocated
    /// by Eppstein et al. \[92\]; the paper observes the rebuild
    /// overheads often outweigh the gains — this is the baseline
    /// behavior BK-GMS improves on.
    PerLevel,
}

/// Configuration of a Bron–Kerbosch run.
#[derive(Clone, Debug)]
pub struct BkConfig {
    /// Preprocessing vertex order for the outer loop.
    pub ordering: OrderingKind,
    /// Induced-subgraph caching policy (§6.2).
    pub subgraph: SubgraphMode,
    /// Materialize the cliques (otherwise only count them).
    pub collect: bool,
    /// Pivot-branch depth down to which subtrees are spawned as
    /// `rayon::join` tasks (stealable by idle workers). Depth is
    /// counted from each root vertex; below it the subtree runs
    /// sequentially on whichever worker owns it, reusing scratch
    /// sets. `0` disables subtree parallelism entirely — with a
    /// 1-thread pool the traversal is then byte-identical to the
    /// purely sequential kernel.
    pub par_depth: usize,
}

impl Default for BkConfig {
    fn default() -> Self {
        Self {
            ordering: OrderingKind::ApproxDegeneracy(0.25),
            subgraph: SubgraphMode::None,
            collect: false,
            par_depth: 4,
        }
    }
}

/// Result of a Bron–Kerbosch run.
#[derive(Clone, Debug)]
pub struct BkOutcome {
    /// Number of maximal cliques.
    pub clique_count: u64,
    /// Size of the largest clique found (0 on the empty graph).
    pub largest: usize,
    /// The cliques in original vertex IDs (if `collect` was set),
    /// each sorted ascending.
    pub cliques: Option<Vec<Vec<NodeId>>>,
    /// Time spent computing the vertex ordering + relabeling.
    pub preprocess: Duration,
    /// Time spent building the set-centric representation and mining.
    pub mine: Duration,
}

impl BkOutcome {
    /// Algorithmic throughput (§4.3): maximal cliques found per second
    /// of mining time.
    pub fn throughput(&self) -> f64 {
        self.clique_count as f64 / self.mine.as_secs_f64().max(1e-12)
    }
}

struct SearchCtx<'a, S: Set> {
    graph: &'a SetGraph<S>,
    /// Induced-subgraph neighborhoods (`N_H`), present under ADG-S
    /// and the per-level baseline mode.
    subgraph: Option<&'a FxHashMap<NodeId, S>>,
    /// Rebuild `H` before every recursive call (Eppstein-style).
    per_level: bool,
    collect: bool,
    /// Cooperative cancellation, probed at every recursion entry.
    /// When it fires the search unwinds with a partial count the
    /// caller must discard.
    cancel: &'a CancelToken,
}

impl<S: Set> SearchCtx<'_, S> {
    #[inline]
    fn neigh(&self, v: NodeId) -> &S {
        match self.subgraph {
            Some(h) => h.get(&v).expect("H covers P ∪ X"),
            None => self.graph.neighborhood(v),
        }
    }
}

struct LocalOut {
    count: u64,
    largest: usize,
    cliques: Vec<Vec<NodeId>>,
}

impl LocalOut {
    fn empty() -> Self {
        LocalOut {
            count: 0,
            largest: 0,
            cliques: Vec::new(),
        }
    }

    fn absorb(&mut self, mut other: LocalOut) {
        self.count += other.count;
        self.largest = self.largest.max(other.largest);
        self.cliques.append(&mut other.cliques);
    }
}

/// Tomita-style pivot (line 20): `u ∈ P ∪ X` maximizing `|P ∩ N(u)|`.
fn select_pivot<S: Set>(ctx: &SearchCtx<'_, S>, p: &S, x: &S) -> NodeId {
    let mut pivot = None;
    let mut best = usize::MAX; // tracks |P \ N(u)| = |P| - |P ∩ N(u)|
    let p_size = p.cardinality();
    for u in p.iter().chain(x.iter()) {
        let covered = p.intersect_count(ctx.neigh(u));
        let residue = p_size - covered;
        if residue < best {
            best = residue;
            pivot = Some(u);
            if residue == 0 {
                break;
            }
        }
    }
    pivot.expect("P non-empty implies a pivot exists")
}

/// Eppstein-style per-level rebuild of `H` on the child's `P ∪ X`
/// (the rebuild cost §6.2 argues against; kept as the baseline).
fn per_level_subgraph<S: Set>(
    ctx: &SearchCtx<'_, S>,
    p_new: &S,
    x_new: &S,
) -> FxHashMap<NodeId, S> {
    let px = p_new.union(x_new);
    let mut h: FxHashMap<NodeId, S> = FxHashMap::default();
    for w in px.iter() {
        h.insert(w, ctx.neigh(w).intersect(&px));
    }
    h
}

fn bk_pivot<S: Set>(
    ctx: &SearchCtx<'_, S>,
    p: &mut S,
    r: &mut Vec<NodeId>,
    x: &mut S,
    scratch: &mut SetPool<S>,
    out: &mut LocalOut,
) {
    if ctx.cancel.is_cancelled() {
        return;
    }
    if p.is_empty() {
        // Line 19: R is maximal iff X is also empty.
        if x.is_empty() {
            out.count += 1;
            out.largest = out.largest.max(r.len());
            if ctx.collect {
                out.cliques.push(r.clone());
            }
        }
        return;
    }
    let u = select_pivot(ctx, p, x);
    // Lines 21-28: only P \ N(u) extends the clique. Child sets are
    // built in recycled scratch buffers (`clone_from` + `_inplace`),
    // not fresh allocations — the set layouts reuse buffer capacity.
    let mut candidates = scratch.take();
    candidates.clone_from(p);
    candidates.diff_inplace(ctx.neigh(u));
    for v in candidates.iter() {
        let nv = ctx.neigh(v);
        let mut p_new = scratch.take();
        p_new.clone_from(p);
        p_new.intersect_inplace(nv);
        let mut x_new = scratch.take();
        x_new.clone_from(x);
        x_new.intersect_inplace(nv);
        r.push(v);
        if ctx.per_level {
            let h = per_level_subgraph(ctx, &p_new, &x_new);
            let child = SearchCtx {
                graph: ctx.graph,
                subgraph: Some(&h),
                per_level: true,
                collect: ctx.collect,
                cancel: ctx.cancel,
            };
            bk_pivot(&child, &mut p_new, r, &mut x_new, scratch, out);
        } else {
            bk_pivot(ctx, &mut p_new, r, &mut x_new, scratch, out);
        }
        r.pop();
        p.remove(v);
        x.add(v);
        scratch.put(p_new);
        scratch.put(x_new);
    }
    scratch.put(candidates);
}

/// Parallel subtree expansion: above the remaining `depth_left`
/// budget, pivot branches are spawned as `join` tasks so idle workers
/// steal skewed subtrees; at the budget's edge (or on a 1-wide pool)
/// each branch falls into the sequential scratch-reusing kernel.
fn bk_pivot_par<S: Set>(
    ctx: &SearchCtx<'_, S>,
    p: &S,
    r: &[NodeId],
    x: &S,
    depth_left: usize,
) -> LocalOut {
    if ctx.cancel.is_cancelled() {
        return LocalOut::empty();
    }
    if depth_left == 0 || rayon::current_num_threads() <= 1 {
        // Sequential subtree: borrow the calling worker's scratch
        // pool instead of growing a fresh one per task — stolen
        // subtrees land on a worker whose previous tasks already grew
        // the buffers, so the leaf runs allocation-free.
        let mut p = p.clone();
        let mut x = x.clone();
        let mut r = r.to_vec();
        let mut out = LocalOut::empty();
        with_worker_scratch::<SetPool<S>, _>(|scratch| {
            bk_pivot(ctx, &mut p, &mut r, &mut x, scratch, &mut out);
        });
        return out;
    }
    if p.is_empty() {
        let mut out = LocalOut::empty();
        if x.is_empty() {
            out.count = 1;
            out.largest = r.len();
            if ctx.collect {
                out.cliques.push(r.to_vec());
            }
        }
        return out;
    }
    let u = select_pivot(ctx, p, x);
    let candidates: Vec<NodeId> = p.diff(ctx.neigh(u)).to_vec();
    let range = 0..candidates.len();
    bk_split_branches(ctx, p, x, r, &candidates, range, depth_left)
}

/// Processes the pivot branches `candidates[range]`, where `p`/`x`
/// are already adjusted for `range.start` (earlier candidates moved
/// from P to X). Ranges split via `join` — the right half (with its
/// adjusted P/X) is published for stealing while the left half runs
/// on the calling worker — down to single branches, which descend
/// with one less level of parallel budget.
fn bk_split_branches<S: Set>(
    ctx: &SearchCtx<'_, S>,
    p: &S,
    x: &S,
    r: &[NodeId],
    candidates: &[NodeId],
    range: std::ops::Range<usize>,
    depth_left: usize,
) -> LocalOut {
    match range.len() {
        0 => LocalOut::empty(),
        1 => {
            let v = candidates[range.start];
            let nv = ctx.neigh(v);
            let p_new = p.intersect(nv);
            let x_new = x.intersect(nv);
            let mut r_new = r.to_vec();
            r_new.push(v);
            if ctx.per_level {
                let h = per_level_subgraph(ctx, &p_new, &x_new);
                let child = SearchCtx {
                    graph: ctx.graph,
                    subgraph: Some(&h),
                    per_level: true,
                    collect: ctx.collect,
                    cancel: ctx.cancel,
                };
                bk_pivot_par(&child, &p_new, &r_new, &x_new, depth_left - 1)
            } else {
                bk_pivot_par(ctx, &p_new, &r_new, &x_new, depth_left - 1)
            }
        }
        len => {
            let mid = range.start + len / 2;
            // The right half sees the left half's candidates moved
            // P → X (the sequential loop's post-iteration updates,
            // applied in bulk).
            let mut p_right = p.clone();
            let mut x_right = x.clone();
            for &w in &candidates[range.start..mid] {
                p_right.remove(w);
                x_right.add(w);
            }
            let (left_start, left_end) = (range.start, mid);
            let (mut left, right) = rayon::join(
                || bk_split_branches(ctx, p, x, r, candidates, left_start..left_end, depth_left),
                || {
                    bk_split_branches(
                        ctx,
                        &p_right,
                        &x_right,
                        r,
                        candidates,
                        mid..range.end,
                        depth_left,
                    )
                },
            );
            left.absorb(right);
            left
        }
    }
}

/// Runs Bron–Kerbosch with pivoting over set representation `S`.
pub fn bron_kerbosch<S: Set>(graph: &CsrGraph, config: &BkConfig) -> BkOutcome {
    bron_kerbosch_cancellable::<S>(graph, config, &CancelToken::none())
}

/// [`bron_kerbosch`] with a cooperative [`CancelToken`] probed at
/// every recursion entry. When the token fires mid-search the walk
/// unwinds early and the returned counts are partial — callers must
/// check the token and discard the outcome.
pub fn bron_kerbosch_cancellable<S: Set>(
    graph: &CsrGraph,
    config: &BkConfig,
    cancel: &CancelToken,
) -> BkOutcome {
    let t0 = Instant::now();
    let rank = config.ordering.compute(graph);
    let relabeled = relabel(graph, &rank);
    let order = rank.order(); // order[new_id] = original id
    let preprocess = t0.elapsed();

    let t1 = Instant::now();
    let set_graph: SetGraph<S> = SetGraph::from_csr(&relabeled);
    let n = relabeled.num_vertices();

    let merged = (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            if cancel.is_cancelled() {
                return LocalOut::empty();
            }
            // Line 13: split N(v) by the processing order.
            let neigh = relabeled.neighbors_slice(v);
            let split = neigh.partition_point(|&w| w < v);
            let mut p = S::from_sorted(&neigh[split..]);
            let mut x = S::from_sorted(&neigh[..split]);

            let h_store;
            let subgraph = if config.subgraph != SubgraphMode::None {
                // §6.2: H = induced subgraph on P ∪ X; under
                // `Outermost` it is computed once here and reused down
                // the whole search tree.
                let px = p.union(&x);
                let mut h: FxHashMap<NodeId, S> = FxHashMap::default();
                for w in px.iter() {
                    h.insert(w, set_graph.neighborhood(w).intersect(&px));
                }
                h_store = h;
                Some(&h_store)
            } else {
                None
            };

            let ctx = SearchCtx {
                graph: &set_graph,
                subgraph,
                per_level: config.subgraph == SubgraphMode::PerLevel,
                collect: config.collect,
                cancel,
            };
            let r = vec![v];
            if config.par_depth > 0 && rayon::current_num_threads() > 1 {
                // Subtree tasks below the root: skewed branches are
                // published for stealing down to `par_depth` levels.
                bk_pivot_par(&ctx, &p, &r, &x, config.par_depth)
            } else {
                let mut out = LocalOut::empty();
                let mut r = r;
                with_worker_scratch::<SetPool<S>, _>(|scratch| {
                    bk_pivot(&ctx, &mut p, &mut r, &mut x, scratch, &mut out);
                });
                out
            }
        })
        .reduce(LocalOut::empty, |mut a, b| {
            a.absorb(b);
            a
        });
    let mine = t1.elapsed();

    let cliques = config.collect.then(|| {
        let mut cliques: Vec<Vec<NodeId>> = merged
            .cliques
            .into_iter()
            .map(|clique| {
                let mut original: Vec<NodeId> =
                    clique.into_iter().map(|v| order[v as usize]).collect();
                original.sort_unstable();
                original
            })
            .collect();
        cliques.sort();
        cliques
    });

    BkOutcome {
        clique_count: merged.count,
        largest: merged.largest,
        cliques,
        preprocess,
        mine,
    }
}

/// Named Bron–Kerbosch variants from the paper's evaluation (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BkVariant {
    /// Das et al. (ParMCE) baseline shape: degeneracy order, hash-set
    /// adjacency, and per-top-level-vertex induced-subgraph
    /// materialization — the data-structure design of the original
    /// ParMCE code that the GMS variants' set-layout choices improve
    /// on.
    Das,
    /// GMS + simple degree ordering, roaring sets.
    GmsDeg,
    /// GMS + exact degeneracy order (Eppstein-style), roaring sets.
    GmsDgr,
    /// GMS + approximate degeneracy order (this paper).
    GmsAdg,
    /// GMS-ADG plus the induced-subgraph optimization (this paper).
    GmsAdgS,
}

impl BkVariant {
    /// All variants in presentation order.
    pub const ALL: [BkVariant; 5] = [
        BkVariant::Das,
        BkVariant::GmsDeg,
        BkVariant::GmsDgr,
        BkVariant::GmsAdg,
        BkVariant::GmsAdgS,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            BkVariant::Das => "BK-DAS",
            BkVariant::GmsDeg => "BK-GMS-DEG",
            BkVariant::GmsDgr => "BK-GMS-DGR",
            BkVariant::GmsAdg => "BK-GMS-ADG",
            BkVariant::GmsAdgS => "BK-GMS-ADG-S",
        }
    }

    /// Runs the variant (counting only).
    pub fn run(&self, graph: &CsrGraph) -> BkOutcome {
        self.run_with(graph, false)
    }

    /// Runs the variant, optionally collecting the cliques.
    pub fn run_with(&self, graph: &CsrGraph, collect: bool) -> BkOutcome {
        self.run_cancellable(graph, collect, &CancelToken::none())
    }

    /// [`BkVariant::run_with`] under a cooperative [`CancelToken`];
    /// a fired token yields a partial outcome the caller discards.
    pub fn run_cancellable(
        &self,
        graph: &CsrGraph,
        collect: bool,
        cancel: &CancelToken,
    ) -> BkOutcome {
        let config = |ordering, subgraph| BkConfig {
            ordering,
            subgraph,
            collect,
            ..BkConfig::default()
        };
        match self {
            BkVariant::Das => bron_kerbosch_cancellable::<HashVertexSet>(
                graph,
                &config(OrderingKind::Degeneracy, SubgraphMode::PerLevel),
                cancel,
            ),
            BkVariant::GmsDeg => bron_kerbosch_cancellable::<DenseBitSet>(
                graph,
                &config(OrderingKind::Degree, SubgraphMode::None),
                cancel,
            ),
            BkVariant::GmsDgr => bron_kerbosch_cancellable::<DenseBitSet>(
                graph,
                &config(OrderingKind::Degeneracy, SubgraphMode::None),
                cancel,
            ),
            BkVariant::GmsAdg => bron_kerbosch_cancellable::<DenseBitSet>(
                graph,
                &config(OrderingKind::ApproxDegeneracy(0.25), SubgraphMode::None),
                cancel,
            ),
            BkVariant::GmsAdgS => bron_kerbosch_cancellable::<DenseBitSet>(
                graph,
                &config(
                    OrderingKind::ApproxDegeneracy(0.25),
                    SubgraphMode::Outermost,
                ),
                cancel,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{is_maximal_clique, maximal_cliques_brute};
    use gms_core::{RoaringSet, SortedVecSet};

    fn check_against_brute(graph: &CsrGraph) {
        let expected = maximal_cliques_brute(graph);
        for variant in BkVariant::ALL {
            let outcome = variant.run_with(graph, true);
            assert_eq!(
                outcome.clique_count as usize,
                expected.len(),
                "{} count",
                variant.label()
            );
            assert_eq!(
                outcome.cliques.as_ref().unwrap(),
                &expected,
                "{} cliques",
                variant.label()
            );
        }
    }

    #[test]
    fn paw_graph() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        check_against_brute(&g);
    }

    #[test]
    fn complete_graph_has_one_maximal_clique() {
        let g = gms_gen::complete(7);
        let outcome = BkVariant::GmsAdg.run_with(&g, true);
        assert_eq!(outcome.clique_count, 1);
        assert_eq!(outcome.largest, 7);
        assert_eq!(outcome.cliques.unwrap()[0], (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn random_graphs_match_brute_force() {
        for seed in 0..5 {
            let g = gms_gen::gnp(24, 0.35, seed);
            check_against_brute(&g);
        }
    }

    #[test]
    fn planted_cliques_are_found() {
        let (g, groups) = gms_gen::planted_cliques(120, 0.02, 2, 9, 3);
        let outcome = BkVariant::GmsAdgS.run_with(&g, true);
        let cliques = outcome.cliques.unwrap();
        for group in &groups {
            let mut sorted = group.clone();
            sorted.sort_unstable();
            assert!(
                cliques
                    .iter()
                    .any(|c| { sorted.iter().all(|v| c.contains(v)) }),
                "planted clique {sorted:?} missing"
            );
        }
        assert!(outcome.largest >= 9);
        // Every reported clique really is maximal.
        for clique in &cliques {
            assert!(is_maximal_clique(&g, clique));
        }
    }

    #[test]
    fn all_set_backends_agree() {
        let g = gms_gen::gnp(40, 0.25, 11);
        let config = BkConfig {
            ordering: OrderingKind::Degeneracy,
            subgraph: SubgraphMode::None,
            collect: true,
            ..BkConfig::default()
        };
        let a = bron_kerbosch::<SortedVecSet>(&g, &config);
        let b = bron_kerbosch::<RoaringSet>(&g, &config);
        let c = bron_kerbosch::<DenseBitSet>(&g, &config);
        let d = bron_kerbosch::<HashVertexSet>(&g, &config);
        assert_eq!(a.cliques, b.cliques);
        assert_eq!(a.cliques, c.cliques);
        assert_eq!(a.cliques, d.cliques);
    }

    #[test]
    fn subgraph_optimization_is_transparent() {
        let g = gms_gen::gnp(60, 0.15, 21);
        let base = bron_kerbosch::<RoaringSet>(
            &g,
            &BkConfig {
                ordering: OrderingKind::ApproxDegeneracy(0.1),
                subgraph: SubgraphMode::None,
                collect: true,
                ..BkConfig::default()
            },
        );
        let opt = bron_kerbosch::<RoaringSet>(
            &g,
            &BkConfig {
                ordering: OrderingKind::ApproxDegeneracy(0.1),
                subgraph: SubgraphMode::Outermost,
                collect: true,
                ..BkConfig::default()
            },
        );
        assert_eq!(base.cliques, opt.cliques);
    }

    #[test]
    fn throughput_is_positive() {
        let g = gms_gen::gnp(50, 0.2, 1);
        let outcome = BkVariant::GmsAdg.run(&g);
        assert!(outcome.throughput() > 0.0);
        assert!(outcome.cliques.is_none());
    }

    #[test]
    fn fired_token_unwinds_with_a_partial_count() {
        let (g, _) = gms_gen::planted_cliques(200, 0.03, 3, 8, 1);
        assert!(BkVariant::GmsAdg.run(&g).clique_count > 0);
        let token = CancelToken::manual();
        token.cancel();
        // A token fired before the search starts prunes every root.
        let partial = BkVariant::GmsAdg.run_cancellable(&g, false, &token);
        assert_eq!(partial.clique_count, 0);
        // An unfired token changes nothing.
        let live = BkVariant::GmsAdg.run_cancellable(&g, false, &CancelToken::manual());
        assert_eq!(live.clique_count, BkVariant::GmsAdg.run(&g).clique_count);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = CsrGraph::from_undirected_edges(0, &[]);
        assert_eq!(BkVariant::GmsAdg.run(&empty).clique_count, 0);
        let isolated = CsrGraph::from_undirected_edges(4, &[]);
        let outcome = BkVariant::GmsAdg.run_with(&isolated, true);
        // Each isolated vertex is a maximal 1-clique.
        assert_eq!(outcome.clique_count, 4);
        assert_eq!(outcome.largest, 1);
    }
}
