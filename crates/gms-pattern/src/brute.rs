//! Brute-force oracles for clique problems. Exponential-time reference
//! implementations used to validate the optimized kernels on small
//! graphs — every fast algorithm in this crate is tested against
//! these.

use gms_core::{CsrGraph, Graph, NodeId};

/// `true` iff `vertices` induce a complete subgraph.
pub fn is_clique(graph: &CsrGraph, vertices: &[NodeId]) -> bool {
    vertices
        .iter()
        .enumerate()
        .all(|(i, &u)| vertices[i + 1..].iter().all(|&v| graph.has_edge(u, v)))
}

/// `true` iff `vertices` form a clique no vertex can extend.
pub fn is_maximal_clique(graph: &CsrGraph, vertices: &[NodeId]) -> bool {
    if !is_clique(graph, vertices) {
        return false;
    }
    graph
        .vertices()
        .all(|w| vertices.contains(&w) || !vertices.iter().all(|&v| graph.has_edge(v, w)))
}

/// Enumerates all maximal cliques by subset expansion — O(3^(n/3))
/// worst case; keep `n` small. Cliques and their vertices are sorted
/// for canonical comparison.
pub fn maximal_cliques_brute(graph: &CsrGraph) -> Vec<Vec<NodeId>> {
    let n = graph.num_vertices();
    let mut result = Vec::new();
    // Simple recursive expansion without pivoting.
    fn expand(
        graph: &CsrGraph,
        clique: &mut Vec<NodeId>,
        candidates: &[NodeId],
        excluded: &[NodeId],
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if candidates.is_empty() && excluded.is_empty() {
            out.push(clique.clone());
            return;
        }
        let mut cands = candidates.to_vec();
        let mut excl = excluded.to_vec();
        while let Some(v) = cands.first().copied() {
            let next_c: Vec<NodeId> = cands
                .iter()
                .copied()
                .filter(|&w| graph.has_edge(v, w))
                .collect();
            let next_x: Vec<NodeId> = excl
                .iter()
                .copied()
                .filter(|&w| graph.has_edge(v, w))
                .collect();
            clique.push(v);
            expand(graph, clique, &next_c, &next_x, out);
            clique.pop();
            cands.remove(0);
            excl.push(v);
        }
    }
    let all: Vec<NodeId> = (0..n as NodeId).collect();
    expand(graph, &mut Vec::new(), &all, &[], &mut result);
    for clique in &mut result {
        clique.sort_unstable();
    }
    result.sort();
    result
}

/// Counts `k`-cliques by enumerating all `k`-subsets of each vertex's
/// forward neighborhood — O(n^k); keep inputs tiny.
pub fn count_k_cliques_brute(graph: &CsrGraph, k: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    if k == 1 {
        return graph.num_vertices() as u64;
    }
    fn extend(
        graph: &CsrGraph,
        chosen: &mut Vec<NodeId>,
        start: NodeId,
        k: usize,
        count: &mut u64,
    ) {
        if chosen.len() == k {
            *count += 1;
            return;
        }
        for v in start..graph.num_vertices() as NodeId {
            if chosen.iter().all(|&u| graph.has_edge(u, v)) {
                chosen.push(v);
                extend(graph, chosen, v + 1, k, count);
                chosen.pop();
            }
        }
    }
    let mut count = 0;
    extend(graph, &mut Vec::new(), 0, k, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_predicates() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_clique(&g, &[0, 1, 3]));
        assert!(is_maximal_clique(&g, &[0, 1, 2]));
        assert!(is_maximal_clique(&g, &[2, 3]));
        assert!(!is_maximal_clique(&g, &[0, 1])); // extendable by 2
    }

    #[test]
    fn brute_enumeration_on_paw_graph() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(maximal_cliques_brute(&g), vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn brute_kclique_on_k5() {
        let g = gms_gen::complete(5);
        // C(5, k)
        assert_eq!(count_k_cliques_brute(&g, 2), 10);
        assert_eq!(count_k_cliques_brute(&g, 3), 10);
        assert_eq!(count_k_cliques_brute(&g, 4), 5);
        assert_eq!(count_k_cliques_brute(&g, 5), 1);
        assert_eq!(count_k_cliques_brute(&g, 6), 0);
    }

    #[test]
    fn empty_graph_has_one_empty_maximal_clique_set() {
        let g = CsrGraph::from_undirected_edges(3, &[]);
        // Three isolated vertices: each is a maximal 1-clique.
        assert_eq!(maximal_cliques_brute(&g), vec![vec![0], vec![1], vec![2]]);
    }
}
