//! Dense (non-clique) subgraph discovery (§4.1.1, Table 4, §A): the
//! relaxations of clique mining the paper's specification covers —
//! densest subgraph (average-degree objective, Charikar-style peeling
//! giving a 2-approximation), k-truss decomposition (edge-support
//! peeling; every edge of a k-truss closes at least k−2 triangles),
//! and γ-quasi-clique verification.

use gms_core::hash::FxHashMap;
use gms_core::{CsrGraph, Graph, NodeId, Set, SortedVecSet};
use gms_graph::induced_subgraph;

/// Result of the densest-subgraph peeling.
#[derive(Clone, Debug)]
pub struct DensestSubgraph {
    /// Vertices of the best prefix found.
    pub vertices: Vec<NodeId>,
    /// Its density `|E(S)| / |S|` (half the average degree).
    pub density: f64,
}

/// Charikar's greedy 2-approximation: repeatedly remove a minimum-
/// degree vertex (the same peeling as the degeneracy order) and keep
/// the intermediate subgraph maximizing `|E(S)| / |S|`.
pub fn densest_subgraph(graph: &CsrGraph) -> DensestSubgraph {
    let n = graph.num_vertices();
    if n == 0 {
        return DensestSubgraph {
            vertices: Vec::new(),
            density: 0.0,
        };
    }
    // Peel with a bucket queue, tracking density after each removal.
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as NodeId)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_degree + 1];
    let mut position = vec![0usize; n];
    let mut bucket_of = degree.clone();
    for v in 0..n {
        position[v] = buckets[degree[v]].len();
        buckets[degree[v]].push(v as NodeId);
    }
    let mut removed = vec![false; n];
    let mut removal_order = Vec::with_capacity(n);
    let mut edges_left = graph.num_edges_undirected();
    let mut vertices_left = n;
    let mut current = 0usize;
    // (density, removals made): start with the whole graph.
    let mut best = (edges_left as f64 / n as f64, 0usize);

    for step in 0..n {
        while current <= max_degree && buckets[current].is_empty() {
            current += 1;
        }
        let v = buckets[current].pop().expect("non-empty bucket");
        removed[v as usize] = true;
        removal_order.push(v);
        edges_left -= degree[v as usize];
        vertices_left -= 1;
        for w in graph.neighbors(v) {
            let w = w as usize;
            if removed[w] {
                continue;
            }
            let b = bucket_of[w];
            let pos = position[w];
            let last = buckets[b].pop().expect("bucket non-empty");
            if last != w as NodeId {
                buckets[b][pos] = last;
                position[last as usize] = pos;
            }
            bucket_of[w] = b - 1;
            position[w] = buckets[b - 1].len();
            buckets[b - 1].push(w as NodeId);
            degree[w] -= 1;
            if b - 1 < current {
                current = b - 1;
            }
        }
        if vertices_left > 0 {
            let density = edges_left as f64 / vertices_left as f64;
            if density > best.0 {
                best = (density, step + 1);
            }
        }
    }

    // The best subgraph = everything not yet removed after `best.1`
    // removals.
    let removed_set: std::collections::HashSet<NodeId> =
        removal_order[..best.1].iter().copied().collect();
    let vertices: Vec<NodeId> = graph
        .vertices()
        .filter(|v| !removed_set.contains(v))
        .collect();
    DensestSubgraph {
        vertices,
        density: best.0,
    }
}

/// Density `|E(S)| / |S|` of an induced subgraph.
pub fn subgraph_density(graph: &CsrGraph, vertices: &[NodeId]) -> f64 {
    if vertices.is_empty() {
        return 0.0;
    }
    let (sub, _) = induced_subgraph(graph, vertices);
    sub.num_edges_undirected() as f64 / vertices.len() as f64
}

/// `true` iff `vertices` induce a γ-quasi-clique: at least
/// `γ · |S|·(|S|−1)/2` induced edges.
pub fn is_quasi_clique(graph: &CsrGraph, vertices: &[NodeId], gamma: f64) -> bool {
    assert!((0.0..=1.0).contains(&gamma));
    let s = vertices.len();
    if s < 2 {
        return true;
    }
    let (sub, _) = induced_subgraph(graph, vertices);
    sub.num_edges_undirected() as f64 >= gamma * (s * (s - 1)) as f64 / 2.0 - 1e-9
}

/// Truss decomposition: for every edge, the largest `k` such that the
/// edge survives in the k-truss (the maximal subgraph where every edge
/// participates in ≥ k−2 triangles). Returns a map from normalized
/// edges to their truss numbers (≥ 2 for every edge).
pub fn truss_decomposition(graph: &CsrGraph) -> FxHashMap<(NodeId, NodeId), u32> {
    // Support = number of triangles through each edge.
    let mut support: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
    let neighborhoods: Vec<SortedVecSet> = graph
        .vertices()
        .map(|v| SortedVecSet::from_sorted(graph.neighbors_slice(v)))
        .collect();
    for (u, v) in graph.edges_undirected() {
        let common = neighborhoods[u as usize].intersect_count(&neighborhoods[v as usize]);
        support.insert((u, v), common as u32);
    }
    // Peel edges in increasing support (bucket queue over support).
    let mut alive: FxHashMap<(NodeId, NodeId), bool> = support.keys().map(|&e| (e, true)).collect();
    let mut edges: Vec<(NodeId, NodeId)> = support.keys().copied().collect();
    edges.sort_unstable();
    let mut truss: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
    let mut k = 2u32;
    let mut remaining = edges.len();
    while remaining > 0 {
        // Peel all edges with support <= k - 2 at the current level.
        loop {
            let mut peel: Vec<(NodeId, NodeId)> = support
                .iter()
                .filter(|(e, &s)| alive[*e] && s + 2 <= k)
                .map(|(&e, _)| e)
                .collect();
            if peel.is_empty() {
                break;
            }
            peel.sort_unstable();
            for e in peel {
                if !alive[&e] {
                    continue;
                }
                alive.insert(e, false);
                truss.insert(e, k);
                remaining -= 1;
                let (u, v) = e;
                // Each common alive neighbor w loses one triangle on
                // edges (u,w) and (v,w).
                let common = neighborhoods[u as usize].intersect(&neighborhoods[v as usize]);
                for w in common.iter() {
                    for other in [
                        gms_core::normalize_edge(u, w),
                        gms_core::normalize_edge(v, w),
                    ] {
                        if alive.get(&other).copied().unwrap_or(false) {
                            if let Some(s) = support.get_mut(&other) {
                                *s = s.saturating_sub(1);
                            }
                        }
                    }
                }
            }
        }
        k += 1;
        debug_assert!(k < 100_000, "truss peeling failed to progress");
    }
    truss
}

/// Maximum truss number in the graph (0 on edgeless graphs).
pub fn max_truss(graph: &CsrGraph) -> u32 {
    truss_decomposition(graph)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

/// Vertices of the `k`-truss (the subgraph of edges with truss ≥ k).
pub fn k_truss_vertices(graph: &CsrGraph, k: u32) -> Vec<NodeId> {
    let truss = truss_decomposition(graph);
    let mut vertices: Vec<NodeId> = truss
        .iter()
        .filter(|(_, &t)| t >= k)
        .flat_map(|(&(u, v), _)| [u, v])
        .collect();
    vertices.sort_unstable();
    vertices.dedup();
    vertices
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_with_tail(k: usize) -> CsrGraph {
        let mut edges = vec![(k as u32 - 1, k as u32), (k as u32, k as u32 + 1)];
        for i in 0..k as u32 {
            for j in i + 1..k as u32 {
                edges.push((i, j));
            }
        }
        CsrGraph::from_undirected_edges(k + 2, &edges)
    }

    #[test]
    fn densest_subgraph_finds_the_planted_clique() {
        let (g, groups) = gms_gen::planted_cliques(300, 0.01, 1, 12, 5);
        let result = densest_subgraph(&g);
        // The 12-clique has density 11/2 = 5.5; the sparse background
        // cannot reach that, so all planted members must survive.
        let mut expected = groups[0].clone();
        expected.sort_unstable();
        for v in &expected {
            assert!(result.vertices.contains(v), "clique member {v} peeled away");
        }
        assert!(result.density >= 5.5 - 1e9_f64.recip());
    }

    #[test]
    fn densest_subgraph_density_matches_recount() {
        let g = gms_gen::gnp(120, 0.08, 3);
        let result = densest_subgraph(&g);
        let recount = subgraph_density(&g, &result.vertices);
        assert!(
            (result.density - recount).abs() < 1e-9,
            "{} vs {recount}",
            result.density
        );
        // 2-approximation sanity: at least half the global density.
        use gms_core::Graph as _;
        let global = g.num_edges_undirected() as f64 / g.num_vertices() as f64;
        assert!(result.density >= global / 2.0);
    }

    #[test]
    fn quasi_clique_thresholds() {
        let g = clique_with_tail(5);
        let clique: Vec<NodeId> = (0..5).collect();
        assert!(is_quasi_clique(&g, &clique, 1.0));
        let with_tail: Vec<NodeId> = (0..6).collect();
        assert!(!is_quasi_clique(&g, &with_tail, 1.0));
        assert!(is_quasi_clique(&g, &with_tail, 0.7)); // 11 of 15 pairs
        assert!(
            is_quasi_clique(&g, &[0], 1.0),
            "singletons are trivially dense"
        );
    }

    #[test]
    fn truss_of_clique_is_its_size() {
        // In K5, every edge lies in 3 triangles → 5-truss.
        let g = gms_gen::complete(5);
        let truss = truss_decomposition(&g);
        assert_eq!(truss.len(), 10);
        assert!(truss.values().all(|&t| t == 5));
        assert_eq!(max_truss(&g), 5);
    }

    #[test]
    fn truss_separates_clique_from_tail() {
        let g = clique_with_tail(5);
        let truss = truss_decomposition(&g);
        // Tail edges have no triangles → truss 2.
        assert_eq!(truss[&(5, 6)], 2);
        assert_eq!(truss[&(4, 5)], 2);
        // Clique edges reach truss 5.
        assert_eq!(truss[&(0, 1)], 5);
        assert_eq!(k_truss_vertices(&g, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(k_truss_vertices(&g, 2).len(), 7);
    }

    #[test]
    fn triangle_free_graphs_are_two_trusses() {
        let g = gms_gen::grid(6, 6);
        let truss = truss_decomposition(&g);
        assert!(truss.values().all(|&t| t == 2));
    }

    #[test]
    fn truss_at_most_core_plus_one() {
        // Known relation: truss(e) ≤ core(u) + 1 for e = (u, v).
        let g = gms_gen::gnp(80, 0.12, 9);
        let truss = truss_decomposition(&g);
        let cores = gms_order::degeneracy_order(&g).core_numbers;
        for (&(u, v), &t) in &truss {
            let bound = cores[u as usize].min(cores[v as usize]) + 1;
            assert!(t <= bound, "edge ({u},{v}): truss {t} > core bound {bound}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_undirected_edges(4, &[]);
        assert_eq!(max_truss(&g), 0);
        let result = densest_subgraph(&g);
        assert_eq!(result.density, 0.0);
    }
}
