//! # gms-pattern
//!
//! Graph pattern matching kernels — the heart of the GMS use cases:
//!
//! * [`bk`] — parallel Bron–Kerbosch maximal clique listing with
//!   pivoting (Algorithm 6) in five named variants, including the
//!   paper's new BK-ADG and BK-ADG-S;
//! * [`kclique`] — k-clique counting/listing (Algorithm 7) with node-
//!   and edge-parallel drivers and swappable orderings;
//! * [`triangles`] — node-iterator and rank-merge triangle counting;
//! * [`clique_star`] — k-clique-star listing via (k+1)-cliques (§6.6);
//! * [`brute`] — exponential oracles every kernel is tested against.
//!
//! All kernels are generic over the [`gms_core::Set`] layout (⑤⁺) and
//! take an [`gms_order::OrderingKind`] preprocessing order (③).

#![warn(missing_docs)]

pub mod bk;
pub mod brute;
pub mod clique_star;
pub mod dense;
pub mod kclique;
pub mod scratch;
pub mod triangles;

pub use bk::{
    bron_kerbosch, bron_kerbosch_cancellable, BkConfig, BkOutcome, BkVariant, SubgraphMode,
};
pub use clique_star::{k_clique_stars, CliqueStar};
pub use dense::{
    densest_subgraph, is_quasi_clique, k_truss_vertices, max_truss, truss_decomposition,
    DensestSubgraph,
};
pub use kclique::{
    k_clique_count, k_clique_count_cancellable, k_clique_count_cancellable_with,
    k_clique_count_with, k_clique_list, KcConfig, KcOutcome, KcParallel, KcVariant,
};
pub use triangles::{
    triangle_count_compressed, triangle_count_node_iterator, triangle_count_rank_merge,
    triangle_count_touched,
};
