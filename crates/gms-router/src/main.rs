//! The `gms-router` binary: front a fleet of `gms-serve` backends
//! behind one address speaking the same protocol.
//!
//! Two ways to name the fleet:
//!
//! - `--backends host:port,host:port,...` — join already-running
//!   backends (the operator owns their lifecycle).
//! - `--spawn N` — self-managed mode: fork N local `gms-serve`
//!   children on ephemeral ports, front them, and shut them down
//!   with the router. The `gms-serve` binary is found next to the
//!   `gms-router` executable, or via `GMS_ROUTER_SERVE_BIN`.
//!
//! Flags (each also readable from the environment):
//!
//! | flag | env | default | meaning |
//! |---|---|---|---|
//! | `--addr` | `GMS_ROUTER_ADDR_BIND` | `127.0.0.1:0` | bind address (port 0 = ephemeral) |
//! | `--addr-file` | `GMS_ROUTER_ADDR_FILE` | — | write the bound address to this file |
//! | `--backends` | `GMS_ROUTER_BACKENDS` | — | comma-separated backend addresses |
//! | `--spawn` | `GMS_ROUTER_SPAWN` | 0 | fork this many local gms-serve children instead |
//! | `--spawn-workers` | `GMS_ROUTER_SPAWN_WORKERS` | 2 | `--workers` for each child |
//! | `--spawn-queue` | `GMS_ROUTER_SPAWN_QUEUE` | 64 | `--queue` for each child |

use gms_router::{Router, RouterConfig};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn arg_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

fn parse_or<T: std::str::FromStr>(value: Option<String>, default: T, flag: &str) -> T {
    match value {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("gms-router: unparsable value {text:?} for {flag}");
            std::process::exit(2);
        }),
    }
}

/// Locates the `gms-serve` binary for `--spawn`: the env override,
/// else a sibling of the running `gms-router` executable.
fn serve_binary() -> PathBuf {
    if let Ok(path) = std::env::var("GMS_ROUTER_SERVE_BIN") {
        return PathBuf::from(path);
    }
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("gms-serve")));
    match sibling {
        Some(path) if path.exists() => path,
        _ => {
            eprintln!(
                "gms-router: cannot locate the gms-serve binary for --spawn \
                 (set GMS_ROUTER_SERVE_BIN or place it next to gms-router)"
            );
            std::process::exit(1);
        }
    }
}

/// Forks one `gms-serve` child on an ephemeral port and waits for it
/// to publish its address through `--addr-file`.
fn spawn_backend(bin: &PathBuf, index: usize, workers: usize, queue: usize) -> (Child, String) {
    let addr_file = std::env::temp_dir().join(format!(
        "gms-router-{}-backend-{index}.addr",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_file.display().to_string(),
            "--workers",
            &workers.to_string(),
            "--queue",
            &queue.to_string(),
        ])
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("gms-router: cannot spawn {}: {e}", bin.display());
            std::process::exit(1);
        });
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("gms-router: backend {index} never published its address");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = std::fs::remove_file(&addr_file);
    (child, addr)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spawn_count: usize = parse_or(
        arg_or_env(&args, "--spawn", "GMS_ROUTER_SPAWN"),
        0,
        "--spawn",
    );
    let backends_flag = arg_or_env(&args, "--backends", "GMS_ROUTER_BACKENDS");
    let addr_file = arg_or_env(&args, "--addr-file", "GMS_ROUTER_ADDR_FILE");

    let mut children: Vec<Child> = Vec::new();
    let backends: Vec<String> = if spawn_count > 0 {
        let bin = serve_binary();
        let workers = parse_or(
            arg_or_env(&args, "--spawn-workers", "GMS_ROUTER_SPAWN_WORKERS"),
            2,
            "--spawn-workers",
        );
        let queue = parse_or(
            arg_or_env(&args, "--spawn-queue", "GMS_ROUTER_SPAWN_QUEUE"),
            64,
            "--spawn-queue",
        );
        (0..spawn_count)
            .map(|index| {
                let (child, addr) = spawn_backend(&bin, index, workers, queue);
                children.push(child);
                addr
            })
            .collect()
    } else {
        backends_flag
            .as_deref()
            .unwrap_or("")
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    if backends.is_empty() {
        eprintln!("gms-router: pass --backends host:port,... or --spawn N");
        std::process::exit(2);
    }

    let config = RouterConfig {
        addr: arg_or_env(&args, "--addr", "GMS_ROUTER_ADDR_BIND")
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        backends,
        // Spawned children belong to this process: take them down
        // with the router.
        shutdown_backends: spawn_count > 0,
        ..RouterConfig::default()
    };
    let handle = Router::start(config).unwrap_or_else(|e| {
        eprintln!("gms-router: failed to start: {e}");
        for child in &mut children {
            let _ = child.kill();
        }
        std::process::exit(1);
    });
    println!("gms-router listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, handle.addr().to_string()) {
            eprintln!("gms-router: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
    }
    handle.join();
    for mut child in children {
        let _ = child.wait();
    }
    println!("gms-router: shut down cleanly");
}
