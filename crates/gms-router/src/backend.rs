//! One backend shard as the router sees it: an address, a capacity
//! weight, a health flag, and a pool of reusable protocol
//! connections.
//!
//! Pooled requests go through
//! [`Client::request_idempotent`](gms_serve::Client::request_idempotent),
//! so a single stale pooled connection (the server restarted, an
//! idle socket timed out) heals transparently with one reconnect —
//! while a backend that is actually gone surfaces as an I/O error
//! the router turns into failover.

use gms_serve::{Client, ClientConfig, Json};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A registered shard.
pub struct Backend {
    /// The shard's address (also its ring identity).
    pub addr: SocketAddr,
    /// Ring weight — the backend's worker count from its `health`
    /// response at registration.
    pub weight: usize,
    healthy: AtomicBool,
    idle: Mutex<Vec<Client>>,
    config: ClientConfig,
    /// Requests this shard served through the router.
    pub served: AtomicU64,
}

impl Backend {
    /// Registers a backend: dials it, probes `health` to learn its
    /// capacity (worker count), and starts with an empty pool.
    pub fn register(addr: SocketAddr, config: ClientConfig) -> std::io::Result<Self> {
        let mut client = Client::connect_with(addr, config)?;
        let health = client.health()?;
        let weight = health
            .get("workers")
            .and_then(Json::as_i64)
            .unwrap_or(1)
            .max(1) as usize;
        let backend = Self {
            addr,
            weight,
            healthy: AtomicBool::new(true),
            idle: Mutex::new(Vec::new()),
            config,
            served: AtomicU64::new(0),
        };
        backend.put(client);
        Ok(backend)
    }

    /// Whether the router currently considers this shard alive.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Marks the shard dead; returns `true` on the transition (the
    /// caller that wins the race runs failover exactly once). The
    /// pool is drained — every pooled connection is to a dead peer.
    pub fn mark_down(&self) -> bool {
        let transitioned = self.healthy.swap(false, Ordering::SeqCst);
        if transitioned {
            self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        transitioned
    }

    fn take(&self) -> std::io::Result<Client> {
        if let Some(client) = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(client);
        }
        Client::connect_with(self.addr, self.config)
    }

    fn put(&self, client: Client) {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(client);
    }

    /// Sends one idempotent request through a pooled connection. On
    /// success the connection returns to the pool; on failure it is
    /// dropped (the caller decides whether the backend is dead).
    pub fn request(&self, request: &Json) -> std::io::Result<Json> {
        let mut client = self.take()?;
        match client.request_idempotent(request) {
            Ok(response) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                self.put(client);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// A liveness probe with its own (short) deadline, independent of
    /// the pool: `true` iff the backend answers `health` in time.
    pub fn probe(&self, timeout: Duration) -> bool {
        let config = ClientConfig {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
        };
        match Client::connect_with(self.addr, config) {
            Ok(mut client) => matches!(
                client.health(),
                Ok(ref h) if h.get("ok") == Some(&Json::Bool(true))
            ),
            Err(_) => false,
        }
    }
}
