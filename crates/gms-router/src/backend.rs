//! One backend shard as the router sees it: an address, a capacity
//! weight, a health flag, and a pool of reusable protocol
//! connections.
//!
//! Pooled requests go through
//! [`Client::request_idempotent`](gms_serve::Client::request_idempotent),
//! so a single stale pooled connection (the server restarted, an
//! idle socket timed out) heals transparently with one reconnect —
//! while a backend that is actually gone surfaces as an I/O error
//! the router turns into failover.

use gms_serve::{Client, ClientConfig, Json};
use std::io::ErrorKind;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Grace on top of a caller deadline before the router stops waiting
/// on a shard: covers the shard's strided cancellation checks plus
/// one response transit.
const DEADLINE_SLACK: Duration = Duration::from_millis(500);

/// How a routed request failed — the distinction drives failover.
#[derive(Debug)]
pub enum RequestError {
    /// The caller's deadline (plus slack) lapsed waiting on the
    /// shard. The shard may be perfectly healthy and merely slow to
    /// cancel, so the router answers a typed `deadline-exceeded` and
    /// must **not** declare the backend dead.
    DeadlineLapsed,
    /// Transport failure after the one-reconnect retry: the shard is
    /// genuinely unreachable and failover should run.
    Dead(std::io::Error),
}

/// A registered shard.
pub struct Backend {
    /// The shard's address (also its ring identity).
    pub addr: SocketAddr,
    /// Ring weight — the backend's worker count from its `health`
    /// response at registration.
    pub weight: usize,
    healthy: AtomicBool,
    idle: Mutex<Vec<Client>>,
    config: ClientConfig,
    /// Requests this shard served through the router.
    pub served: AtomicU64,
}

impl Backend {
    /// Registers a backend: dials it, probes `health` to learn its
    /// capacity (worker count), and starts with an empty pool.
    pub fn register(addr: SocketAddr, config: ClientConfig) -> std::io::Result<Self> {
        let mut client = Client::connect_with(addr, config)?;
        let health = client.health()?;
        let weight = health
            .get("workers")
            .and_then(Json::as_i64)
            .unwrap_or(1)
            .max(1) as usize;
        let backend = Self {
            addr,
            weight,
            healthy: AtomicBool::new(true),
            idle: Mutex::new(Vec::new()),
            config,
            served: AtomicU64::new(0),
        };
        backend.put(client);
        Ok(backend)
    }

    /// Whether the router currently considers this shard alive.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Marks the shard dead; returns `true` on the transition (the
    /// caller that wins the race runs failover exactly once). The
    /// pool is drained — every pooled connection is to a dead peer.
    pub fn mark_down(&self) -> bool {
        let transitioned = self.healthy.swap(false, Ordering::SeqCst);
        if transitioned {
            self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        transitioned
    }

    fn take(&self) -> std::io::Result<Client> {
        if let Some(client) = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(client);
        }
        Client::connect_with(self.addr, self.config)
    }

    fn put(&self, client: Client) {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(client);
    }

    /// Sends one idempotent request through a pooled connection. On
    /// success the connection returns to the pool; on failure it is
    /// dropped (the caller decides whether the backend is dead).
    pub fn request(&self, request: &Json) -> std::io::Result<Json> {
        let mut client = self.take()?;
        match client.request_idempotent(request) {
            Ok(response) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                self.put(client);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// Like [`Backend::request`], but when the caller carries a
    /// `deadline_ms` the pooled connection's read timeout is
    /// tightened to `deadline + slack` for this request — never
    /// loosened past the configured failover timeout — so an
    /// over-deadline request costs the routing thread roughly the
    /// deadline instead of the full 30 s death watch. A timeout under
    /// the tightened budget maps to [`RequestError::DeadlineLapsed`]
    /// (no failover); stale pooled connections still heal with one
    /// reconnect, exactly like the plain path.
    pub fn request_with_deadline(
        &self,
        request: &Json,
        deadline_ms: Option<u64>,
    ) -> Result<Json, RequestError> {
        let tightened = deadline_ms
            .map(|ms| Duration::from_millis(ms) + DEADLINE_SLACK)
            .filter(|t| self.config.read_timeout.is_none_or(|cfg| *t < cfg));
        let Some(timeout) = tightened else {
            return self.request(request).map_err(RequestError::Dead);
        };
        let is_timeout =
            |e: &std::io::Error| matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut);
        let mut client = self.take().map_err(RequestError::Dead)?;
        if let Err(e) = client.set_read_timeout(Some(timeout)) {
            return Err(RequestError::Dead(e));
        }
        let outcome = match client.request(request) {
            // A non-timeout failure is a stale pooled connection (the
            // shard restarted, an idle socket died): one reconnect,
            // one retry — the deadline-tightened timeout carries over
            // because `reconnect` re-applies the client's config.
            Err(e) if !is_timeout(&e) => match client.reconnect() {
                Ok(()) => client.request(request),
                Err(dial) => Err(dial),
            },
            other => other,
        };
        match outcome {
            Ok(response) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                // Restore the configured timeout before pooling so
                // the next request is not stuck with this deadline.
                if client.set_read_timeout(self.config.read_timeout).is_ok() {
                    self.put(client);
                }
                Ok(response)
            }
            Err(e) if is_timeout(&e) => Err(RequestError::DeadlineLapsed),
            Err(e) => Err(RequestError::Dead(e)),
        }
    }

    /// A liveness probe with its own (short) deadline, independent of
    /// the pool: `true` iff the backend answers `health` in time.
    pub fn probe(&self, timeout: Duration) -> bool {
        let config = ClientConfig {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
        };
        match Client::connect_with(self.addr, config) {
            Ok(mut client) => matches!(
                client.health(),
                Ok(ref h) if h.get("ok") == Some(&Json::Bool(true))
            ),
            Err(_) => false,
        }
    }
}
