//! # gms-router — sharded multi-backend serving
//!
//! A fleet front end for [`gms-serve`](gms_serve): one process that
//! speaks the **same newline-delimited JSON protocol** as a single
//! backend, but shards loaded graphs across N `gms-serve` processes
//! and survives losing any of them.
//!
//! ```text
//!              clients (unchanged gms-serve protocol)
//!                              │
//!                              ▼
//!                     ┌─── gms-router ───┐
//!                     │ global graph     │   capacity-weighted
//!                     │ table (truth)    │   consistent-hash ring:
//!                     │ spill snapshots  │   fingerprint → shard
//!                     │ health probes    │
//!                     └──┬──────┬──────┬─┘
//!                        ▼      ▼      ▼
//!                   serve:0  serve:1  serve:2     ← N gms-serve
//!                   workers  workers  workers       backends
//! ```
//!
//! - **Placement** — a graph's home shard is the consistent-hash
//!   owner of its content fingerprint, with ring points weighted by
//!   each backend's worker count ([`ring`]). Placement is a pure
//!   function of the fleet membership: deterministic across router
//!   restarts and across independently configured routers.
//! - **Scatter-gather** — `batch` requests split by graph ownership,
//!   run on their shards concurrently, and reassemble in request
//!   order; `stats` merges every shard's counters into fleet-wide
//!   aggregates plus the router's own routing/failover counters.
//! - **Failover** — when a shard dies (request failure or background
//!   probe), the router re-places only that shard's graphs on the
//!   survivors, reloading from client-supplied paths or router-side
//!   `.gcsr` spills, and answers in-flight requests with either a
//!   transparent retry or — for clients that sent `"redirect":true` —
//!   a typed `moved` error naming the new shard. A fleet with no
//!   home for a graph answers `backend-unavailable`; nothing hangs.
//!
//! Start a fleet programmatically:
//!
//! ```no_run
//! use gms_router::{Router, RouterConfig};
//!
//! let handle = Router::start(RouterConfig {
//!     backends: vec!["127.0.0.1:7401".into(), "127.0.0.1:7402".into()],
//!     ..RouterConfig::default()
//! })?;
//! println!("routing on {}", handle.addr());
//! handle.shutdown();
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! or from the shell — `gms-router --spawn 4` forks four local
//! `gms-serve` children on ephemeral ports and fronts them.

pub mod backend;
pub mod ring;
pub mod router;

pub use ring::{HashRing, RingMember, POINTS_PER_WEIGHT};
pub use router::{Router, RouterConfig, RouterHandle};
