//! The router: a front-end process speaking the same
//! newline-delimited JSON protocol as `gms-serve`, owning the
//! fleet-wide graph table and fanning work across N backend shards.
//!
//! ```text
//!                      ┌────────────── gms-router ──────────────┐
//!  clients ── TCP ────►│ graph table   consistent-hash ring     │
//!  (same NDJSON        │ name → shard  fingerprint → shard      │
//!   protocol as        │ spill dir     health probes, failover  │
//!   gms-serve)         └───┬──────────────┬──────────────┬──────┘
//!                    pooled│        pooled│        pooled│
//!                          ▼              ▼              ▼
//!                    gms-serve 0    gms-serve 1    gms-serve 2
//!                    (workers,      (workers,      (workers,
//!                     queue,         queue,         queue,
//!                     cache)         cache)         cache)
//! ```
//!
//! Placement: `load` is materialized once at the router to compute
//! the content fingerprint, then forwarded to the shard the
//! capacity-weighted [`HashRing`] assigns that fingerprint. Inline
//! graphs are spilled to a router-side `.gcsr` snapshot; path-loaded
//! graphs keep their client-supplied path — either way every graph
//! has a reload source, which is what makes failover possible.
//!
//! Failover: when a shard stops answering (a pooled request fails
//! after the client's own one-reconnect retry, or the background
//! health probe misses), the router marks it down, rebuilds the ring
//! without it, and re-places **only that shard's graphs** on the
//! survivors by reloading them from their reload sources. In-flight
//! requests for those graphs retry once transparently on the new
//! owner; requests that asked for `"redirect":true` are answered
//! with a typed `moved` error carrying the new shard's address
//! instead. A graph with no reachable shard answers
//! `backend-unavailable` — never a hang.

use crate::backend::{Backend, RequestError};
use crate::ring::{HashRing, RingMember};
use gms_serve::protocol::{
    error_json, error_json_with, parse_envelope, with_id, Envelope, ErrorCode, LoadFormat,
    LoadSource, LoadSpec, MutateSpec, Request, RunSpec, WireError,
};
use gms_serve::{ClientConfig, Json};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked connection read may go unanswered before the
/// thread re-checks the shutdown flag (same poll the backends use).
const READ_POLL: Duration = Duration::from_millis(100);

/// Router construction parameters.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend shard addresses. Every backend must answer a `health`
    /// probe at startup — a fleet that cannot form does not start.
    pub backends: Vec<String>,
    /// Dial deadline for backend connections.
    pub connect_timeout: Duration,
    /// Response deadline for backend requests: a dead shard costs at
    /// most this long before failover kicks in, instead of hanging
    /// the routing thread forever.
    pub read_timeout: Duration,
    /// Background liveness-probe period; `Duration::ZERO` disables
    /// the probe thread (deaths are then only detected on request).
    pub probe_interval: Duration,
    /// Deadline for one liveness probe.
    pub probe_timeout: Duration,
    /// Where inline-loaded graphs are spilled as `.gcsr` snapshots
    /// for failover reloads; default is a per-process temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Propagate a router `shutdown` to the backends (the self-managed
    /// `--spawn` mode owns its children and sets this).
    pub shutdown_backends: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_secs(1),
            spill_dir: None,
            shutdown_backends: false,
        }
    }
}

/// Where a graph can be reloaded from when its shard dies.
enum ReloadSource {
    /// Router-side `.gcsr` spill (inline-loaded graphs).
    Spill(PathBuf),
    /// The client-supplied path, reloaded in its original format.
    ClientPath { path: String, format: LoadFormat },
}

struct GraphRecord {
    /// Owning backend index; `None` while orphaned (owner died and
    /// re-placement has not succeeded yet).
    owner: Option<usize>,
    /// Current content fingerprint (advances on every mutation).
    fingerprint: u64,
    /// Load-time fingerprint — the placement key. Keying the ring on
    /// the base keeps a graph on its shard across mutations instead
    /// of reshuffling the fleet every batch.
    base_fingerprint: u64,
    /// Effective mutation batches applied since load.
    version: u64,
    vertices: usize,
    edges: usize,
    reload: ReloadSource,
    /// Forward `"compression":"gap"` on reloads.
    gap: bool,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    malformed: AtomicU64,
    routed: AtomicU64,
    mutations: AtomicU64,
    failovers: AtomicU64,
    replaced: AtomicU64,
    moved: AtomicU64,
    unavailable: AtomicU64,
    not_found: AtomicU64,
    /// Requests that arrived without `"v":1` (deprecation grace).
    legacy_requests: AtomicU64,
    /// Requests answered `deadline-exceeded` at the router because
    /// the owning shard did not reply within the caller's deadline.
    deadline_exceeded: AtomicU64,
}

struct Core {
    backends: Vec<Backend>,
    ring: RwLock<HashRing>,
    graphs: RwLock<BTreeMap<String, GraphRecord>>,
    /// Serializes failover and re-placement: one thread re-places a
    /// dead shard's graphs while others wait, then see the healed
    /// table instead of racing duplicate reloads.
    placement: Mutex<()>,
    /// Serializes edge mutations: the order shards apply batches in
    /// is the order the router patches its spill snapshots in, so a
    /// failover reload always serves the content the fleet answered
    /// with. Never held while `placement` is held (the mutation path
    /// takes `placement` through `ensure_placed`, not vice versa).
    mutation: Mutex<()>,
    running: AtomicBool,
    counters: Counters,
    addr: SocketAddr,
    spill_dir: PathBuf,
    shutdown_backends: bool,
}

impl Core {
    fn running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    fn rebuild_ring(&self) {
        let members: Vec<Option<RingMember>> = self
            .backends
            .iter()
            .map(|b| {
                b.healthy().then(|| RingMember {
                    name: b.addr.to_string(),
                    weight: b.weight,
                })
            })
            .collect();
        let ring = HashRing::build(members.iter().map(|m| m.as_ref()));
        *self.ring.write().unwrap_or_else(|e| e.into_inner()) = ring;
    }

    fn ring_owner(&self, fingerprint: u64) -> Option<usize> {
        self.ring
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .owner(fingerprint)
    }

    /// Marks a backend dead and re-places every graph it owned on
    /// the survivors. Only the thread that wins the down-transition
    /// does the re-placement; latecomers return immediately and find
    /// the healed table.
    fn on_backend_death(&self, index: usize) {
        if !self.backends[index].mark_down() {
            return;
        }
        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
        self.rebuild_ring();
        {
            let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
            for record in graphs.values_mut() {
                if record.owner == Some(index) {
                    record.owner = None;
                }
            }
        }
        self.heal_orphans();
    }

    /// Ensures `name` is resident on a healthy shard and returns its
    /// owner. Takes the placement lock; cheap when already placed.
    fn ensure_placed(&self, name: &str) -> Option<usize> {
        {
            let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
            let record = graphs.get(name)?;
            if let Some(owner) = record.owner {
                if self.backends[owner].healthy() {
                    return Some(owner);
                }
            }
        }
        let _guard = self.placement.lock().unwrap_or_else(|e| e.into_inner());
        self.place_locked(name)
    }

    /// Re-places one graph (placement lock held): reloads it from
    /// its reload source onto the ring owner of its fingerprint,
    /// walking the ring as further shards die. Returns the new owner
    /// or `None` when the fleet has no shard that can take it.
    fn place_locked(&self, name: &str) -> Option<usize> {
        let (fingerprint, load_request, current) = {
            let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
            let record = graphs.get(name)?;
            if let Some(owner) = record.owner {
                if self.backends[owner].healthy() {
                    return Some(owner); // another thread healed it first
                }
            }
            (
                record.base_fingerprint,
                reload_request(name, record),
                record.owner,
            )
        };
        debug_assert!(current.is_none() || !self.backends[current.unwrap()].healthy());
        loop {
            let owner = self.ring_owner(fingerprint)?;
            match self.backends[owner].request(&load_request) {
                Ok(response) => {
                    if response.get("ok") != Some(&Json::Bool(true)) {
                        // The shard is alive but the reload failed
                        // (spill deleted, client path gone): the
                        // graph stays orphaned.
                        return None;
                    }
                    let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
                    if let Some(record) = graphs.get_mut(name) {
                        record.owner = Some(owner);
                    }
                    self.counters.replaced.fetch_add(1, Ordering::Relaxed);
                    return Some(owner);
                }
                Err(_) => {
                    // This shard is dead too: fail it (without
                    // recursing into re-placement — we hold the
                    // placement lock) and try the next ring owner.
                    if self.backends[owner].mark_down() {
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                        self.rebuild_ring();
                        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
                        for record in graphs.values_mut() {
                            if record.owner == Some(owner) {
                                record.owner = None;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Re-places every orphaned graph, looping because
    /// `place_locked` can mark further shards down (and orphan their
    /// graphs) mid-pass. Terminates: each pass either places
    /// something or proves the rest unplaceable right now.
    fn heal_orphans(&self) {
        let _guard = self.placement.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let orphaned: Vec<String> = {
                let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
                graphs
                    .iter()
                    .filter(|(_, r)| r.owner.is_none())
                    .map(|(n, _)| n.clone())
                    .collect()
            };
            if orphaned.is_empty() {
                return;
            }
            let mut progress = false;
            for name in orphaned {
                progress |= self.place_locked(&name).is_some();
            }
            if !progress {
                return;
            }
        }
    }

    fn begin_shutdown(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if self.shutdown_backends {
            let shutdown = Json::object([("op", Json::from("shutdown"))]);
            for backend in &self.backends {
                if backend.healthy() {
                    let _ = backend.request(&shutdown);
                }
            }
        }
        // Unblock the acceptor.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Builds the load request that re-creates `name` on a shard.
fn reload_request(name: &str, record: &GraphRecord) -> Json {
    let (format, path) = match &record.reload {
        ReloadSource::Spill(path) => ("gcsr", path.display().to_string()),
        ReloadSource::ClientPath { path, format } => {
            let format = match format {
                LoadFormat::EdgeList => "edge-list",
                LoadFormat::Metis => "metis",
                LoadFormat::Gcsr => "gcsr",
            };
            (format, path.clone())
        }
    };
    let mut fields = vec![
        ("op", Json::from("load")),
        ("graph", Json::from(name)),
        ("format", Json::from(format)),
        ("path", Json::from(path)),
    ];
    if record.gap {
        fields.push(("compression", Json::from("gap")));
    }
    Json::object(fields)
}

/// The raw request minus its `id`: what the router forwards (the
/// router matches backend responses itself; ids are echoed to the
/// client by the router alone).
fn without_id(value: &Json) -> Json {
    match value {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .filter(|(key, _)| key != "id")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Appends router-added members (shard address, id echo) to a
/// backend response.
fn annotate(response: Json, shard: SocketAddr, failover: bool, id: Option<&Json>) -> Json {
    let Json::Object(mut fields) = response else {
        return response;
    };
    fields.push(("shard".to_string(), Json::from(shard.to_string())));
    if failover {
        fields.push(("failover".to_string(), Json::Bool(true)));
    }
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    Json::Object(fields)
}

fn error_code_of(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

/// The routing front end. [`Router::start`] probes every backend,
/// builds the placement ring, binds, and returns a [`RouterHandle`].
pub struct Router;

impl Router {
    /// Starts a router per `config`. Fails on bind errors, an empty
    /// backend list, or any backend not answering its registration
    /// probe.
    pub fn start(config: RouterConfig) -> std::io::Result<RouterHandle> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let client_config = ClientConfig {
            connect_timeout: Some(config.connect_timeout),
            read_timeout: Some(config.read_timeout),
        };
        let mut backends = Vec::new();
        for text in &config.backends {
            let addr = text
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "bad backend addr"))?;
            let backend = Backend::register(addr, client_config).map_err(|e| {
                std::io::Error::new(e.kind(), format!("backend {text} failed registration: {e}"))
            })?;
            backends.push(backend);
        }
        let (spill_dir, owns_spill_dir) = match &config.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => (
                std::env::temp_dir().join(format!("gms-router-spill-{}", std::process::id())),
                true,
            ),
        };
        std::fs::create_dir_all(&spill_dir)?;

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let core = Arc::new(Core {
            backends,
            ring: RwLock::new(HashRing::default()),
            graphs: RwLock::new(BTreeMap::new()),
            placement: Mutex::new(()),
            mutation: Mutex::new(()),
            running: AtomicBool::new(true),
            counters: Counters::default(),
            addr,
            spill_dir,
            shutdown_backends: config.shutdown_backends,
        });
        core.rebuild_ring();

        let acceptor = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("gms-router-acceptor".to_string())
                .spawn(move || accept_loop(listener, &core))
                .expect("spawn acceptor thread")
        };
        let prober = (config.probe_interval > Duration::ZERO).then(|| {
            let core = Arc::clone(&core);
            let interval = config.probe_interval;
            let timeout = config.probe_timeout;
            std::thread::Builder::new()
                .name("gms-router-probe".to_string())
                .spawn(move || probe_loop(&core, interval, timeout))
                .expect("spawn probe thread")
        });

        Ok(RouterHandle {
            addr,
            core,
            acceptor,
            prober,
            owns_spill_dir,
        })
    }
}

/// A running router: its bound address plus shutdown/join control.
pub struct RouterHandle {
    addr: SocketAddr,
    core: Arc<Core>,
    acceptor: JoinHandle<()>,
    prober: Option<JoinHandle<()>>,
    owns_spill_dir: bool,
}

impl RouterHandle {
    /// The address the router actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful shutdown (also triggered by the
    /// protocol's `shutdown` op). Idempotent.
    pub fn shutdown(&self) {
        self.core.begin_shutdown();
    }

    /// Waits for the router to finish, deletes every spill snapshot
    /// the router created, and removes the default spill directory
    /// (an explicitly configured directory is left in place, empty
    /// of router state).
    pub fn join(self) {
        let _ = self.acceptor.join();
        if let Some(prober) = self.prober {
            let _ = prober.join();
        }
        {
            let graphs = self.core.graphs.read().unwrap_or_else(|e| e.into_inner());
            for record in graphs.values() {
                if let ReloadSource::Spill(path) = &record.reload {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        if self.owns_spill_dir {
            let _ = std::fs::remove_dir_all(&self.core.spill_dir);
        }
    }
}

fn probe_loop(core: &Arc<Core>, interval: Duration, timeout: Duration) {
    while core.running() {
        std::thread::sleep(interval);
        for index in 0..core.backends.len() {
            if !core.running() {
                return;
            }
            let backend = &core.backends[index];
            if backend.healthy() && !backend.probe(timeout) {
                core.on_backend_death(index);
            }
        }
    }
}

fn accept_loop(listener: TcpListener, core: &Arc<Core>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while core.running() {
        match listener.accept() {
            Ok((stream, _)) => {
                if !core.running() {
                    break;
                }
                core.counters.connections.fetch_add(1, Ordering::Relaxed);
                let core = Arc::clone(core);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("gms-router-conn".to_string())
                    .spawn(move || connection_loop(stream, &core))
                {
                    connections.push(handle);
                }
                connections.retain(|h| !h.is_finished());
            }
            Err(_) => {
                if !core.running() {
                    break;
                }
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn connection_loop(stream: TcpStream, core: &Arc<Core>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut send = |response: &Json| {
        let mut line = response.render();
        line.push('\n');
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.flush();
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break,
            Ok(_) => {
                let keep_going = match std::str::from_utf8(&line) {
                    Ok(text) => {
                        let trimmed = text.trim();
                        if trimmed.is_empty() {
                            true
                        } else {
                            let (response, keep_going) = handle_line(trimmed, core);
                            send(&response);
                            keep_going
                        }
                    }
                    Err(_) => {
                        core.counters.malformed.fetch_add(1, Ordering::Relaxed);
                        send(&error_json(
                            &WireError::new(ErrorCode::BadJson, "request line is not valid UTF-8"),
                            None,
                        ));
                        true
                    }
                };
                line.clear();
                if !keep_going {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !core.running() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Handles one request line; returns the response and whether the
/// connection stays open.
fn handle_line(line: &str, core: &Arc<Core>) -> (Json, bool) {
    let Envelope {
        request,
        id,
        versioned,
        deadline_ms,
        ..
    } = match parse_envelope(line) {
        Ok(parsed) => parsed,
        Err((error, id)) => {
            core.counters.malformed.fetch_add(1, Ordering::Relaxed);
            return (error_json(&error, id.as_ref()), true);
        }
    };
    core.counters.requests.fetch_add(1, Ordering::Relaxed);
    if !versioned {
        core.counters
            .legacy_requests
            .fetch_add(1, Ordering::Relaxed);
    }
    // The raw value re-parsed once: forwarded bodies keep exactly
    // what the client sent (params, compression, ...), id excluded.
    let raw = Json::parse(line).expect("parse_request accepted the line");
    if !core.running() && !matches!(request, Request::Health | Request::Stats) {
        return (
            error_json(
                &WireError::new(ErrorCode::ShuttingDown, "router is shutting down"),
                id.as_ref(),
            ),
            true,
        );
    }
    match request {
        Request::Health => (health_json(core, id.as_ref()), true),
        Request::Stats => (stats_json(core, id.as_ref()), true),
        Request::Kernels => (proxy_kernels(core, id.as_ref()), true),
        Request::Shutdown => {
            let ack = with_id(
                vec![
                    ("ok", Json::Bool(true)),
                    ("status", Json::from("shutting-down")),
                ],
                id.as_ref(),
            );
            core.begin_shutdown();
            (ack, false)
        }
        Request::Load(spec) => {
            core.counters.routed.fetch_add(1, Ordering::Relaxed);
            (handle_load(core, &raw, &spec, id.as_ref()), true)
        }
        Request::Mutate(spec) => {
            core.counters.routed.fetch_add(1, Ordering::Relaxed);
            (handle_mutate(core, &raw, &spec, id.as_ref()), true)
        }
        Request::Run(spec) => {
            core.counters.routed.fetch_add(1, Ordering::Relaxed);
            let redirect = raw.get("redirect").and_then(Json::as_bool).unwrap_or(false);
            (
                handle_run(core, &raw, &spec, redirect, deadline_ms, id.as_ref()),
                true,
            )
        }
        Request::Batch(specs) => {
            core.counters.routed.fetch_add(1, Ordering::Relaxed);
            (
                handle_batch(core, &raw, &specs, deadline_ms, id.as_ref()),
                true,
            )
        }
    }
}

/// Materializes the graph once at the router (for the placement
/// fingerprint and the failover spill), then forwards the original
/// load to the owning shard.
fn handle_load(core: &Arc<Core>, raw: &Json, spec: &LoadSpec, id: Option<&Json>) -> Json {
    let io_error = |e: gms_graph::io::GraphIoError| {
        error_json(&WireError::new(ErrorCode::Io, e.to_string()), id)
    };
    // (fingerprint, vertices, edges)
    let summary = match (&spec.format, &spec.source) {
        (LoadFormat::EdgeList, LoadSource::Data(d)) => {
            match gms_graph::io::load_undirected_from(d.as_bytes()) {
                Ok(g) => (gms_platform::kernel::fingerprint(&g), Some(g)),
                Err(e) => return io_error(e),
            }
        }
        (LoadFormat::EdgeList, LoadSource::Path(p)) => match gms_graph::io::load_undirected(p) {
            Ok(g) => (gms_platform::kernel::fingerprint(&g), Some(g)),
            Err(e) => return io_error(e),
        },
        (LoadFormat::Metis, LoadSource::Data(d)) => {
            match gms_graph::io::load_metis_from(d.as_bytes()) {
                Ok(g) => (gms_platform::kernel::fingerprint(&g), Some(g)),
                Err(e) => return io_error(e),
            }
        }
        (LoadFormat::Metis, LoadSource::Path(p)) => match gms_graph::io::load_metis(p) {
            Ok(g) => (gms_platform::kernel::fingerprint(&g), Some(g)),
            Err(e) => return io_error(e),
        },
        (LoadFormat::Gcsr, LoadSource::Path(p)) => match gms_graph::io::load_snapshot_auto(p) {
            Ok(gms_graph::io::SnapshotGraph::Raw(g)) => {
                (gms_platform::kernel::fingerprint(&g), Some(g))
            }
            Ok(gms_graph::io::SnapshotGraph::Compressed(c)) => {
                use gms_core::Graph as _;
                let fp = gms_platform::kernel::fingerprint_graph(&c);
                let record = build_record(core, spec, fp, c.num_vertices(), c.num_arcs() / 2, None);
                return forward_load(core, raw, spec, record, id);
            }
            Err(e) => return io_error(e),
        },
        (LoadFormat::Gcsr, LoadSource::Data(_)) => {
            // parse_request rejects this before routing.
            return error_json(
                &WireError::new(ErrorCode::BadRequest, "gcsr loads require a path"),
                id,
            );
        }
    };
    let (fingerprint, graph) = summary;
    let graph = graph.expect("non-compressed loads materialize a CSR");
    use gms_core::Graph as _;
    let record = build_record(
        core,
        spec,
        fingerprint,
        graph.num_vertices(),
        graph.num_arcs() / 2,
        Some(&graph),
    );
    forward_load(core, raw, spec, record, id)
}

/// Builds the router-side record for a load: reload source (spilling
/// inline data to a `.gcsr` snapshot) plus placement metadata.
fn build_record(
    core: &Arc<Core>,
    spec: &LoadSpec,
    fingerprint: u64,
    vertices: usize,
    edges: usize,
    graph: Option<&gms_core::CsrGraph>,
) -> Result<GraphRecord, WireError> {
    let reload = match &spec.source {
        LoadSource::Path(path) => ReloadSource::ClientPath {
            path: path.clone(),
            format: spec.format,
        },
        LoadSource::Data(_) => {
            let graph = graph.expect("inline loads materialize a CSR");
            let path = core.spill_dir.join(format!("{fingerprint:016x}.gcsr"));
            if !path.exists() {
                gms_graph::io::save_snapshot(graph, &path)
                    .map_err(|e| WireError::new(ErrorCode::Io, format!("spill failed: {e}")))?;
            }
            ReloadSource::Spill(path)
        }
    };
    Ok(GraphRecord {
        owner: None,
        fingerprint,
        base_fingerprint: fingerprint,
        version: 0,
        vertices,
        edges,
        reload,
        gap: matches!(spec.compression, gms_serve::LoadCompression::Gap),
    })
}

/// Whether any record still reloads from `path` — shared-content
/// graphs share spill files (the path is keyed by fingerprint), so a
/// spill is only deletable once the last referent is gone.
fn spill_referenced(graphs: &BTreeMap<String, GraphRecord>, path: &Path) -> bool {
    graphs
        .values()
        .any(|r| matches!(&r.reload, ReloadSource::Spill(p) if p == path))
}

/// Materializes the current content of a record's reload source —
/// the graph a failover reload would hand a survivor.
fn materialize_reload(record: &GraphRecord) -> Result<gms_core::CsrGraph, String> {
    let from_snapshot = |path: &Path| match gms_graph::io::load_snapshot_auto(path) {
        Ok(gms_graph::io::SnapshotGraph::Raw(g)) => Ok(g),
        Ok(gms_graph::io::SnapshotGraph::Compressed(c)) => Ok(c.to_csr()),
        Err(e) => Err(e.to_string()),
    };
    match &record.reload {
        ReloadSource::Spill(path) => from_snapshot(path),
        ReloadSource::ClientPath { path, format } => match format {
            LoadFormat::EdgeList => gms_graph::io::load_undirected(path).map_err(|e| e.to_string()),
            LoadFormat::Metis => gms_graph::io::load_metis(path).map_err(|e| e.to_string()),
            LoadFormat::Gcsr => from_snapshot(Path::new(path)),
        },
    }
}

fn forward_load(
    core: &Arc<Core>,
    raw: &Json,
    spec: &LoadSpec,
    record: Result<GraphRecord, WireError>,
    id: Option<&Json>,
) -> Json {
    let record = match record {
        Ok(record) => record,
        Err(e) => return error_json(&e, id),
    };
    let forward = without_id(raw);
    let mut failover = false;
    loop {
        let Some(owner) = core.ring_owner(record.base_fingerprint) else {
            core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
            return error_json(
                &WireError::new(
                    ErrorCode::BackendUnavailable,
                    "no healthy backend can take the graph",
                ),
                id,
            );
        };
        match core.backends[owner].request(&forward) {
            Ok(response) => {
                if response.get("ok") != Some(&Json::Bool(true)) {
                    // The shard rejected the load (bad path, parse
                    // error): forward its typed error untouched.
                    return annotate(response, core.backends[owner].addr, failover, id);
                }
                let (replaced, stale_spill) = {
                    let mut graphs = core.graphs.write().unwrap_or_else(|e| e.into_inner());
                    let mut record = record;
                    record.owner = Some(owner);
                    let old = graphs.insert(spec.name.clone(), record);
                    let replaced = old.is_some();
                    // A replaced-away inline graph leaves its spill
                    // snapshot behind; delete it once nothing else
                    // reloads from it — replacing must not leak disk.
                    let stale = old
                        .and_then(|o| match o.reload {
                            ReloadSource::Spill(path) => Some(path),
                            ReloadSource::ClientPath { .. } => None,
                        })
                        .filter(|path| !spill_referenced(&graphs, path));
                    (replaced, stale)
                };
                if let Some(path) = stale_spill {
                    let _ = std::fs::remove_file(path);
                }
                // The router's table is the fleet-wide truth for
                // "replaced": the shard only sees its own slice.
                let response = match response {
                    Json::Object(mut fields) => {
                        for (key, value) in fields.iter_mut() {
                            if key == "replaced" {
                                *value = Json::Bool(replaced);
                            }
                        }
                        Json::Object(fields)
                    }
                    other => other,
                };
                return annotate(response, core.backends[owner].addr, failover, id);
            }
            Err(_) => {
                core.on_backend_death(owner);
                failover = true;
            }
        }
    }
}

/// Routes an edge mutation to the shard owning the graph, keeping
/// the router's failover state in sync: the same patch is applied to
/// the router's copy of the graph and written as a fresh spill
/// snapshot keyed by the post-mutation fingerprint **before** the
/// batch is forwarded, so a shard death at any point reloads content
/// no older than what the fleet last acknowledged. Placement stays
/// on the base fingerprint — mutating never moves a graph. A
/// path-loaded graph converts to a spill reload here (its client
/// file no longer matches the resident content), and the
/// pre-mutation spill is deleted once nothing references it.
fn handle_mutate(core: &Arc<Core>, raw: &Json, spec: &MutateSpec, id: Option<&Json>) -> Json {
    if !core
        .graphs
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .contains_key(&spec.graph)
    {
        core.counters.not_found.fetch_add(1, Ordering::Relaxed);
        return error_json(
            &WireError::new(
                ErrorCode::GraphNotFound,
                format!("graph {:?} is not loaded anywhere in the fleet", spec.graph),
            ),
            id,
        );
    }
    let _one_at_a_time = core.mutation.lock().unwrap_or_else(|e| e.into_inner());
    // Patch the router's copy first.
    let (patched, delta, old_spill) = {
        let graphs = core.graphs.read().unwrap_or_else(|e| e.into_inner());
        let Some(record) = graphs.get(&spec.graph) else {
            core.counters.not_found.fetch_add(1, Ordering::Relaxed);
            return error_json(
                &WireError::new(
                    ErrorCode::GraphNotFound,
                    format!("graph {:?} is not loaded anywhere in the fleet", spec.graph),
                ),
                id,
            );
        };
        let old = match materialize_reload(record) {
            Ok(graph) => graph,
            Err(e) => {
                return error_json(
                    &WireError::new(ErrorCode::Io, format!("reload source unreadable: {e}")),
                    id,
                )
            }
        };
        match gms_graph::patch_csr(&old, &spec.add, &spec.remove) {
            Ok((patched, delta)) => {
                let old_spill = match &record.reload {
                    ReloadSource::Spill(path) => Some(path.clone()),
                    ReloadSource::ClientPath { .. } => None,
                };
                (patched, delta, old_spill)
            }
            Err(e) => {
                return error_json(&WireError::new(ErrorCode::BadMutation, e.to_string()), id)
            }
        }
    };
    let forward = without_id(raw);
    let new_spill = if delta.is_empty() {
        // Content unchanged: forward for the authoritative no-op
        // response, nothing router-side to refresh.
        None
    } else {
        let fingerprint = gms_platform::kernel::fingerprint(&patched);
        let path = core.spill_dir.join(format!("{fingerprint:016x}.gcsr"));
        if !path.exists() {
            if let Err(e) = gms_graph::io::save_snapshot(&patched, &path) {
                return error_json(
                    &WireError::new(ErrorCode::Io, format!("spill failed: {e}")),
                    id,
                );
            }
        }
        Some((fingerprint, path))
    };
    use gms_core::Graph as _;
    let new_edges = patched.num_arcs() / 2;
    drop(patched);
    // Drops the freshly written spill when the mutation never
    // commits (dead fleet, shard-side rejection).
    let discard_new_spill = |spill: &Option<(u64, PathBuf)>| {
        if let Some((_, path)) = spill {
            let referenced = {
                let graphs = core.graphs.read().unwrap_or_else(|e| e.into_inner());
                spill_referenced(&graphs, path)
            };
            if !referenced {
                let _ = std::fs::remove_file(path);
            }
        }
    };
    let mut failover = false;
    loop {
        let Some(owner) = core.ensure_placed(&spec.graph) else {
            core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
            discard_new_spill(&new_spill);
            return error_json(
                &WireError::new(
                    ErrorCode::BackendUnavailable,
                    format!("no healthy backend holds graph {:?}", spec.graph),
                ),
                id,
            );
        };
        match core.backends[owner].request(&forward) {
            Ok(response) => {
                if error_code_of(&response) == Some("unknown-graph")
                    && heal_missing(core, &spec.graph, owner)
                {
                    continue;
                }
                if response.get("ok") != Some(&Json::Bool(true)) {
                    discard_new_spill(&new_spill);
                    return annotate(response, core.backends[owner].addr, failover, id);
                }
                core.counters.mutations.fetch_add(1, Ordering::Relaxed);
                if let Some((fingerprint, path)) = new_spill {
                    let stale_spill = {
                        let mut graphs = core.graphs.write().unwrap_or_else(|e| e.into_inner());
                        if let Some(record) = graphs.get_mut(&spec.graph) {
                            record.fingerprint = fingerprint;
                            record.version += 1;
                            record.edges = new_edges;
                            record.reload = ReloadSource::Spill(path);
                        }
                        old_spill.filter(|p| !spill_referenced(&graphs, p))
                    };
                    if let Some(path) = stale_spill {
                        let _ = std::fs::remove_file(path);
                    }
                }
                return annotate(response, core.backends[owner].addr, failover, id);
            }
            Err(_) => {
                core.on_backend_death(owner);
                failover = true;
            }
        }
    }
}

fn handle_run(
    core: &Arc<Core>,
    raw: &Json,
    spec: &RunSpec,
    redirect: bool,
    deadline_ms: Option<u64>,
    id: Option<&Json>,
) -> Json {
    if !core
        .graphs
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .contains_key(&spec.graph)
    {
        core.counters.not_found.fetch_add(1, Ordering::Relaxed);
        return error_json(
            &WireError::new(
                ErrorCode::GraphNotFound,
                format!("graph {:?} is not loaded anywhere in the fleet", spec.graph),
            ),
            id,
        );
    }
    let forward = without_id(raw);
    let mut failover = false;
    loop {
        let Some(owner) = core.ensure_placed(&spec.graph) else {
            core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
            return error_json(
                &WireError::new(
                    ErrorCode::BackendUnavailable,
                    format!("no healthy backend holds graph {:?}", spec.graph),
                ),
                id,
            );
        };
        if failover && redirect {
            // The graph moved while this request was in flight and
            // the client asked to manage its own retries.
            core.counters.moved.fetch_add(1, Ordering::Relaxed);
            return error_json_with(
                &WireError::new(
                    ErrorCode::Moved,
                    format!("graph {:?} moved to a new shard", spec.graph),
                ),
                &[("addr", Json::from(core.backends[owner].addr.to_string()))],
                id,
            );
        }
        match core.backends[owner].request_with_deadline(&forward, deadline_ms) {
            Ok(response) => {
                if error_code_of(&response) == Some("unknown-graph") {
                    // Router/shard disagreement (the shard restarted
                    // or dropped it): heal by reloading, then retry.
                    if heal_missing(core, &spec.graph, owner) {
                        continue;
                    }
                }
                return annotate(response, core.backends[owner].addr, failover, id);
            }
            Err(RequestError::DeadlineLapsed) => {
                // The shard is (probably) alive but over the caller's
                // budget — answer the typed error without failover,
                // which would re-place every graph on a healthy shard.
                core.counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return error_json(
                    &WireError::new(
                        ErrorCode::DeadlineExceeded,
                        format!(
                            "deadline of {}ms lapsed waiting on shard {}",
                            deadline_ms.unwrap_or(0),
                            core.backends[owner].addr
                        ),
                    ),
                    id,
                );
            }
            Err(RequestError::Dead(_)) => {
                core.on_backend_death(owner);
                failover = true;
            }
        }
    }
}

/// Reloads a graph the router believes `owner` holds but the shard
/// denies. Returns `true` when the reload succeeded (retry the run).
fn heal_missing(core: &Arc<Core>, name: &str, owner: usize) -> bool {
    let _guard = core.placement.lock().unwrap_or_else(|e| e.into_inner());
    let load_request = {
        let graphs = core.graphs.read().unwrap_or_else(|e| e.into_inner());
        match graphs.get(name) {
            Some(record) => reload_request(name, record),
            None => return false,
        }
    };
    matches!(
        core.backends[owner].request(&load_request),
        Ok(ref r) if r.get("ok") == Some(&Json::Bool(true))
    )
}

/// Scatter-gather: splits a batch by graph ownership, runs the
/// sub-batches on their shards concurrently, and reassembles the
/// results in request order. Backend deaths mid-batch trigger
/// failover and bounded retry rounds — each failed round marks at
/// least one shard down, so the loop terminates with either results
/// or typed errors, never a hang.
fn handle_batch(
    core: &Arc<Core>,
    raw: &Json,
    specs: &[RunSpec],
    deadline_ms: Option<u64>,
    id: Option<&Json>,
) -> Json {
    let raw_items: Vec<Json> = raw
        .get("requests")
        .and_then(Json::as_array)
        .map(|items| items.to_vec())
        .unwrap_or_default();
    debug_assert_eq!(raw_items.len(), specs.len());
    let mut results: Vec<Option<Json>> = vec![None; specs.len()];
    let mut shards_used: Vec<SocketAddr> = Vec::new();

    // Slots still needing execution, grouped fresh each round.
    let mut pending: Vec<usize> = (0..specs.len()).collect();
    // Each failed round kills ≥1 backend; one extra round drains the
    // no-healthy-backends case into typed errors.
    let max_rounds = core.backends.len() + 1;
    for _round in 0..max_rounds {
        if pending.is_empty() {
            break;
        }
        // Resolve owners; unknown / unplaceable graphs answer typed
        // errors without costing a shard round trip.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &slot in &pending {
            let spec = &specs[slot];
            let known = core
                .graphs
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .contains_key(&spec.graph);
            if !known {
                core.counters.not_found.fetch_add(1, Ordering::Relaxed);
                results[slot] = Some(error_json(
                    &WireError::new(
                        ErrorCode::GraphNotFound,
                        format!("graph {:?} is not loaded anywhere in the fleet", spec.graph),
                    ),
                    None,
                ));
                continue;
            }
            match core.ensure_placed(&spec.graph) {
                Some(owner) => groups.entry(owner).or_default().push(slot),
                None => {
                    core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
                    results[slot] = Some(error_json(
                        &WireError::new(
                            ErrorCode::BackendUnavailable,
                            format!("no healthy backend holds graph {:?}", spec.graph),
                        ),
                        None,
                    ));
                }
            }
        }
        // Scatter concurrently, one thread per owning shard.
        let round_results: Vec<(usize, Vec<usize>, Result<Json, RequestError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|(owner, slots)| {
                        // The sub-batch keeps the caller's envelope
                        // (version, deadline, fairness identity), so
                        // the shard enforces the same deadline and
                        // accounts the work to the right client.
                        let mut fields: Vec<(String, Json)> = vec![
                            ("op".to_string(), Json::from("batch")),
                            (
                                "requests".to_string(),
                                Json::Array(
                                    slots.iter().map(|&s| without_id(&raw_items[s])).collect(),
                                ),
                            ),
                        ];
                        for key in ["v", "deadline_ms", "client", "weight"] {
                            if let Some(value) = raw.get(key) {
                                fields.push((key.to_string(), value.clone()));
                            }
                        }
                        let sub_request = Json::Object(fields);
                        let core = Arc::clone(core);
                        scope.spawn(move || {
                            let outcome = core.backends[owner]
                                .request_with_deadline(&sub_request, deadline_ms);
                            (owner, slots, outcome)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        // Gather: successes fill their slots; failures re-enter the
        // next round after failover.
        pending.clear();
        for (owner, slots, outcome) in round_results {
            match outcome {
                Ok(response) => {
                    let sub_results = response
                        .get("results")
                        .and_then(Json::as_array)
                        .map(|r| r.to_vec())
                        .unwrap_or_default();
                    if sub_results.len() != slots.len() {
                        for &slot in &slots {
                            results[slot] = Some(error_json(
                                &WireError::new(
                                    ErrorCode::BackendUnavailable,
                                    "shard answered a malformed batch response",
                                ),
                                None,
                            ));
                        }
                        continue;
                    }
                    if !shards_used.contains(&core.backends[owner].addr) {
                        shards_used.push(core.backends[owner].addr);
                    }
                    for (slot, result) in slots.into_iter().zip(sub_results) {
                        results[slot] = Some(result);
                    }
                }
                Err(RequestError::DeadlineLapsed) => {
                    // Retrying elsewhere cannot beat an already-spent
                    // deadline: answer the slots typed, keep the shard.
                    core.counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    for &slot in &slots {
                        results[slot] = Some(error_json(
                            &WireError::new(
                                ErrorCode::DeadlineExceeded,
                                format!(
                                    "deadline of {}ms lapsed waiting on shard {}",
                                    deadline_ms.unwrap_or(0),
                                    core.backends[owner].addr
                                ),
                            ),
                            None,
                        ));
                    }
                }
                Err(RequestError::Dead(_)) => {
                    core.on_backend_death(owner);
                    pending.extend(slots);
                }
            }
        }
    }
    // Anything still pending after the bounded rounds has no shard.
    for slot in pending {
        core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
        results[slot] = Some(error_json(
            &WireError::new(ErrorCode::BackendUnavailable, "no healthy backends"),
            None,
        ));
    }
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            (
                "results",
                Json::Array(
                    results
                        .into_iter()
                        .map(|r| r.expect("slot filled"))
                        .collect(),
                ),
            ),
            ("shards", Json::from(shards_used.len())),
        ],
        id,
    )
}

fn proxy_kernels(core: &Arc<Core>, id: Option<&Json>) -> Json {
    let request = Json::object([("op", Json::from("kernels"))]);
    for (index, backend) in core.backends.iter().enumerate() {
        if !backend.healthy() {
            continue;
        }
        match backend.request(&request) {
            Ok(response) => return annotate(response, backend.addr, false, id),
            Err(_) => core.on_backend_death(index),
        }
    }
    core.counters.unavailable.fetch_add(1, Ordering::Relaxed);
    error_json(
        &WireError::new(ErrorCode::BackendUnavailable, "no healthy backends"),
        id,
    )
}

fn health_json(core: &Arc<Core>, id: Option<&Json>) -> Json {
    let healthy = core.backends.iter().filter(|b| b.healthy()).count();
    let workers: usize = core
        .backends
        .iter()
        .filter(|b| b.healthy())
        .map(|b| b.weight)
        .sum();
    let graphs = core.graphs.read().unwrap_or_else(|e| e.into_inner()).len();
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            (
                "status",
                Json::from(if core.running() {
                    "serving"
                } else {
                    "shutting-down"
                }),
            ),
            ("role", Json::from("router")),
            ("addr", Json::from(core.addr.to_string())),
            ("backends", Json::from(core.backends.len())),
            ("healthy", Json::from(healthy)),
            ("workers", Json::from(workers)),
            ("graphs", Json::from(graphs)),
        ],
        id,
    )
}

/// Fleet-wide stats: per-backend blocks straight from the shards,
/// their cache/server counters summed into one fleet aggregate, the
/// router's own counters, and the authoritative graph table.
fn stats_json(core: &Arc<Core>, id: Option<&Json>) -> Json {
    const CACHE_KEYS: &[&str] = &[
        "hits",
        "misses",
        "evictions",
        "coalesced",
        "cross_hits",
        "invalidated",
        "migrated",
        "refreshed",
        "stale_drops",
        "entries",
        "capacity",
    ];
    const SERVER_KEYS: &[&str] = &[
        "connections",
        "requests",
        "completed",
        "rejected",
        "malformed",
    ];
    let request = Json::object([("op", Json::from("stats"))]);
    let mut cache_totals: BTreeMap<&str, i64> = BTreeMap::new();
    let mut server_totals: BTreeMap<&str, i64> = BTreeMap::new();
    let mut backend_blocks: Vec<Json> = Vec::new();
    for (index, backend) in core.backends.iter().enumerate() {
        let mut fields: Vec<(String, Json)> = vec![
            ("addr".to_string(), Json::from(backend.addr.to_string())),
            ("healthy".to_string(), Json::Bool(backend.healthy())),
            ("weight".to_string(), Json::from(backend.weight)),
            (
                "served".to_string(),
                Json::from(backend.served.load(Ordering::Relaxed)),
            ),
        ];
        if backend.healthy() {
            match backend.request(&request) {
                Ok(stats) => {
                    for (section, keys, totals) in [
                        ("cache", CACHE_KEYS, &mut cache_totals),
                        ("server", SERVER_KEYS, &mut server_totals),
                    ] {
                        if let Some(block) = stats.get(section) {
                            for &key in keys {
                                if let Some(v) = block.get(key).and_then(Json::as_i64) {
                                    *totals.entry(key).or_insert(0) += v;
                                }
                            }
                            fields.push((section.to_string(), block.clone()));
                        }
                    }
                }
                Err(_) => core.on_backend_death(index),
            }
        }
        backend_blocks.push(Json::Object(fields));
    }
    let totals_json = |keys: &[&str], totals: &BTreeMap<&str, i64>| {
        Json::Object(
            keys.iter()
                .map(|&k| (k.to_string(), Json::from(*totals.get(k).unwrap_or(&0))))
                .collect(),
        )
    };
    let graphs: Vec<Json> = {
        let graphs = core.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs
            .iter()
            .map(|(name, record)| {
                Json::object([
                    ("name", Json::from(name.clone())),
                    (
                        "shard",
                        match record.owner {
                            Some(owner) => Json::from(core.backends[owner].addr.to_string()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "fingerprint",
                        gms_serve::protocol::fingerprint_json(record.fingerprint),
                    ),
                    (
                        "base_fingerprint",
                        gms_serve::protocol::fingerprint_json(record.base_fingerprint),
                    ),
                    ("version", Json::from(record.version)),
                    ("vertices", Json::from(record.vertices)),
                    ("edges", Json::from(record.edges)),
                ])
            })
            .collect()
    };
    let counters = &core.counters;
    let healthy = core.backends.iter().filter(|b| b.healthy()).count();
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            ("role", Json::from("router")),
            (
                "fleet",
                Json::object([
                    ("backends", Json::from(core.backends.len())),
                    ("healthy", Json::from(healthy)),
                    ("cache", totals_json(CACHE_KEYS, &cache_totals)),
                    ("server", totals_json(SERVER_KEYS, &server_totals)),
                ]),
            ),
            (
                "router",
                Json::object([
                    (
                        "connections",
                        Json::from(counters.connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "requests",
                        Json::from(counters.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "routed",
                        Json::from(counters.routed.load(Ordering::Relaxed)),
                    ),
                    (
                        "mutations",
                        Json::from(counters.mutations.load(Ordering::Relaxed)),
                    ),
                    (
                        "malformed",
                        Json::from(counters.malformed.load(Ordering::Relaxed)),
                    ),
                    (
                        "failovers",
                        Json::from(counters.failovers.load(Ordering::Relaxed)),
                    ),
                    (
                        "graphs_replaced",
                        Json::from(counters.replaced.load(Ordering::Relaxed)),
                    ),
                    ("moved", Json::from(counters.moved.load(Ordering::Relaxed))),
                    (
                        "unavailable",
                        Json::from(counters.unavailable.load(Ordering::Relaxed)),
                    ),
                    (
                        "not_found",
                        Json::from(counters.not_found.load(Ordering::Relaxed)),
                    ),
                    (
                        "legacy_requests",
                        Json::from(counters.legacy_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "deadline_exceeded",
                        Json::from(counters.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("backends", Json::Array(backend_blocks)),
            ("graphs", Json::Array(graphs)),
        ],
        id,
    )
}
