//! Capacity-aware consistent hashing: the placement function that
//! maps a graph fingerprint to the backend shard owning it.
//!
//! Each backend contributes `replicas × weight` points on a `u64`
//! ring, where `weight` is its worker count (read from the backend's
//! `health` response at registration) — a 4-worker shard attracts
//! about twice the graphs of a 2-worker shard. A fingerprint's owner
//! is the first point clockwise from the fingerprint's (remixed)
//! position. Removing a backend only re-places the graphs it owned;
//! everything else keeps its shard — the property that makes
//! failover re-place **one** shard's graphs instead of reshuffling
//! the fleet.
//!
//! The ring is a pure function of the `(name, weight)` membership
//! set: two routers configured with the same fleet place every
//! fingerprint identically, so placement survives a router restart
//! without any persisted state.

/// FNV-1a 64 over arbitrary bytes — the same hash family the
/// snapshot checksums use; no external crates.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: disperses consecutive point indices and
/// structured fingerprints uniformly around the ring.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One member of the ring: a stable identity plus a capacity weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingMember {
    /// Stable identity the ring hashes (a backend address).
    pub name: String,
    /// Capacity weight — ring points are proportional to it.
    pub weight: usize,
}

/// A consistent-hash ring over backend indices.
#[derive(Clone, Debug, Default)]
pub struct HashRing {
    /// `(ring position, member index)`, sorted by position.
    points: Vec<(u64, usize)>,
}

/// Ring points contributed per unit of member weight. High enough
/// that load spreads within a few percent of the weight ratio, low
/// enough that rebuilding on membership change is trivial.
pub const POINTS_PER_WEIGHT: usize = 32;

impl HashRing {
    /// Builds a ring over `members`; entries with `None` are absent
    /// (an unhealthy backend keeps its index but contributes no
    /// points). Weights are clamped to `1..=64`.
    pub fn build<'a, I>(members: I) -> Self
    where
        I: IntoIterator<Item = Option<&'a RingMember>>,
    {
        let mut points = Vec::new();
        for (index, member) in members.into_iter().enumerate() {
            let Some(member) = member else { continue };
            let base = fnv1a(member.name.as_bytes());
            let count = member.weight.clamp(1, 64) * POINTS_PER_WEIGHT;
            for point in 0..count {
                points.push((mix(base ^ (point as u64)), index));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// The member index owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let position = mix(key);
        let at = self.points.partition_point(|&(p, _)| p < position);
        let (_, index) = self.points[at % self.points.len()];
        Some(index)
    }

    /// Total points on the ring (for diagnostics).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(weights: &[usize]) -> Vec<RingMember> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &weight)| RingMember {
                name: format!("10.0.0.{i}:7000"),
                weight,
            })
            .collect()
    }

    #[test]
    fn placement_is_deterministic_across_ring_instances() {
        let members = fleet(&[2, 2, 4]);
        let a = HashRing::build(members.iter().map(Some));
        let b = HashRing::build(members.iter().map(Some));
        for key in 0..10_000u64 {
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn removal_only_moves_the_removed_members_keys() {
        let members = fleet(&[2, 2, 2, 2]);
        let full = HashRing::build(members.iter().map(Some));
        let without_2 =
            HashRing::build(
                members
                    .iter()
                    .enumerate()
                    .map(|(i, m)| if i == 2 { None } else { Some(m) }),
            );
        let mut moved_off_survivors = 0;
        for key in 0..10_000u64 {
            let before = full.owner(key).unwrap();
            let after = without_2.owner(key).unwrap();
            assert_ne!(after, 2, "removed member still owns key {key}");
            if before != 2 && before != after {
                moved_off_survivors += 1;
            }
        }
        assert_eq!(
            moved_off_survivors, 0,
            "consistent hashing must only re-place the dead member's keys"
        );
    }

    #[test]
    fn weights_shift_load_proportionally() {
        let members = fleet(&[2, 2, 8]);
        let ring = HashRing::build(members.iter().map(Some));
        let mut owned = [0usize; 3];
        let keys = 40_000u64;
        for key in 0..keys {
            owned[ring.owner(key).unwrap()] += 1;
        }
        // Member 2 carries 8/12 of the weight; allow generous slack
        // around the expected 2/3 share.
        let share = owned[2] as f64 / keys as f64;
        assert!(
            (0.55..0.80).contains(&share),
            "weight-8 member owns {share:.3} of keys (expected ≈ 0.67): {owned:?}"
        );
        assert!(owned[0] > 0 && owned[1] > 0, "light members still serve");
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::build(std::iter::empty());
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
    }
}
