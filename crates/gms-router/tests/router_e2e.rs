//! End-to-end routing over real sockets: a router fronting several
//! in-process `gms-serve` backends, driven through the unchanged
//! `gms_serve::Client`. The failover tests kill a backend out from
//! under the router and assert the fleet answers — with the right
//! pattern counts or the right typed error — instead of hanging.

use gms_serve::{Client, Json, ServeConfig, Server, ServerHandle};
use std::time::Duration;

use gms_router::{Router, RouterConfig, RouterHandle};

/// Starts `n` backends plus a router fronting them. Background
/// probing is disabled so tests control exactly when deaths are
/// discovered (on the request path).
fn start_fleet(n: usize) -> (Vec<ServerHandle>, RouterHandle) {
    let backends: Vec<ServerHandle> = (0..n)
        .map(|_| Server::start(ServeConfig::default()).expect("start backend"))
        .collect();
    let router = Router::start(RouterConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        probe_interval: Duration::ZERO,
        read_timeout: Duration::from_secs(10),
        ..RouterConfig::default()
    })
    .expect("start router");
    (backends, router)
}

/// Kills one backend: graceful protocol shutdown, then join — after
/// this its port refuses connections and pooled sockets die.
fn kill_backend(handle: ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("connect to backend");
    let _ = client.shutdown();
    handle.join();
}

fn edge_list_text(graph: &gms_core::CsrGraph) -> String {
    let mut text = Vec::new();
    gms_graph::io::write_edge_list(graph, &mut text).expect("render edge list");
    String::from_utf8(text).expect("edge lists are ASCII")
}

/// Loads `count` distinct graphs through `client` as g0..g{count-1}.
fn load_graphs(client: &mut Client, count: usize) {
    for i in 0..count {
        let graph = gms_gen::gnp(120 + 10 * i, 0.06, 1000 + i as u64);
        let response = client
            .load_inline(&format!("g{i}"), "edge-list", &edge_list_text(&graph))
            .expect("load round trip");
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "load g{i}: {}",
            response.render()
        );
    }
}

fn batch_request(count: usize) -> Json {
    Json::object([
        ("op", Json::from("batch")),
        (
            "requests",
            Json::Array(
                (0..count)
                    .map(|i| {
                        Json::object([
                            ("op", Json::from("run")),
                            ("kernel", Json::from("triangle-count")),
                            ("graph", Json::from(format!("g{i}"))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn patterns_of(results: &[Json]) -> Vec<i64> {
    results
        .iter()
        .map(|r| {
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "item: {}", r.render());
            r.get("patterns").and_then(Json::as_i64).expect("patterns")
        })
        .collect()
}

fn error_code(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

/// The shard address currently owning `name`, from router stats.
fn shard_of(stats: &Json, name: &str) -> String {
    stats
        .get("graphs")
        .and_then(Json::as_array)
        .expect("graphs table")
        .iter()
        .find(|g| g.get("name").and_then(Json::as_str) == Some(name))
        .and_then(|g| g.get("shard"))
        .and_then(Json::as_str)
        .expect("graph has a shard")
        .to_string()
}

#[test]
fn router_answers_match_a_single_backend() {
    let (backends, router) = start_fleet(2);
    let mut via_router = Client::connect(router.addr()).expect("connect router");
    load_graphs(&mut via_router, 4);

    // The same graphs on one standalone backend are the reference.
    let single = Server::start(ServeConfig::default()).expect("start reference");
    let mut direct = Client::connect(single.addr()).expect("connect reference");
    load_graphs(&mut direct, 4);

    for i in 0..4 {
        let name = format!("g{i}");
        let routed = via_router
            .run("triangle-count", &name, &[])
            .expect("routed run");
        let reference = direct
            .run("triangle-count", &name, &[])
            .expect("direct run");
        assert_eq!(
            routed.get("patterns").and_then(Json::as_i64),
            reference.get("patterns").and_then(Json::as_i64),
            "{name}: routed answers equal single-backend answers"
        );
        // Responses name the shard that served them.
        let shard = routed.get("shard").and_then(Json::as_str).expect("shard");
        assert!(
            backends.iter().any(|b| b.addr().to_string() == shard),
            "shard {shard} is a fleet member"
        );
    }

    kill_backend(single);
    router.shutdown();
    router.join();
    for backend in backends {
        kill_backend(backend);
    }
}

#[test]
fn batch_scatters_across_shards_and_gathers_in_order() {
    let (backends, router) = start_fleet(3);
    let mut client = Client::connect(router.addr()).expect("connect router");
    let count = 6;
    load_graphs(&mut client, count);

    let response = client.request(&batch_request(count)).expect("batch");
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    let results = response
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), count, "one result per request, in order");
    let patterns = patterns_of(results);

    // Placement is fingerprint-driven: six distinct graphs land on
    // more than one shard of a three-shard fleet.
    let shards = response
        .get("shards")
        .and_then(Json::as_i64)
        .expect("shards");
    assert!(
        (2..=3).contains(&shards),
        "batch touched {shards} shards (expected 2..=3)"
    );

    // The same batch again answers identically (now cache-warm).
    let again = client.request(&batch_request(count)).expect("batch again");
    assert_eq!(
        patterns_of(again.get("results").and_then(Json::as_array).unwrap()),
        patterns,
        "batches are deterministic"
    );

    router.shutdown();
    router.join();
    for backend in backends {
        kill_backend(backend);
    }
}

#[test]
fn backend_killed_mid_batch_fails_over_to_survivors() {
    let (backends, router) = start_fleet(3);
    let mut client = Client::connect(router.addr()).expect("connect router");
    let count = 6;
    load_graphs(&mut client, count);

    // Reference pass while the whole fleet is up.
    let before = client.request(&batch_request(count)).expect("warm batch");
    let expected = patterns_of(before.get("results").and_then(Json::as_array).unwrap());

    // Kill the shard owning g0 — the router has not noticed (probing
    // is off): the next batch discovers the death mid-flight, when
    // the scattered sub-batch to the dead shard fails over sockets.
    let victim_addr = shard_of(&client.stats().expect("stats"), "g0");
    let mut survivors = Vec::new();
    for backend in backends {
        if backend.addr().to_string() == victim_addr {
            kill_backend(backend);
        } else {
            survivors.push(backend);
        }
    }

    let after = client
        .request(&batch_request(count))
        .expect("failover batch");
    assert_eq!(
        after.get("ok"),
        Some(&Json::Bool(true)),
        "batch completes despite the dead shard: {}",
        after.render()
    );
    assert_eq!(
        patterns_of(after.get("results").and_then(Json::as_array).unwrap()),
        expected,
        "post-failover pattern counts equal the full-fleet counts"
    );

    // The router recorded the failover and re-placed the dead
    // shard's graphs on survivors.
    let stats = client.stats().expect("stats after failover");
    let router_block = stats.get("router").expect("router counters");
    assert!(
        router_block
            .get("failovers")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1,
        "failover counted"
    );
    assert!(
        router_block
            .get("graphs_replaced")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1,
        "orphaned graphs re-placed"
    );
    assert_ne!(
        shard_of(&stats, "g0"),
        victim_addr,
        "g0 moved off the dead shard"
    );

    router.shutdown();
    router.join();
    for backend in survivors {
        kill_backend(backend);
    }
}

#[test]
fn redirect_clients_get_typed_moved_with_the_new_address() {
    let (backends, router) = start_fleet(2);
    let mut client = Client::connect(router.addr()).expect("connect router");
    load_graphs(&mut client, 1);
    let warm = client.run("triangle-count", "g0", &[]).expect("warm run");
    let expected = warm
        .get("patterns")
        .and_then(Json::as_i64)
        .expect("patterns");

    let victim_addr = shard_of(&client.stats().expect("stats"), "g0");
    let mut survivors = Vec::new();
    for backend in backends {
        if backend.addr().to_string() == victim_addr {
            kill_backend(backend);
        } else {
            survivors.push(backend);
        }
    }

    // A redirect-aware client is told where the graph went instead
    // of being transparently retried.
    let moved = client
        .request(&Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from("triangle-count")),
            ("graph", Json::from("g0")),
            ("redirect", Json::Bool(true)),
        ]))
        .expect("moved round trip");
    assert_eq!(moved.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(error_code(&moved), Some("moved"), "{}", moved.render());
    let new_addr = moved
        .get("error")
        .and_then(|e| e.get("addr"))
        .and_then(Json::as_str)
        .expect("moved carries the new shard address");
    assert_eq!(new_addr, survivors[0].addr().to_string());

    // Following the hint works: the survivor serves the graph
    // directly, reloaded from the router's spill.
    let mut direct = Client::connect(survivors[0].addr()).expect("connect survivor");
    let served = direct.run("triangle-count", "g0", &[]).expect("direct run");
    assert_eq!(
        served.get("patterns").and_then(Json::as_i64),
        Some(expected)
    );

    // A plain client sees a transparent failover on the same graph.
    let plain = client.run("triangle-count", "g0", &[]).expect("plain run");
    assert_eq!(plain.get("patterns").and_then(Json::as_i64), Some(expected));

    router.shutdown();
    router.join();
    for backend in survivors {
        kill_backend(backend);
    }
}

/// Triangle count of `graph`, recomputed from scratch — the oracle
/// the routed answers are held against.
fn local_triangles(graph: &gms_core::CsrGraph) -> i64 {
    gms_pattern::triangle_count_rank_merge(graph) as i64
}

#[test]
fn mutations_route_to_the_owner_and_survive_failover() {
    let (backends, router) = start_fleet(3);
    let mut client = Client::connect(router.addr()).expect("connect router");
    load_graphs(&mut client, 4);

    // The router's copy of g0, mutated in lockstep with the fleet.
    let mut local = gms_gen::gnp(120, 0.06, 1000);
    let warm = client.run("triangle-count", "g0", &[]).expect("warm run");
    assert_eq!(
        warm.get("patterns").and_then(Json::as_i64),
        Some(local_triangles(&local)),
        "sanity: routed count matches the local copy"
    );

    // Remove two real edges, then add a triangle; the router must
    // forward both batches to the owning shard and advance lineage.
    use gms_core::Graph as _;
    let v = (0..local.num_vertices() as u32)
        .find(|&v| local.degree(v) >= 2)
        .expect("a vertex with two edges");
    let targets: Vec<u32> = local.neighbors(v).take(2).collect();
    let removals: Vec<(u32, u32)> = targets.iter().map(|&t| (v, t)).collect();
    let removed = client.remove_edges("g0", &removals).expect("remove");
    assert_eq!(
        removed.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        removed.render()
    );
    assert_eq!(removed.get("version").and_then(Json::as_i64), Some(1));
    let additions = [(0u32, 1u32), (0, 2), (1, 2)];
    let added = client.add_edges("g0", &additions).expect("add");
    assert_eq!(
        added.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        added.render()
    );
    assert_eq!(added.get("version").and_then(Json::as_i64), Some(2));

    let edges = |pairs: &[(u32, u32)]| pairs.to_vec();
    local = gms_graph::patch_csr(&local, &[], &edges(&removals))
        .expect("local removal")
        .0;
    local = gms_graph::patch_csr(&local, &edges(&additions), &[])
        .expect("local addition")
        .0;
    let expected = local_triangles(&local);
    let routed = client.run("triangle-count", "g0", &[]).expect("routed run");
    assert_eq!(
        routed.get("patterns").and_then(Json::as_i64),
        Some(expected),
        "post-mutation count matches a from-scratch recount"
    );

    // The router's graph table tracks lineage: the content
    // fingerprint advanced, the placement key did not.
    let stats = client.stats().expect("stats");
    let g0 = stats
        .get("graphs")
        .and_then(Json::as_array)
        .expect("graphs")
        .iter()
        .find(|g| g.get("name").and_then(Json::as_str) == Some("g0"))
        .expect("g0 row")
        .clone();
    assert_eq!(g0.get("version").and_then(Json::as_i64), Some(2));
    assert_ne!(
        g0.get("fingerprint").and_then(Json::as_str),
        g0.get("base_fingerprint").and_then(Json::as_str),
        "mutations advance the fingerprint off the base"
    );

    // Kill the owner: the survivor must serve the *mutated* content
    // — the router refreshed its spill snapshot on each mutation.
    let victim_addr = shard_of(&stats, "g0");
    let mut survivors = Vec::new();
    for backend in backends {
        if backend.addr().to_string() == victim_addr {
            kill_backend(backend);
        } else {
            survivors.push(backend);
        }
    }
    let failed_over = client
        .run("triangle-count", "g0", &[])
        .expect("failover run");
    assert_eq!(
        failed_over.get("patterns").and_then(Json::as_i64),
        Some(expected),
        "failover serves the post-mutation content: {}",
        failed_over.render()
    );

    // Mutations keep working after the failover.
    let again = client.add_edges("g0", &[(3, 5)]).expect("mutate survivor");
    assert_eq!(
        again.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        again.render()
    );

    // Typed errors: out-of-range endpoints are rejected at the
    // router (the fleet never sees the batch); unknown graphs answer
    // from the router's own table.
    let bad = client
        .add_edges("g0", &[(0, 9_999_999)])
        .expect("round trip");
    assert_eq!(error_code(&bad), Some("bad-mutation"), "{}", bad.render());
    let missing = client.add_edges("nope", &[(0, 1)]).expect("round trip");
    assert_eq!(error_code(&missing), Some("graph-not-found"));

    router.shutdown();
    router.join();
    for backend in survivors {
        kill_backend(backend);
    }
}

/// Satellite regression: spill snapshots used to accumulate forever
/// — replacing a graph left the old `.gcsr` behind and shutdown kept
/// every file in a user-supplied spill directory.
#[test]
fn replace_mutate_and_shutdown_delete_stale_spills() {
    let spill_dir =
        std::env::temp_dir().join(format!("gms-router-test-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("make spill dir");
    let backends: Vec<ServerHandle> = (0..2)
        .map(|_| Server::start(ServeConfig::default()).expect("start backend"))
        .collect();
    let router = Router::start(RouterConfig {
        backends: backends.iter().map(|b| b.addr().to_string()).collect(),
        probe_interval: Duration::ZERO,
        read_timeout: Duration::from_secs(10),
        spill_dir: Some(spill_dir.clone()),
        ..RouterConfig::default()
    })
    .expect("start router");
    let spills = || -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&spill_dir)
            .expect("read spill dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".gcsr"))
            .collect();
        names.sort();
        names
    };

    let mut client = Client::connect(router.addr()).expect("connect router");
    let graph = gms_gen::gnp(80, 0.08, 7);
    let response = client
        .load_inline("g", "edge-list", &edge_list_text(&graph))
        .expect("load");
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    let after_load = spills();
    assert_eq!(after_load.len(), 1, "inline load spills one snapshot");

    // A mutation replaces the spill instead of accumulating: the
    // post-mutation snapshot appears, the pre-mutation one is gone.
    use gms_core::Graph as _;
    let (u, v) = (0..80u32)
        .flat_map(|u| ((u + 1)..80).map(move |v| (u, v)))
        .find(|&(u, v)| !graph.neighbors(u).any(|n| n == v))
        .expect("a non-edge to add");
    let mutated = client.add_edges("g", &[(u, v)]).expect("mutate");
    assert_eq!(
        mutated.get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        mutated.render()
    );
    let after_mutation = spills();
    assert_eq!(after_mutation.len(), 1, "mutation does not leak spills");
    assert_ne!(after_mutation, after_load, "the snapshot was refreshed");

    // Replacing the graph under the same name deletes the spill the
    // replaced record reloaded from.
    let replacement = gms_gen::gnp(90, 0.08, 8);
    let reload = client
        .load_inline("g", "edge-list", &edge_list_text(&replacement))
        .expect("replace");
    assert_eq!(reload.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(reload.get("replaced"), Some(&Json::Bool(true)));
    let after_replace = spills();
    assert_eq!(after_replace.len(), 1, "replace does not leak spills");
    assert_ne!(after_replace, after_mutation);

    // Shutdown deletes router-created snapshots even from a
    // user-supplied directory (the directory itself is kept).
    router.shutdown();
    router.join();
    assert!(spill_dir.exists(), "configured spill dir is left in place");
    assert_eq!(spills(), Vec::<String>::new(), "no snapshots survive");
    let _ = std::fs::remove_dir_all(&spill_dir);
    for backend in backends {
        kill_backend(backend);
    }
}

#[test]
fn fleet_errors_are_typed_never_hangs() {
    let (backends, router) = start_fleet(1);
    let mut client = Client::connect(router.addr()).expect("connect router");

    // Unknown graph: typed graph-not-found from the router's own
    // table, no backend round trip.
    let missing = client
        .run("triangle-count", "nope", &[])
        .expect("round trip");
    assert_eq!(error_code(&missing), Some("graph-not-found"));

    // Kill the only backend: runs answer backend-unavailable.
    load_graphs(&mut client, 1);
    for backend in backends {
        kill_backend(backend);
    }
    let unavailable = client
        .run("triangle-count", "g0", &[])
        .expect("round trip, not a hang");
    assert_eq!(
        error_code(&unavailable),
        Some("backend-unavailable"),
        "{}",
        unavailable.render()
    );

    router.shutdown();
    router.join();
}
