//! Pins the no-allocation contract of the `_count` set operations.
//!
//! The `Set` trait ships allocating defaults for `intersect_count`,
//! `union_count` and `diff_count` (materialize, then measure). Every
//! layout is expected to override them with count-only paths; a layout
//! that silently falls back to the default would still be *correct*,
//! so only an allocation counter can catch the regression. This test
//! swaps in a counting global allocator and asserts that zero
//! allocations happen while the `_count` family runs on every layout —
//! including `intersect_count_sorted` against a raw CSR-style slice,
//! and run-encoded roaring containers (whose `and_count` must not
//! round-trip through `flat()`).
//!
//! Everything runs in a single `#[test]` because the allocator is
//! process-global: concurrent tests would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use gms_core::set::{DenseBitSet, HashVertexSet, RoaringSet, Set, SortedVecSet, SparseBitSet};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocations it performed.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn assert_count_paths_allocation_free<S: Set>(layout: &str) {
    // Overlapping mid-size sets; built BEFORE measurement starts.
    let a_vals: Vec<u32> = (0..4000).step_by(2).collect();
    let b_vals: Vec<u32> = (1000..5000).step_by(3).collect();
    let a = S::from_sorted(&a_vals);
    let b = S::from_sorted(&b_vals);
    let expected_and = a_vals.iter().filter(|v| b_vals.contains(v)).count();

    let mut results = [0usize; 4];
    let allocs = allocations_during(|| {
        results[0] = a.intersect_count(&b);
        results[1] = a.union_count(&b);
        results[2] = a.diff_count(&b);
        results[3] = a.intersect_count_sorted(&b_vals);
    });

    assert_eq!(results[0], expected_and, "{layout}: intersect_count");
    assert_eq!(
        results[1],
        a_vals.len() + b_vals.len() - expected_and,
        "{layout}: union_count"
    );
    assert_eq!(
        results[2],
        a_vals.len() - expected_and,
        "{layout}: diff_count"
    );
    assert_eq!(results[3], expected_and, "{layout}: intersect_count_sorted");
    assert_eq!(
        allocs, 0,
        "{layout}: a _count operation allocated — it fell through to a \
         materializing default instead of a count-only override"
    );
}

#[test]
fn count_operations_never_allocate_on_any_layout() {
    assert_count_paths_allocation_free::<SortedVecSet>("SortedVecSet");
    assert_count_paths_allocation_free::<DenseBitSet>("DenseBitSet");
    assert_count_paths_allocation_free::<HashVertexSet>("HashVertexSet");
    assert_count_paths_allocation_free::<SparseBitSet>("SparseBitSet");
    assert_count_paths_allocation_free::<RoaringSet>("RoaringSet");

    // Run-encoded roaring containers have their own and_count paths;
    // make sure optimize() doesn't reintroduce a flat()-style clone.
    let a: RoaringSet = {
        let mut s = RoaringSet::from_sorted(&(0..40_000).collect::<Vec<u32>>());
        s.optimize();
        s
    };
    let b: RoaringSet = {
        let mut s = RoaringSet::from_sorted(&(20_000..60_000).collect::<Vec<u32>>());
        s.optimize();
        s
    };
    let mut counts = (0usize, 0usize, 0usize);
    let allocs = allocations_during(|| {
        counts = (a.intersect_count(&b), a.union_count(&b), a.diff_count(&b));
    });
    assert_eq!(counts, (20_000, 60_000, 20_000));
    assert_eq!(allocs, 0, "run-encoded roaring _count paths allocated");
}
