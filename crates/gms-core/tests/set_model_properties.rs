//! Property-based model tests: every `Set` implementation must behave
//! exactly like a `BTreeSet` under arbitrary operation sequences —
//! the strongest form of the paper's "set operations are
//! interchangeable modules" claim.

use gms_core::set::SparseBitSet;
use gms_core::{DenseBitSet, HashVertexSet, RoaringSet, Set, SortedVecSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One mutation step against a set under test.
#[derive(Clone, Debug)]
enum Op {
    Add(u32),
    Remove(u32),
    IntersectWith(Vec<u32>),
    UnionWith(Vec<u32>),
    DiffWith(Vec<u32>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let element = 0u32..200_000;
    let operand = proptest::collection::btree_set(0u32..200_000, 0..40)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
    prop_oneof![
        element.clone().prop_map(Op::Add),
        element.prop_map(Op::Remove),
        operand.clone().prop_map(Op::IntersectWith),
        operand.clone().prop_map(Op::UnionWith),
        operand.prop_map(Op::DiffWith),
    ]
}

fn run_model<S: Set>(initial: &[u32], ops: &[Op]) {
    let mut subject = S::from_sorted(initial);
    let mut model: BTreeSet<u32> = initial.iter().copied().collect();
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Add(x) => {
                subject.add(*x);
                model.insert(*x);
            }
            Op::Remove(x) => {
                subject.remove(*x);
                model.remove(x);
            }
            Op::IntersectWith(other) => {
                let rhs = S::from_sorted(other);
                // Exercise count, new-set, and in-place paths together.
                let count = subject.intersect_count(&rhs);
                let fresh = subject.intersect(&rhs);
                assert_eq!(count, fresh.cardinality(), "step {step}");
                subject.intersect_inplace(&rhs);
                assert_eq!(subject, fresh, "step {step}");
                let other_model: BTreeSet<u32> = other.iter().copied().collect();
                model = model.intersection(&other_model).copied().collect();
            }
            Op::UnionWith(other) => {
                let rhs = S::from_sorted(other);
                let fresh = subject.union(&rhs);
                assert_eq!(subject.union_count(&rhs), fresh.cardinality(), "step {step}");
                subject.union_inplace(&rhs);
                assert_eq!(subject, fresh, "step {step}");
                model.extend(other.iter().copied());
            }
            Op::DiffWith(other) => {
                let rhs = S::from_sorted(other);
                let fresh = subject.diff(&rhs);
                assert_eq!(subject.diff_count(&rhs), fresh.cardinality(), "step {step}");
                subject.diff_inplace(&rhs);
                assert_eq!(subject, fresh, "step {step}");
                for x in other {
                    model.remove(x);
                }
            }
        }
        // Full-state comparison after every step.
        assert_eq!(subject.cardinality(), model.len(), "step {step}");
        assert!(
            subject.iter().eq(model.iter().copied()),
            "step {step}: {:?} != {:?}",
            subject.to_vec(),
            model
        );
        assert_eq!(subject.min(), model.first().copied(), "step {step}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sorted_vec_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<SortedVecSet>(&init, &ops);
    }

    #[test]
    fn roaring_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<RoaringSet>(&init, &ops);
    }

    #[test]
    fn dense_bit_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<DenseBitSet>(&init, &ops);
    }

    #[test]
    fn hash_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<HashVertexSet>(&init, &ops);
    }

    #[test]
    fn sparse_bit_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<SparseBitSet>(&init, &ops);
    }

    #[test]
    fn roaring_optimize_is_transparent(
        initial in proptest::collection::btree_set(0u32..100_000, 0..300),
        probe in proptest::collection::btree_set(0u32..100_000, 0..50),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        let probe: Vec<u32> = probe.into_iter().collect();
        let plain = RoaringSet::from_sorted(&init);
        let mut optimized = plain.clone();
        optimized.optimize();
        let rhs = RoaringSet::from_sorted(&probe);
        prop_assert_eq!(plain.intersect(&rhs), optimized.intersect(&rhs));
        prop_assert_eq!(plain.union(&rhs).to_vec(), optimized.union(&rhs).to_vec());
        prop_assert_eq!(plain.diff(&rhs).to_vec(), optimized.diff(&rhs).to_vec());
        prop_assert_eq!(plain, optimized);
    }
}
