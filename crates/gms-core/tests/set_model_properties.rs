//! Property-based model tests: every `Set` implementation must behave
//! exactly like a `BTreeSet` under arbitrary operation sequences —
//! the strongest form of the paper's "set operations are
//! interchangeable modules" claim.

use gms_core::set::SparseBitSet;
use gms_core::{DenseBitSet, HashVertexSet, RoaringSet, Set, SortedVecSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One mutation step against a set under test.
#[derive(Clone, Debug)]
enum Op {
    Add(u32),
    Remove(u32),
    IntersectWith(Vec<u32>),
    UnionWith(Vec<u32>),
    DiffWith(Vec<u32>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let element = 0u32..200_000;
    let operand = proptest::collection::btree_set(0u32..200_000, 0..40)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
    prop_oneof![
        element.clone().prop_map(Op::Add),
        element.prop_map(Op::Remove),
        operand.clone().prop_map(Op::IntersectWith),
        operand.clone().prop_map(Op::UnionWith),
        operand.prop_map(Op::DiffWith),
    ]
}

fn run_model<S: Set>(initial: &[u32], ops: &[Op]) {
    let mut subject = S::from_sorted(initial);
    let mut model: BTreeSet<u32> = initial.iter().copied().collect();
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Add(x) => {
                subject.add(*x);
                model.insert(*x);
            }
            Op::Remove(x) => {
                subject.remove(*x);
                model.remove(x);
            }
            Op::IntersectWith(other) => {
                let rhs = S::from_sorted(other);
                // Exercise count, new-set, and in-place paths together.
                let count = subject.intersect_count(&rhs);
                let fresh = subject.intersect(&rhs);
                assert_eq!(count, fresh.cardinality(), "step {step}");
                subject.intersect_inplace(&rhs);
                assert_eq!(subject, fresh, "step {step}");
                let other_model: BTreeSet<u32> = other.iter().copied().collect();
                model = model.intersection(&other_model).copied().collect();
            }
            Op::UnionWith(other) => {
                let rhs = S::from_sorted(other);
                let fresh = subject.union(&rhs);
                assert_eq!(
                    subject.union_count(&rhs),
                    fresh.cardinality(),
                    "step {step}"
                );
                subject.union_inplace(&rhs);
                assert_eq!(subject, fresh, "step {step}");
                model.extend(other.iter().copied());
            }
            Op::DiffWith(other) => {
                let rhs = S::from_sorted(other);
                let fresh = subject.diff(&rhs);
                assert_eq!(subject.diff_count(&rhs), fresh.cardinality(), "step {step}");
                subject.diff_inplace(&rhs);
                assert_eq!(subject, fresh, "step {step}");
                for x in other {
                    model.remove(x);
                }
            }
        }
        // Full-state comparison after every step.
        assert_eq!(subject.cardinality(), model.len(), "step {step}");
        assert!(
            subject.iter().eq(model.iter().copied()),
            "step {step}: {:?} != {:?}",
            subject.to_vec(),
            model
        );
        assert_eq!(subject.min(), model.first().copied(), "step {step}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sorted_vec_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<SortedVecSet>(&init, &ops);
    }

    #[test]
    fn roaring_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<RoaringSet>(&init, &ops);
    }

    #[test]
    fn dense_bit_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<DenseBitSet>(&init, &ops);
    }

    #[test]
    fn hash_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<HashVertexSet>(&init, &ops);
    }

    #[test]
    fn sparse_bit_set_matches_model(
        initial in proptest::collection::btree_set(0u32..200_000, 0..60),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        run_model::<SparseBitSet>(&init, &ops);
    }

    #[test]
    fn roaring_optimize_is_transparent(
        initial in proptest::collection::btree_set(0u32..100_000, 0..300),
        probe in proptest::collection::btree_set(0u32..100_000, 0..50),
    ) {
        let init: Vec<u32> = initial.into_iter().collect();
        let probe: Vec<u32> = probe.into_iter().collect();
        let plain = RoaringSet::from_sorted(&init);
        let mut optimized = plain.clone();
        optimized.optimize();
        let rhs = RoaringSet::from_sorted(&probe);
        prop_assert_eq!(plain.intersect(&rhs), optimized.intersect(&rhs));
        prop_assert_eq!(plain.union(&rhs).to_vec(), optimized.union(&rhs).to_vec());
        prop_assert_eq!(plain.diff(&rhs).to_vec(), optimized.diff(&rhs).to_vec());
        prop_assert_eq!(plain, optimized);
    }
}

// ---------------------------------------------------------------------------
// Deterministic five-layout equivalence: beyond the per-layout model
// tests above, run one fixed workload over *all five* `Set`
// implementations side by side and require that (a) each agrees with
// the `BTreeSet` oracle and (b) all layouts agree with each other,
// element for element. This is the paper's interchangeability claim
// in its most literal form, and being seed-free it can never flake.

/// A small deterministic LCG so the workload is identical on every
/// run and platform (no dependence on any RNG crate).
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, bound: u32) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) % u64::from(bound.max(1))) as u32
    }
}

/// Sorted, de-duplicated operand drawn from `[0, universe)`.
fn operand(rng: &mut Lcg, len: usize, universe: u32) -> Vec<u32> {
    let set: BTreeSet<u32> = (0..len).map(|_| rng.next_below(universe)).collect();
    set.into_iter().collect()
}

fn oracle_workload<S: Set>(pairs: &[(Vec<u32>, Vec<u32>)]) -> Vec<Vec<u32>> {
    let mut outcomes = Vec::new();
    for (a, b) in pairs {
        let sa = S::from_sorted(a);
        let sb = S::from_sorted(b);
        let oracle_a: BTreeSet<u32> = a.iter().copied().collect();
        let oracle_b: BTreeSet<u32> = b.iter().copied().collect();

        let intersect = sa.intersect(&sb);
        let union = sa.union(&sb);
        let diff = sa.diff(&sb);

        // Against the oracle.
        let oracle_intersect: Vec<u32> = oracle_a.intersection(&oracle_b).copied().collect();
        let oracle_union: Vec<u32> = oracle_a.union(&oracle_b).copied().collect();
        let oracle_diff: Vec<u32> = oracle_a.difference(&oracle_b).copied().collect();
        assert_eq!(intersect.to_vec(), oracle_intersect, "intersect vs oracle");
        assert_eq!(union.to_vec(), oracle_union, "union vs oracle");
        assert_eq!(diff.to_vec(), oracle_diff, "diff vs oracle");

        // Count and in-place variants must match the fresh-set paths.
        assert_eq!(sa.intersect_count(&sb), intersect.cardinality());
        assert_eq!(sa.union_count(&sb), union.cardinality());
        assert_eq!(sa.diff_count(&sb), diff.cardinality());
        let mut inplace = S::from_sorted(a);
        inplace.intersect_inplace(&sb);
        assert_eq!(inplace.to_vec(), oracle_intersect, "intersect_inplace");
        let mut inplace = S::from_sorted(a);
        inplace.union_inplace(&sb);
        assert_eq!(inplace.to_vec(), oracle_union, "union_inplace");
        let mut inplace = S::from_sorted(a);
        inplace.diff_inplace(&sb);
        assert_eq!(inplace.to_vec(), oracle_diff, "diff_inplace");

        outcomes.push(intersect.to_vec());
        outcomes.push(union.to_vec());
        outcomes.push(diff.to_vec());
    }
    outcomes
}

#[test]
fn all_five_layouts_agree_on_a_fixed_workload() {
    let mut rng = Lcg(0x6d73_2d67_6d73_2131); // fixed: workload never changes
    let mut pairs: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    // Size regimes graph mining produces: balanced merges, skewed
    // gallops, dense bit-parallel sweeps, tiny and empty edge cases.
    for &(len_a, len_b, universe) in &[
        (400usize, 400usize, 2_000u32), // balanced, moderately dense
        (12, 4_000, 50_000),            // skewed: gallop territory
        (4_000, 12, 50_000),            // skewed the other way
        (800, 800, 1_000),              // dense: bitset territory
        (60, 60, 1 << 20),              // sparse over a huge universe
        (0, 300, 5_000),                // empty lhs
        (300, 0, 5_000),                // empty rhs
        (1, 1, 10),                     // singletons
    ] {
        pairs.push((
            operand(&mut rng, len_a, universe),
            operand(&mut rng, len_b, universe),
        ));
    }

    let sorted = oracle_workload::<SortedVecSet>(&pairs);
    let roaring = oracle_workload::<RoaringSet>(&pairs);
    let dense = oracle_workload::<DenseBitSet>(&pairs);
    let hash = oracle_workload::<HashVertexSet>(&pairs);
    let sparse = oracle_workload::<SparseBitSet>(&pairs);

    // Cross-layout: every layout produced the exact same results.
    assert_eq!(sorted, roaring, "SortedVecSet vs RoaringSet");
    assert_eq!(sorted, dense, "SortedVecSet vs DenseBitSet");
    assert_eq!(sorted, hash, "SortedVecSet vs HashVertexSet");
    assert_eq!(sorted, sparse, "SortedVecSet vs SparseBitSet");
}
