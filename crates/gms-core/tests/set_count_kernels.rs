//! Pins the u64-block and galloping count kernels to a naive scalar
//! oracle.
//!
//! The `_count` fast paths (blockwise `word_ops` kernels behind
//! `DenseBitSet`, the block-skipping/galloping merge behind
//! `SortedVecSet::intersect_count`, the run-aware roaring container
//! counts) all have word- or block-granular control flow whose bugs
//! cluster at boundaries: sets that end exactly at a word edge, blocks
//! that skip precisely to `len`, one side empty. Everything here is
//! checked against the one implementation that cannot be clever — an
//! element-by-element scalar filter.

use gms_core::set::word_ops;
use gms_core::set::{intersect_count_sorted_slices, SparseBitSet};
use gms_core::{DenseBitSet, HashVertexSet, RoaringSet, Set, SortedVecSet};
use proptest::prelude::*;

/// The scalar oracle: counts by probing, no merging, no blocks.
fn oracle_counts(a: &[u32], b: &[u32]) -> (usize, usize, usize) {
    let and = a.iter().filter(|x| b.contains(x)).count();
    (and, a.len() + b.len() - and, a.len() - and)
}

fn check_layout<S: Set>(layout: &str, a: &[u32], b: &[u32]) {
    let (and, or, diff) = oracle_counts(a, b);
    let sa = S::from_sorted(a);
    let sb = S::from_sorted(b);
    assert_eq!(sa.intersect_count(&sb), and, "{layout}: intersect_count");
    assert_eq!(sa.union_count(&sb), or, "{layout}: union_count");
    assert_eq!(sa.diff_count(&sb), diff, "{layout}: diff_count");
    assert_eq!(
        sa.intersect_count_sorted(b),
        and,
        "{layout}: intersect_count_sorted"
    );
    // Symmetric operations must count the same in both directions.
    assert_eq!(sb.intersect_count(&sa), and, "{layout}: and symmetry");
    assert_eq!(sb.union_count(&sa), or, "{layout}: or symmetry");
}

fn check_all_layouts(a: &[u32], b: &[u32]) {
    check_layout::<SortedVecSet>("SortedVecSet", a, b);
    check_layout::<DenseBitSet>("DenseBitSet", a, b);
    check_layout::<HashVertexSet>("HashVertexSet", a, b);
    check_layout::<SparseBitSet>("SparseBitSet", a, b);
    check_layout::<RoaringSet>("RoaringSet", a, b);

    // The slice-level kernel used by CSR neighborhood counting.
    let (and, _, _) = oracle_counts(a, b);
    assert_eq!(intersect_count_sorted_slices(a, b), and);
    assert_eq!(intersect_count_sorted_slices(b, a), and);
}

/// Contiguous run of `len` values starting at `start` — `len` chosen
/// around 63/64/65 exercises sets whose bit representation ends one
/// short of, exactly at, and one past a u64 word boundary.
fn run(start: u32, len: usize) -> Vec<u32> {
    (start..start + len as u32).collect()
}

#[test]
fn word_boundary_sizes_match_oracle() {
    for &len_a in &[0usize, 1, 63, 64, 65, 127, 128, 129] {
        for &len_b in &[0usize, 63, 64, 65] {
            for &offset in &[0u32, 32, 63, 64, 100] {
                check_all_layouts(&run(0, len_a), &run(offset, len_b));
            }
        }
    }
}

#[test]
fn disjoint_and_identical_inputs_match_oracle() {
    let a = run(0, 64);
    let far = run(1 << 20, 64);
    check_all_layouts(&a, &far); // disjoint, far apart
    check_all_layouts(&a, &run(64, 64)); // disjoint, adjacent at a word edge
    check_all_layouts(&a, &a.clone()); // identical
    check_all_layouts(&[], &[]); // both empty
}

/// Strictly increasing vector whose length lands in a configurable
/// band, mixing dense runs and sparse strides so both the merge and
/// gallop paths fire.
fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..10_000, 0..max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_inputs_match_oracle(
        a in sorted_vec(300),
        b in sorted_vec(300),
    ) {
        check_all_layouts(&a, &b);
    }

    #[test]
    fn skewed_inputs_drive_gallop_and_block_skip(
        small in sorted_vec(8),
        big in sorted_vec(2000),
    ) {
        // |big| / |small| usually exceeds GALLOP_RATIO, so this leans
        // on the galloping path; the dense big side also makes the
        // block-skip loops take full-block strides.
        check_all_layouts(&small, &big);
    }

    #[test]
    fn word_kernels_match_naive_bit_loops(
        a in proptest::collection::vec(0u64..u64::MAX, 0..40),
        b in proptest::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        fn naive(a: &[u64], b: &[u64], op: fn(u64, u64) -> u64) -> usize {
            let n = a.len().max(b.len());
            (0..n)
                .map(|i| {
                    let (x, y) = (
                        a.get(i).copied().unwrap_or(0),
                        b.get(i).copied().unwrap_or(0),
                    );
                    op(x, y).count_ones() as usize
                })
                .sum()
        }
        prop_assert_eq!(word_ops::and_count(&a, &b), naive(&a, &b, |x, y| x & y));
        prop_assert_eq!(word_ops::andnot_count(&a, &b), naive(&a, &b, |x, y| x & !y));
        prop_assert_eq!(word_ops::or_count(&a, &b), naive(&a, &b, |x, y| x | y));
        prop_assert_eq!(
            word_ops::popcount(&a),
            a.iter().map(|w| w.count_ones() as usize).sum::<usize>()
        );
    }
}
