//! Fundamental identifiers shared by every GMS crate.

/// Identifier of a vertex. The paper models vertices as integer IDs
/// `V = {1, ..., n}`; we use zero-based `u32` IDs, which keeps
/// neighborhoods at 4 bytes per entry (half the size of `usize` on
/// 64-bit platforms) — a deliberate storage choice for graphs whose
/// runtimes are dominated by data movement.
pub type NodeId = u32;

/// Identifier of an edge within an edge array.
pub type EdgeId = usize;

/// An undirected edge, stored with `src <= dst` once normalized.
pub type Edge = (NodeId, NodeId);

/// Normalizes an undirected edge so that the smaller endpoint comes first.
#[inline]
pub fn normalize_edge(u: NodeId, v: NodeId) -> Edge {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_orders_endpoints() {
        assert_eq!(normalize_edge(3, 7), (3, 7));
        assert_eq!(normalize_edge(7, 3), (3, 7));
        assert_eq!(normalize_edge(5, 5), (5, 5));
    }
}
