//! A small, fast, non-cryptographic hasher for integer keys.
//!
//! The standard library's SipHash defends against HashDoS but is slow
//! for 4-byte vertex IDs. Graph mining kernels hash internal vertex
//! IDs only (never attacker-controlled input), so we use an
//! Fx-style multiply-rotate hash, implemented here to stay within the
//! approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher in the style of `rustc-hash`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` using the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` using the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for key in 0u32..10_000 {
            let mut hasher = FxHasher::default();
            hasher.write_u32(key);
            seen.insert(hasher.finish());
        }
        // A multiply-rotate hash over sequential u32 keys must not
        // collapse; allow a tiny number of collisions.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        map.insert(1, 10);
        map.insert(2, 20);
        assert_eq!(map.get(&1), Some(&10));

        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
        assert!(!set.contains(&8));
    }

    #[test]
    fn write_bytes_covers_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi"); // 9 bytes: one full chunk + 1 partial
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
