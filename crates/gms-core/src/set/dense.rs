//! `DenseBitSet`: a set stored as a dense bitvector of `n` bits.
//!
//! The paper (§5.2) notes that a dense bitvector is more
//! space-efficient than a sparse array when the set is very large
//! relative to the universe, and that it enables O(1) insertion,
//! deletion and membership — useful in algorithms with dynamic sets
//! such as Bron–Kerbosch. Binary operations are word-parallel and
//! route through the u64-block kernels in [`super::word_ops`], whose
//! four-lane loops the autovectorizer turns into SIMD.

use super::{word_ops, Set, SetElement};
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A set of vertex IDs backed by a growable dense bitvector.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl Clone for DenseBitSet {
    fn clone(&self) -> Self {
        Self {
            words: self.words.clone(),
            len: self.len,
        }
    }

    /// Overwrites in place, reusing the existing word buffer — the
    /// scratch-set recycling in the mining kernels (e.g. Bron–Kerbosch
    /// child-set construction) relies on this being allocation-free
    /// once capacity has grown.
    fn clone_from(&mut self, source: &Self) {
        self.words.clone_from(&source.words);
        self.len = source.len;
    }
}

impl DenseBitSet {
    #[inline]
    fn locate(element: SetElement) -> (usize, u64) {
        let idx = element as usize;
        (idx / WORD_BITS, 1u64 << (idx % WORD_BITS))
    }

    fn grow_to(&mut self, word_index: usize) {
        if word_index >= self.words.len() {
            self.words.resize(word_index + 1, 0);
        }
    }

    /// Trims trailing zero words so structural equality is canonical.
    fn shrink(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    fn recount(&mut self) {
        self.len = word_ops::popcount(&self.words);
    }

    /// Word-level view, for word-parallel consumers.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl PartialEq for DenseBitSet {
    fn eq(&self, other: &Self) -> bool {
        // `shrink` keeps representations canonical after mutation, but
        // compare defensively by treating missing words as zero.
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short
            .iter()
            .chain(std::iter::repeat(&0))
            .zip(long.iter())
            .all(|(a, b)| a == b)
    }
}

impl Eq for DenseBitSet {}

impl Set for DenseBitSet {
    fn empty() -> Self {
        Self {
            words: Vec::new(),
            len: 0,
        }
    }

    fn with_universe(universe_hint: usize) -> Self {
        Self {
            words: Vec::with_capacity(universe_hint.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    fn from_sorted(elements: &[SetElement]) -> Self {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        let mut set = match elements.last() {
            Some(&max) => {
                let words = vec![0u64; (max as usize) / WORD_BITS + 1];
                Self { words, len: 0 }
            }
            None => return Self::empty(),
        };
        for &e in elements {
            let (w, bit) = Self::locate(e);
            set.words[w] |= bit;
        }
        set.len = elements.len();
        set
    }

    fn assign_sorted(&mut self, elements: &[SetElement]) {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        self.words.clear();
        if let Some(&max) = elements.last() {
            self.words.resize((max as usize) / WORD_BITS + 1, 0);
            for &e in elements {
                let (w, bit) = Self::locate(e);
                self.words[w] |= bit;
            }
        }
        self.len = elements.len();
    }

    #[inline]
    fn cardinality(&self) -> usize {
        self.len
    }

    #[inline]
    fn contains(&self, element: SetElement) -> bool {
        let (w, bit) = Self::locate(element);
        self.words.get(w).is_some_and(|word| word & bit != 0)
    }

    fn add(&mut self, element: SetElement) {
        let (w, bit) = Self::locate(element);
        self.grow_to(w);
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.len += 1;
        }
    }

    fn remove(&mut self, element: SetElement) {
        let (w, bit) = Self::locate(element);
        if let Some(word) = self.words.get_mut(w) {
            if *word & bit != 0 {
                *word &= !bit;
                self.len -= 1;
                self.shrink();
            }
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        let mut words = Vec::new();
        let len = word_ops::and_into(&self.words, &other.words, &mut words);
        Self { words, len }
    }

    fn intersect_count(&self, other: &Self) -> usize {
        word_ops::and_count(&self.words, &other.words)
    }

    fn intersect_inplace(&mut self, other: &Self) {
        let n = self.words.len().min(other.words.len());
        for (w, o) in self.words[..n].iter_mut().zip(&other.words[..n]) {
            *w &= o;
        }
        self.words.truncate(n);
        self.shrink();
        self.recount();
    }

    fn union(&self, other: &Self) -> Self {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        let mut words = long.clone();
        for (w, s) in words.iter_mut().zip(short.iter()) {
            *w |= s;
        }
        let mut out = Self { words, len: 0 };
        out.recount();
        out
    }

    fn union_count(&self, other: &Self) -> usize {
        word_ops::or_count(&self.words, &other.words)
    }

    fn union_inplace(&mut self, other: &Self) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.recount();
    }

    fn diff(&self, other: &Self) -> Self {
        let mut words = Vec::new();
        let len = word_ops::andnot_into(&self.words, &other.words, &mut words);
        Self { words, len }
    }

    fn diff_count(&self, other: &Self) -> usize {
        word_ops::andnot_count(&self.words, &other.words)
    }

    fn diff_inplace(&mut self, other: &Self) {
        let n = self.words.len().min(other.words.len());
        for (w, o) in self.words[..n].iter_mut().zip(&other.words[..n]) {
            *w &= !o;
        }
        self.shrink();
        self.recount();
    }

    fn iter(&self) -> impl Iterator<Item = SetElement> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter {
                word,
                base: (wi * WORD_BITS) as u32,
            })
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    fn min(&self) -> Option<SetElement> {
        self.words.iter().enumerate().find_map(|(wi, &word)| {
            (word != 0).then(|| (wi * WORD_BITS) as u32 + word.trailing_zeros())
        })
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = SetElement;

    #[inline]
    fn next(&mut self) -> Option<SetElement> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl FromIterator<SetElement> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = SetElement>>(iter: I) -> Self {
        let mut set = Self::empty();
        for e in iter {
            set.add(e);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all::<DenseBitSet>();
    }

    #[test]
    fn word_boundaries() {
        let mut s = DenseBitSet::empty();
        for e in [0u32, 63, 64, 127, 128] {
            s.add(e);
        }
        assert_eq!(s.to_vec(), vec![0, 63, 64, 127, 128]);
        s.remove(64);
        assert_eq!(s.to_vec(), vec![0, 63, 127, 128]);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let a = DenseBitSet::from_sorted(&[1, 2]);
        let mut b = DenseBitSet::from_sorted(&[1, 2, 1000]);
        b.remove(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn diff_count_consistent_with_materialized() {
        let a: DenseBitSet = (0..500).collect();
        let b: DenseBitSet = (250..750).collect();
        assert_eq!(a.diff_count(&b), a.diff(&b).cardinality());
        assert_eq!(a.diff_count(&b), 250);
    }

    #[test]
    fn min_skips_zero_words() {
        let s = DenseBitSet::from_sorted(&[700]);
        assert_eq!(s.min(), Some(700));
    }
}
