//! `HashVertexSet`: a set stored in an open-addressing hash table.
//!
//! Mirrors the paper's `HashSet` implementation (backed by a Robin
//! Hood table in the original; here `std::collections::HashSet` with
//! the crate-local Fx hasher). O(1) expected membership and updates;
//! binary set operations cost O(|A| + |B|) expected.
//!
//! Iteration sorts the elements first so the ascending-order contract
//! of [`Set::iter`] holds; callers that only need membership tests pay
//! nothing for this.

use super::{Set, SetElement};
use crate::hash::FxHashSet;

/// A set of vertex IDs backed by a hash table.
#[derive(Clone, Debug, Default)]
pub struct HashVertexSet {
    elements: FxHashSet<SetElement>,
}

impl PartialEq for HashVertexSet {
    fn eq(&self, other: &Self) -> bool {
        self.elements == other.elements
    }
}

impl Eq for HashVertexSet {}

impl Set for HashVertexSet {
    fn empty() -> Self {
        Self {
            elements: FxHashSet::default(),
        }
    }

    fn with_universe(universe_hint: usize) -> Self {
        let mut elements = FxHashSet::default();
        elements.reserve(universe_hint.min(1024));
        Self { elements }
    }

    fn from_sorted(elements: &[SetElement]) -> Self {
        Self {
            elements: elements.iter().copied().collect(),
        }
    }

    #[inline]
    fn cardinality(&self) -> usize {
        self.elements.len()
    }

    #[inline]
    fn contains(&self, element: SetElement) -> bool {
        self.elements.contains(&element)
    }

    fn add(&mut self, element: SetElement) {
        self.elements.insert(element);
    }

    fn remove(&mut self, element: SetElement) {
        self.elements.remove(&element);
    }

    fn intersect(&self, other: &Self) -> Self {
        let (small, big) = if self.elements.len() <= other.elements.len() {
            (&self.elements, &other.elements)
        } else {
            (&other.elements, &self.elements)
        };
        Self {
            elements: small.iter().filter(|e| big.contains(e)).copied().collect(),
        }
    }

    fn intersect_count(&self, other: &Self) -> usize {
        let (small, big) = if self.elements.len() <= other.elements.len() {
            (&self.elements, &other.elements)
        } else {
            (&other.elements, &self.elements)
        };
        small.iter().filter(|e| big.contains(e)).count()
    }

    fn intersect_inplace(&mut self, other: &Self) {
        self.elements.retain(|e| other.elements.contains(e));
    }

    fn union(&self, other: &Self) -> Self {
        let mut elements = self.elements.clone();
        elements.extend(other.elements.iter().copied());
        Self { elements }
    }

    fn union_count(&self, other: &Self) -> usize {
        // Inclusion-exclusion over the probe-based intersection count:
        // no table is built, unlike the materializing default.
        self.elements.len() + other.elements.len() - self.intersect_count(other)
    }

    fn union_inplace(&mut self, other: &Self) {
        self.elements.extend(other.elements.iter().copied());
    }

    fn diff(&self, other: &Self) -> Self {
        Self {
            elements: self
                .elements
                .iter()
                .filter(|e| !other.elements.contains(e))
                .copied()
                .collect(),
        }
    }

    fn diff_count(&self, other: &Self) -> usize {
        self.elements.len() - self.intersect_count(other)
    }

    fn diff_inplace(&mut self, other: &Self) {
        self.elements.retain(|e| !other.elements.contains(e));
    }

    fn iter(&self) -> impl Iterator<Item = SetElement> + '_ {
        let mut sorted: Vec<SetElement> = self.elements.iter().copied().collect();
        sorted.sort_unstable();
        sorted.into_iter()
    }

    fn heap_bytes(&self) -> usize {
        // Approximation: hashbrown stores ~1 control byte plus the
        // element per bucket, with capacity >= len / 0.875.
        self.elements.capacity() * (std::mem::size_of::<SetElement>() + 1)
    }
}

impl FromIterator<SetElement> for HashVertexSet {
    fn from_iter<I: IntoIterator<Item = SetElement>>(iter: I) -> Self {
        Self {
            elements: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all::<HashVertexSet>();
    }

    #[test]
    fn iteration_is_sorted_despite_hash_order() {
        let s: HashVertexSet = [9u32, 3, 7, 1, 100, 50].into_iter().collect();
        assert_eq!(s.to_vec(), vec![1, 3, 7, 9, 50, 100]);
    }

    #[test]
    fn retain_based_inplace_ops() {
        let mut a: HashVertexSet = (0..100).collect();
        let b: HashVertexSet = (50..150).collect();
        a.intersect_inplace(&b);
        assert_eq!(a.cardinality(), 50);
        let mut c: HashVertexSet = (0..100).collect();
        c.diff_inplace(&b);
        assert_eq!(c.cardinality(), 50);
        assert!(c.iter().all(|x| x < 50));
    }
}
