//! Containers of a roaring bitmap: sorted `u16` arrays, 65536-bit
//! bitmaps, and run-length-encoded runs.
//!
//! A roaring bitmap splits the `u32` universe into 2^16 chunks keyed
//! by the high 16 bits; each chunk stores its low 16 bits in whichever
//! container is most compact. The classical migration threshold is
//! 4096 elements: below it a sorted array is smaller, above it the
//! fixed 8 KiB bitmap is smaller.

use crate::set::word_ops;

/// Migration threshold between array and bitmap containers.
pub const ARRAY_MAX: usize = 4096;

const WORDS: usize = 1024; // 65536 bits

/// A 65536-bit bitmap store with cached cardinality.
#[derive(Clone)]
pub struct BitmapStore {
    /// 1024 words covering the 65536-value chunk.
    pub words: Box<[u64; WORDS]>,
    /// Number of set bits, kept in sync by all mutators.
    pub len: u32,
}

impl BitmapStore {
    /// Creates an all-zero bitmap store.
    pub fn new() -> Self {
        Self {
            words: Box::new([0u64; WORDS]),
            len: 0,
        }
    }

    /// Membership test on the low 16 bits.
    #[inline]
    pub fn contains(&self, low: u16) -> bool {
        self.words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0
    }

    /// Sets a bit; returns whether it was newly set.
    #[inline]
    pub fn insert(&mut self, low: u16) -> bool {
        let word = &mut self.words[(low >> 6) as usize];
        let bit = 1u64 << (low & 63);
        if *word & bit == 0 {
            *word |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Clears a bit; returns whether it was previously set.
    #[inline]
    pub fn discard(&mut self, low: u16) -> bool {
        let word = &mut self.words[(low >> 6) as usize];
        let bit = 1u64 << (low & 63);
        if *word & bit != 0 {
            *word &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Number of set bits in the inclusive value range `start..=end`.
    pub fn count_range(&self, start: u16, end: u16) -> usize {
        debug_assert!(start <= end);
        let (ws, we) = ((start >> 6) as usize, (end >> 6) as usize);
        let start_mask = !0u64 << (start & 63);
        let end_mask = !0u64 >> (63 - (end & 63));
        if ws == we {
            return (self.words[ws] & start_mask & end_mask).count_ones() as usize;
        }
        (self.words[ws] & start_mask).count_ones() as usize
            + word_ops::popcount(&self.words[ws + 1..we])
            + (self.words[we] & end_mask).count_ones() as usize
    }

    /// Extracts the set bits as a sorted array.
    pub fn to_array(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.len as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let tz = w.trailing_zeros();
                out.push(((wi as u32) << 6 | tz) as u16);
                w &= w - 1;
            }
        }
        out
    }

    /// Builds a store from (possibly unsorted) values.
    pub fn from_array(values: &[u16]) -> Self {
        let mut store = Self::new();
        for &v in values {
            store.insert(v);
        }
        store
    }
}

/// A run of consecutive values `start ..= start + len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// First value covered by the run.
    pub start: u16,
    /// Length minus one, so a run of a single value has `len == 0`
    /// and the maximal run `0..=65535` is representable.
    pub len: u16,
}

impl Run {
    /// Last value covered by the run.
    #[inline]
    pub fn end(&self) -> u16 {
        self.start + self.len
    }

    /// Whether `v` lies inside the run.
    #[inline]
    pub fn contains(&self, v: u16) -> bool {
        self.start <= v && v <= self.end()
    }

    /// Number of values covered.
    #[inline]
    pub fn count(&self) -> usize {
        self.len as usize + 1
    }
}

/// One chunk of a roaring bitmap.
#[derive(Clone)]
pub enum Container {
    /// Sorted array of low bits; at most [`ARRAY_MAX`] entries.
    Array(Vec<u16>),
    /// Fixed 8 KiB bitmap; used above [`ARRAY_MAX`] entries.
    Bitmap(BitmapStore),
    /// Run-length encoding; produced by [`Container::optimize`].
    Run(Vec<Run>),
}

impl Default for Container {
    fn default() -> Self {
        Self::new()
    }
}

impl Container {
    /// Creates an empty (array) container.
    pub fn new() -> Self {
        Container::Array(Vec::new())
    }

    /// Number of stored values.
    pub fn cardinality(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap(b) => b.len as usize,
            Container::Run(runs) => runs.iter().map(Run::count).sum(),
        }
    }

    /// Membership test.
    pub fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&low).is_ok(),
            Container::Bitmap(b) => b.contains(low),
            Container::Run(runs) => runs
                .binary_search_by(|r| {
                    if r.end() < low {
                        std::cmp::Ordering::Less
                    } else if r.start > low {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Inserts a value, migrating Array→Bitmap past the threshold.
    /// Returns whether the value was new.
    pub fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if a.len() >= ARRAY_MAX {
                        let mut bitmap = BitmapStore::from_array(a);
                        bitmap.insert(low);
                        *self = Container::Bitmap(bitmap);
                    } else {
                        a.insert(pos, low);
                    }
                    true
                }
            },
            Container::Bitmap(b) => b.insert(low),
            Container::Run(_) => {
                if self.contains(low) {
                    return false;
                }
                self.devolve_runs();
                self.insert(low)
            }
        }
    }

    /// Removes a value, migrating Bitmap→Array below the threshold.
    /// Returns whether the value was present.
    pub fn discard(&mut self, low: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&low) {
                Ok(pos) => {
                    a.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(b) => {
                let removed = b.discard(low);
                if removed && (b.len as usize) <= ARRAY_MAX {
                    *self = Container::Array(b.to_array());
                }
                removed
            }
            Container::Run(_) => {
                if !self.contains(low) {
                    return false;
                }
                self.devolve_runs();
                self.discard(low)
            }
        }
    }

    /// Rewrites a Run container into Array or Bitmap form so that the
    /// mutating and binary-op code paths only deal with two layouts.
    pub fn devolve_runs(&mut self) {
        if let Container::Run(runs) = self {
            let cardinality: usize = runs.iter().map(Run::count).sum();
            if cardinality > ARRAY_MAX {
                let mut bitmap = BitmapStore::new();
                for run in runs.iter() {
                    for v in run.start..=run.end() {
                        bitmap.insert(v);
                    }
                }
                *self = Container::Bitmap(bitmap);
            } else {
                let mut array = Vec::with_capacity(cardinality);
                for run in runs.iter() {
                    array.extend(run.start..=run.end());
                }
                *self = Container::Array(array);
            }
        }
    }

    /// Returns an Array/Bitmap view of this container (cloning only
    /// when it is run-encoded).
    fn flat(&self) -> std::borrow::Cow<'_, Container> {
        match self {
            Container::Run(_) => {
                let mut c = self.clone();
                c.devolve_runs();
                std::borrow::Cow::Owned(c)
            }
            _ => std::borrow::Cow::Borrowed(self),
        }
    }

    /// Converts to run encoding when that is strictly smaller
    /// (the roaring `runOptimize` heuristic).
    pub fn optimize(&mut self) {
        let runs = self.to_runs();
        let run_bytes = runs.len() * 4 + 2;
        let current_bytes = match self {
            Container::Array(a) => a.len() * 2,
            Container::Bitmap(_) => 8192,
            Container::Run(_) => return,
        };
        if run_bytes < current_bytes {
            *self = Container::Run(runs);
        }
    }

    fn to_runs(&self) -> Vec<Run> {
        let mut runs: Vec<Run> = Vec::new();
        let mut push = |v: u16| match runs.last_mut() {
            Some(run) if run.end() + 1 == v && run.end() != u16::MAX => run.len += 1,
            _ => runs.push(Run { start: v, len: 0 }),
        };
        match self {
            Container::Array(a) => a.iter().copied().for_each(&mut push),
            Container::Bitmap(b) => b.to_array().into_iter().for_each(&mut push),
            Container::Run(r) => return r.clone(),
        }
        runs
    }

    /// Normalizes a freshly computed container to its most natural
    /// layout (Bitmap above the threshold, Array below).
    fn normalized(self) -> Container {
        match self {
            Container::Array(a) if a.len() > ARRAY_MAX => {
                Container::Bitmap(BitmapStore::from_array(&a))
            }
            Container::Bitmap(b) if (b.len as usize) <= ARRAY_MAX => Container::Array(b.to_array()),
            other => other,
        }
    }

    /// Intersection of two containers.
    pub fn and(&self, other: &Container) -> Container {
        let a = self.flat();
        let b = other.flat();
        let result = match (a.as_ref(), b.as_ref()) {
            (Container::Array(x), Container::Array(y)) => Container::Array(intersect_arrays(x, y)),
            (Container::Array(x), Container::Bitmap(y)) => {
                Container::Array(x.iter().copied().filter(|&v| y.contains(v)).collect())
            }
            (Container::Bitmap(x), Container::Array(y)) => {
                Container::Array(y.iter().copied().filter(|&v| x.contains(v)).collect())
            }
            (Container::Bitmap(x), Container::Bitmap(y)) => {
                let mut out = BitmapStore::new();
                let mut len = 0u32;
                for i in 0..WORDS {
                    let w = x.words[i] & y.words[i];
                    out.words[i] = w;
                    len += w.count_ones();
                }
                out.len = len;
                Container::Bitmap(out)
            }
            _ => unreachable!("flat() removes run containers"),
        };
        result.normalized()
    }

    /// Intersection cardinality without materialization.
    pub fn and_count(&self, other: &Container) -> usize {
        // Every encoding pair is handled directly — unlike the
        // materializing operations this never goes through `flat()`,
        // so run-encoded containers are counted without cloning and
        // the whole path is allocation-free.
        match (self, other) {
            (Container::Array(x), Container::Array(y)) => intersect_count_arrays(x, y),
            (Container::Array(x), Container::Bitmap(y))
            | (Container::Bitmap(y), Container::Array(x)) => {
                x.iter().filter(|&&v| y.contains(v)).count()
            }
            (Container::Bitmap(x), Container::Bitmap(y)) => {
                word_ops::and_count(&x.words[..], &y.words[..])
            }
            (Container::Run(r), Container::Array(a)) | (Container::Array(a), Container::Run(r)) => {
                run_array_and_count(r, a)
            }
            (Container::Run(r), Container::Bitmap(b))
            | (Container::Bitmap(b), Container::Run(r)) => r
                .iter()
                .map(|run| b.count_range(run.start, run.end()))
                .sum(),
            (Container::Run(x), Container::Run(y)) => run_run_and_count(x, y),
        }
    }

    /// Union of two containers.
    pub fn or(&self, other: &Container) -> Container {
        let a = self.flat();
        let b = other.flat();
        let result = match (a.as_ref(), b.as_ref()) {
            (Container::Array(x), Container::Array(y)) => {
                let merged = union_arrays(x, y);
                Container::Array(merged)
            }
            (Container::Array(x), Container::Bitmap(y))
            | (Container::Bitmap(y), Container::Array(x)) => {
                let mut out = y.clone();
                for &v in x {
                    out.insert(v);
                }
                Container::Bitmap(out)
            }
            (Container::Bitmap(x), Container::Bitmap(y)) => {
                let mut out = BitmapStore::new();
                let mut len = 0u32;
                for i in 0..WORDS {
                    let w = x.words[i] | y.words[i];
                    out.words[i] = w;
                    len += w.count_ones();
                }
                out.len = len;
                Container::Bitmap(out)
            }
            _ => unreachable!("flat() removes run containers"),
        };
        result.normalized()
    }

    /// Difference `self \ other`.
    pub fn andnot(&self, other: &Container) -> Container {
        let a = self.flat();
        let b = other.flat();
        let result = match (a.as_ref(), b.as_ref()) {
            (Container::Array(x), Container::Array(y)) => Container::Array(diff_arrays(x, y)),
            (Container::Array(x), Container::Bitmap(y)) => {
                Container::Array(x.iter().copied().filter(|&v| !y.contains(v)).collect())
            }
            (Container::Bitmap(x), Container::Array(y)) => {
                let mut out = x.clone();
                for &v in y {
                    out.discard(v);
                }
                Container::Bitmap(out)
            }
            (Container::Bitmap(x), Container::Bitmap(y)) => {
                let mut out = BitmapStore::new();
                let mut len = 0u32;
                for i in 0..WORDS {
                    let w = x.words[i] & !y.words[i];
                    out.words[i] = w;
                    len += w.count_ones();
                }
                out.len = len;
                Container::Bitmap(out)
            }
            _ => unreachable!("flat() removes run containers"),
        };
        result.normalized()
    }

    /// Iterates values in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(a) => Box::new(a.iter().copied()),
            Container::Bitmap(b) => Box::new(BitmapIter {
                store: b,
                word_index: 0,
                word: b.words[0],
            }),
            Container::Run(runs) => Box::new(runs.iter().flat_map(|r| r.start..=r.end())),
        }
    }

    /// Heap bytes used by the container payload.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.capacity() * 2,
            Container::Bitmap(_) => 8192,
            Container::Run(r) => r.capacity() * std::mem::size_of::<Run>(),
        }
    }
}

struct BitmapIter<'a> {
    store: &'a BitmapStore,
    word_index: usize,
    word: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        loop {
            if self.word != 0 {
                let tz = self.word.trailing_zeros();
                self.word &= self.word - 1;
                return Some(((self.word_index as u32) << 6 | tz) as u16);
            }
            self.word_index += 1;
            if self.word_index >= WORDS {
                return None;
            }
            self.word = self.store.words[self.word_index];
        }
    }
}

fn intersect_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// `|runs ∩ array|`: for each run, count the array elements inside it
/// with two partition-point searches. Both inputs are sorted, so each
/// search resumes where the previous run left off.
fn run_array_and_count(runs: &[Run], array: &[u16]) -> usize {
    let mut total = 0;
    let mut lo = 0;
    for r in runs {
        let from = lo + array[lo..].partition_point(|&v| v < r.start);
        let to = from + array[from..].partition_point(|&v| v <= r.end());
        total += to - from;
        lo = to;
    }
    total
}

/// `|a ∩ b|` for two sorted run lists: overlap length of each pair of
/// intersecting runs, advancing whichever run ends first.
fn run_run_and_count(a: &[Run], b: &[Run]) -> usize {
    let (mut i, mut j, mut total) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start);
        let hi = a[i].end().min(b[j].end());
        if lo <= hi {
            total += (hi - lo) as usize + 1;
        }
        if a[i].end() <= b[j].end() {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn intersect_count_arrays(a: &[u16], b: &[u16]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn union_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn diff_arrays(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array_container(values: &[u16]) -> Container {
        Container::Array(values.to_vec())
    }

    fn bitmap_container(values: &[u16]) -> Container {
        Container::Bitmap(BitmapStore::from_array(values))
    }

    #[test]
    fn insert_migrates_array_to_bitmap() {
        let mut c = Container::new();
        for v in 0..=ARRAY_MAX as u16 {
            c.insert(v);
        }
        assert!(matches!(c, Container::Bitmap(_)));
        assert_eq!(c.cardinality(), ARRAY_MAX + 1);
        assert!(c.contains(ARRAY_MAX as u16));
    }

    #[test]
    fn discard_migrates_bitmap_to_array() {
        let mut c = Container::new();
        for v in 0..=(ARRAY_MAX as u16) {
            c.insert(v);
        }
        assert!(matches!(c, Container::Bitmap(_)));
        c.discard(0);
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.cardinality(), ARRAY_MAX);
    }

    #[test]
    fn run_container_roundtrip() {
        let mut c = Container::new();
        for v in 100..2000u16 {
            c.insert(v);
        }
        c.optimize();
        assert!(matches!(c, Container::Run(_)));
        assert_eq!(c.cardinality(), 1900);
        assert!(c.contains(100));
        assert!(c.contains(1999));
        assert!(!c.contains(99));
        assert!(!c.contains(2000));
        let values: Vec<u16> = c.iter().collect();
        assert_eq!(values, (100..2000).collect::<Vec<u16>>());
    }

    #[test]
    fn run_container_insert_and_discard_devolve() {
        let mut c = Container::Run(vec![Run { start: 10, len: 9 }]);
        assert!(!c.insert(15)); // already present, stays a run
        assert!(matches!(c, Container::Run(_)));
        assert!(c.insert(100));
        assert!(c.contains(100));
        assert!(c.discard(10));
        assert!(!c.contains(10));
    }

    #[test]
    fn ops_across_layouts_agree() {
        let a_vals: Vec<u16> = (0..6000).step_by(2).collect(); // 3000 even
        let b_vals: Vec<u16> = (0..6000).step_by(3).collect(); // multiples of 3
        let expected_and: Vec<u16> = (0..6000).step_by(6).collect();

        let layouts_a = [array_container(&a_vals), bitmap_container(&a_vals)];
        let layouts_b = [array_container(&b_vals), bitmap_container(&b_vals)];
        for a in &layouts_a {
            for b in &layouts_b {
                let and = a.and(b);
                assert_eq!(and.iter().collect::<Vec<_>>(), expected_and);
                assert_eq!(a.and_count(b), expected_and.len());
                let or = a.or(b);
                assert_eq!(or.cardinality(), 3000 + 2000 - 1000);
                let andnot = a.andnot(b);
                assert_eq!(andnot.cardinality(), 3000 - 1000);
            }
        }
    }

    #[test]
    fn run_containers_participate_in_ops() {
        let mut a = Container::new();
        for v in 0..5000u16 {
            a.insert(v);
        }
        a.optimize();
        assert!(matches!(a, Container::Run(_)));
        let b = array_container(&[4998, 4999, 5000, 5001]);
        let and = a.and(&b);
        assert_eq!(and.iter().collect::<Vec<_>>(), vec![4998, 4999]);
        let or = a.or(&b);
        assert_eq!(or.cardinality(), 5002);
    }

    #[test]
    fn and_count_handles_every_encoding_pair() {
        let a_vals: Vec<u16> = (100..3000).collect();
        let b_vals: Vec<u16> = (0..6000).step_by(3).collect();
        let expected = b_vals.iter().filter(|&&v| (100..3000).contains(&v)).count();

        let mut run_a = array_container(&a_vals);
        run_a.optimize();
        assert!(matches!(run_a, Container::Run(_)));
        // Single-value runs exercise the run-vs-run overlap walk hard.
        let run_b = Container::Run(b_vals.iter().map(|&v| Run { start: v, len: 0 }).collect());

        let layouts_a = [array_container(&a_vals), bitmap_container(&a_vals), run_a];
        let layouts_b = [array_container(&b_vals), bitmap_container(&b_vals), run_b];
        for a in &layouts_a {
            for b in &layouts_b {
                assert_eq!(a.and_count(b), expected);
                assert_eq!(b.and_count(a), expected);
            }
        }
    }

    #[test]
    fn bitmap_count_range_masks_boundaries() {
        let store = BitmapStore::from_array(&(0..=u16::MAX).step_by(2).collect::<Vec<_>>());
        assert_eq!(store.count_range(0, u16::MAX), 32768);
        assert_eq!(store.count_range(0, 0), 1);
        assert_eq!(store.count_range(1, 1), 0);
        assert_eq!(store.count_range(62, 66), 3); // 62, 64, 66
        assert_eq!(store.count_range(63, 65), 1); // just 64
        assert_eq!(store.count_range(100, 300), 101);
    }

    #[test]
    fn max_run_is_representable() {
        let run = Run {
            start: 0,
            len: u16::MAX,
        };
        assert_eq!(run.count(), 65536);
        assert!(run.contains(u16::MAX));
    }

    #[test]
    fn optimize_keeps_sparse_arrays() {
        let mut c = array_container(&[1, 100, 1000, 10000]);
        c.optimize();
        assert!(matches!(c, Container::Array(_)));
    }

    #[test]
    fn bitmap_iter_covers_last_word() {
        let c = bitmap_container(&[0, 63, 64, 65535]);
        // bitmap_container stays a bitmap only above threshold via
        // normalized(); construct directly to test iteration.
        let values: Vec<u16> = c.iter().collect();
        assert_eq!(values, vec![0, 63, 64, 65535]);
    }
}
