//! `RoaringSet`: a compressed bitmap set, implemented from scratch.
//!
//! Roaring bitmaps ([Chambi et al. 2016]) partition the 32-bit
//! universe by the high 16 bits of each value; every populated chunk
//! stores its low 16 bits in a sorted `u16` array, an 8 KiB bitmap, or
//! a run-length encoding — whichever is most compact. The paper uses
//! roaring bitmaps as the default layout for the Bron–Kerbosch
//! auxiliary sets `P`, `X`, `R` and for vertex neighborhoods, citing
//! their mild compression *without* expensive decompression; this is
//! the workhorse behind the >9× maximal-clique speedups.
//!
//! [Chambi et al. 2016]: https://arxiv.org/abs/1402.6407

mod container;

pub use container::{Container, Run, ARRAY_MAX};

use super::{Set, SetElement};

/// A compressed roaring bitmap over `u32` vertex IDs.
#[derive(Clone)]
pub struct RoaringSet {
    /// Sorted high-16-bit keys of the populated chunks.
    keys: Vec<u16>,
    /// Containers aligned with `keys`.
    containers: Vec<Container>,
}

#[inline]
fn split(value: SetElement) -> (u16, u16) {
    ((value >> 16) as u16, (value & 0xFFFF) as u16)
}

#[inline]
fn join(key: u16, low: u16) -> SetElement {
    (key as u32) << 16 | low as u32
}

impl RoaringSet {
    /// Converts every container to its most compact encoding,
    /// including run-length encoding (roaring's `runOptimize`).
    pub fn optimize(&mut self) {
        for c in &mut self.containers {
            c.optimize();
        }
    }

    /// Number of populated 65536-value chunks.
    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    #[inline]
    fn container_index(&self, key: u16) -> Result<usize, usize> {
        self.keys.binary_search(&key)
    }

    fn drop_if_empty(&mut self, idx: usize) {
        if self.containers[idx].cardinality() == 0 {
            self.keys.remove(idx);
            self.containers.remove(idx);
        }
    }

    /// Merges two roaring sets key-by-key with the given per-container
    /// operation, keeping only keys present in both (intersection-like).
    fn zip_common<F: Fn(&Container, &Container) -> Container>(&self, other: &Self, op: F) -> Self {
        let mut keys = Vec::new();
        let mut containers = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let c = op(&self.containers[i], &other.containers[j]);
                    if c.cardinality() > 0 {
                        keys.push(self.keys[i]);
                        containers.push(c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Self { keys, containers }
    }
}

impl Default for RoaringSet {
    fn default() -> Self {
        Self::empty()
    }
}

impl PartialEq for RoaringSet {
    fn eq(&self, other: &Self) -> bool {
        if self.keys != other.keys {
            return false;
        }
        self.containers
            .iter()
            .zip(&other.containers)
            .all(|(a, b)| a.cardinality() == b.cardinality() && a.iter().eq(b.iter()))
    }
}

impl Eq for RoaringSet {}

impl std::fmt::Debug for RoaringSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoaringSet")
            .field("cardinality", &self.cardinality())
            .field("containers", &self.containers.len())
            .finish()
    }
}

impl Set for RoaringSet {
    fn empty() -> Self {
        Self {
            keys: Vec::new(),
            containers: Vec::new(),
        }
    }

    fn from_sorted(elements: &[SetElement]) -> Self {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        let mut set = Self::empty();
        let mut chunk_start = 0;
        while chunk_start < elements.len() {
            let (key, _) = split(elements[chunk_start]);
            let chunk_end =
                elements[chunk_start..].partition_point(|&e| split(e).0 == key) + chunk_start;
            let lows: Vec<u16> = elements[chunk_start..chunk_end]
                .iter()
                .map(|&e| split(e).1)
                .collect();
            let container = if lows.len() > ARRAY_MAX {
                Container::Bitmap(container::BitmapStore::from_array(&lows))
            } else {
                Container::Array(lows)
            };
            set.keys.push(key);
            set.containers.push(container);
            chunk_start = chunk_end;
        }
        set
    }

    fn cardinality(&self) -> usize {
        self.containers.iter().map(Container::cardinality).sum()
    }

    fn contains(&self, element: SetElement) -> bool {
        let (key, low) = split(element);
        match self.container_index(key) {
            Ok(idx) => self.containers[idx].contains(low),
            Err(_) => false,
        }
    }

    fn add(&mut self, element: SetElement) {
        let (key, low) = split(element);
        match self.container_index(key) {
            Ok(idx) => {
                self.containers[idx].insert(low);
            }
            Err(pos) => {
                let mut c = Container::new();
                c.insert(low);
                self.keys.insert(pos, key);
                self.containers.insert(pos, c);
            }
        }
    }

    fn remove(&mut self, element: SetElement) {
        let (key, low) = split(element);
        if let Ok(idx) = self.container_index(key) {
            if self.containers[idx].discard(low) {
                self.drop_if_empty(idx);
            }
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        self.zip_common(other, Container::and)
    }

    fn intersect_count(&self, other: &Self) -> usize {
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += self.containers[i].and_count(&other.containers[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    fn union_count(&self, other: &Self) -> usize {
        // Inclusion-exclusion: cardinality() is an O(#containers) sum
        // of cached per-container counts, and intersect_count merges
        // keys without materializing containers — nothing allocates.
        self.cardinality() + other.cardinality() - self.intersect_count(other)
    }

    fn diff_count(&self, other: &Self) -> usize {
        self.cardinality() - self.intersect_count(other)
    }

    fn union(&self, other: &Self) -> Self {
        let mut keys = Vec::with_capacity(self.keys.len() + other.keys.len());
        let mut containers = Vec::with_capacity(keys.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => {
                    keys.push(self.keys[i]);
                    containers.push(self.containers[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    keys.push(other.keys[j]);
                    containers.push(other.containers[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    keys.push(self.keys[i]);
                    containers.push(self.containers[i].or(&other.containers[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
        for k in i..self.keys.len() {
            keys.push(self.keys[k]);
            containers.push(self.containers[k].clone());
        }
        for k in j..other.keys.len() {
            keys.push(other.keys[k]);
            containers.push(other.containers[k].clone());
        }
        Self { keys, containers }
    }

    fn diff(&self, other: &Self) -> Self {
        let mut keys = Vec::with_capacity(self.keys.len());
        let mut containers = Vec::with_capacity(self.keys.len());
        let mut j = 0;
        for (i, &key) in self.keys.iter().enumerate() {
            while j < other.keys.len() && other.keys[j] < key {
                j += 1;
            }
            if j < other.keys.len() && other.keys[j] == key {
                let c = self.containers[i].andnot(&other.containers[j]);
                if c.cardinality() > 0 {
                    keys.push(key);
                    containers.push(c);
                }
            } else {
                keys.push(key);
                containers.push(self.containers[i].clone());
            }
        }
        Self { keys, containers }
    }

    fn iter(&self) -> impl Iterator<Item = SetElement> + '_ {
        self.keys
            .iter()
            .zip(&self.containers)
            .flat_map(|(&key, container)| container.iter().map(move |low| join(key, low)))
    }

    fn heap_bytes(&self) -> usize {
        self.keys.capacity() * 2
            + self.containers.capacity() * std::mem::size_of::<Container>()
            + self
                .containers
                .iter()
                .map(Container::heap_bytes)
                .sum::<usize>()
    }

    fn min(&self) -> Option<SetElement> {
        let key = *self.keys.first()?;
        self.containers[0].iter().next().map(|low| join(key, low))
    }
}

impl FromIterator<SetElement> for RoaringSet {
    fn from_iter<I: IntoIterator<Item = SetElement>>(iter: I) -> Self {
        let mut elements: Vec<SetElement> = iter.into_iter().collect();
        elements.sort_unstable();
        elements.dedup();
        Self::from_sorted(&elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all::<RoaringSet>();
    }

    #[test]
    fn spans_multiple_containers() {
        let elements: Vec<u32> = vec![0, 1, 65_535, 65_536, 65_537, 200_000, 4_000_000_000];
        let s = RoaringSet::from_sorted(&elements);
        assert_eq!(s.num_containers(), 4);
        assert_eq!(s.to_vec(), elements);
        for &e in &elements {
            assert!(s.contains(e));
        }
        assert!(!s.contains(2));
        assert!(!s.contains(65_538));
    }

    #[test]
    fn dense_chunk_becomes_bitmap_on_construction() {
        let elements: Vec<u32> = (0..10_000).collect();
        let s = RoaringSet::from_sorted(&elements);
        assert_eq!(s.num_containers(), 1);
        assert_eq!(s.cardinality(), 10_000);
        assert_eq!(s.to_vec(), elements);
    }

    #[test]
    fn cross_container_ops() {
        let a: RoaringSet = (0u32..100_000).step_by(2).collect();
        let b: RoaringSet = (0u32..100_000).step_by(3).collect();
        let and = a.intersect(&b);
        assert_eq!(and.cardinality(), 100_000usize.div_ceil(6));
        assert_eq!(a.intersect_count(&b), and.cardinality());
        let or = a.union(&b);
        assert_eq!(
            or.cardinality(),
            a.cardinality() + b.cardinality() - and.cardinality()
        );
        let not = a.diff(&b);
        assert_eq!(not.cardinality(), a.cardinality() - and.cardinality());
    }

    #[test]
    fn remove_drops_empty_containers() {
        let mut s = RoaringSet::from_sorted(&[5, 70_000]);
        assert_eq!(s.num_containers(), 2);
        s.remove(70_000);
        assert_eq!(s.num_containers(), 1);
        assert_eq!(s.to_vec(), vec![5]);
    }

    #[test]
    fn optimize_preserves_contents() {
        let elements: Vec<u32> = (1000u32..60_000).collect();
        let mut s = RoaringSet::from_sorted(&elements);
        let before = s.to_vec();
        let bytes_before = s.heap_bytes();
        s.optimize();
        assert_eq!(s.to_vec(), before);
        assert!(
            s.heap_bytes() < bytes_before,
            "runs should compress a dense range"
        );
        // Operations still work on the run-encoded set.
        let probe: RoaringSet = [999u32, 1000, 59_999, 60_000].into_iter().collect();
        assert_eq!(s.intersect(&probe).to_vec(), vec![1000, 59_999]);
    }

    #[test]
    fn equality_across_layouts() {
        let elements: Vec<u32> = (0u32..5000).collect();
        let a = RoaringSet::from_sorted(&elements);
        let mut b = RoaringSet::from_sorted(&elements);
        b.optimize();
        assert_eq!(a, b);
    }
}
