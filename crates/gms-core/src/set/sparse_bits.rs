//! `SparseBitSet`: a sparse bitvector (§5.2 cites sparse bitvectors as
//! a further set layout [1, 107]). Only non-zero 64-bit words are
//! stored, as a sorted array of `(word_index, bits)` pairs; binary
//! operations merge the page lists word-parallel. Sits between the
//! dense bitvector (fast, O(universe) space) and the sorted array
//! (compact, element-wise ops): word-parallel ops at O(set bits)
//! space for clustered IDs.

use super::{Set, SetElement};

/// A sparse bitvector over `u32` IDs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseBitSet {
    /// Sorted by page index; every stored word is non-zero.
    pages: Vec<(u32, u64)>,
    len: usize,
}

#[inline]
fn locate(element: SetElement) -> (u32, u64) {
    (element >> 6, 1u64 << (element & 63))
}

impl SparseBitSet {
    fn page_index(&self, page: u32) -> Result<usize, usize> {
        self.pages.binary_search_by_key(&page, |&(p, _)| p)
    }

    fn recount(&mut self) {
        self.len = self
            .pages
            .iter()
            .map(|&(_, w)| w.count_ones() as usize)
            .sum();
    }

    /// Merges two page lists with a per-page word operation; pages
    /// missing on one side contribute `0` on that side. Zero results
    /// are dropped.
    fn merge_pages(&self, other: &Self, op: impl Fn(u64, u64) -> u64) -> Self {
        let mut pages = Vec::with_capacity(self.pages.len().max(other.pages.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.pages.len() || j < other.pages.len() {
            let (page, a, b) = match (self.pages.get(i), other.pages.get(j)) {
                (Some(&(pa, wa)), Some(&(pb, wb))) => match pa.cmp(&pb) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (pa, wa, 0)
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (pb, 0, wb)
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        (pa, wa, wb)
                    }
                },
                (Some(&(pa, wa)), None) => {
                    i += 1;
                    (pa, wa, 0)
                }
                (None, Some(&(pb, wb))) => {
                    j += 1;
                    (pb, 0, wb)
                }
                (None, None) => unreachable!(),
            };
            let word = op(a, b);
            if word != 0 {
                pages.push((page, word));
            }
        }
        let mut out = Self { pages, len: 0 };
        out.recount();
        out
    }
}

impl Set for SparseBitSet {
    fn empty() -> Self {
        Self {
            pages: Vec::new(),
            len: 0,
        }
    }

    fn from_sorted(elements: &[SetElement]) -> Self {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        let mut pages: Vec<(u32, u64)> = Vec::new();
        for &e in elements {
            let (page, bit) = locate(e);
            match pages.last_mut() {
                Some((p, w)) if *p == page => *w |= bit,
                _ => pages.push((page, bit)),
            }
        }
        Self {
            pages,
            len: elements.len(),
        }
    }

    fn assign_sorted(&mut self, elements: &[SetElement]) {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        self.pages.clear();
        for &e in elements {
            let (page, bit) = locate(e);
            match self.pages.last_mut() {
                Some((p, w)) if *p == page => *w |= bit,
                _ => self.pages.push((page, bit)),
            }
        }
        self.len = elements.len();
    }

    #[inline]
    fn cardinality(&self) -> usize {
        self.len
    }

    fn contains(&self, element: SetElement) -> bool {
        let (page, bit) = locate(element);
        match self.page_index(page) {
            Ok(idx) => self.pages[idx].1 & bit != 0,
            Err(_) => false,
        }
    }

    fn add(&mut self, element: SetElement) {
        let (page, bit) = locate(element);
        match self.page_index(page) {
            Ok(idx) => {
                if self.pages[idx].1 & bit == 0 {
                    self.pages[idx].1 |= bit;
                    self.len += 1;
                }
            }
            Err(pos) => {
                self.pages.insert(pos, (page, bit));
                self.len += 1;
            }
        }
    }

    fn remove(&mut self, element: SetElement) {
        let (page, bit) = locate(element);
        if let Ok(idx) = self.page_index(page) {
            if self.pages[idx].1 & bit != 0 {
                self.pages[idx].1 &= !bit;
                self.len -= 1;
                if self.pages[idx].1 == 0 {
                    self.pages.remove(idx);
                }
            }
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        self.merge_pages(other, |a, b| a & b)
    }

    fn intersect_count(&self, other: &Self) -> usize {
        let (mut i, mut j, mut count) = (0, 0, 0usize);
        while i < self.pages.len() && j < other.pages.len() {
            match self.pages[i].0.cmp(&other.pages[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += (self.pages[i].1 & other.pages[j].1).count_ones() as usize;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    fn union(&self, other: &Self) -> Self {
        self.merge_pages(other, |a, b| a | b)
    }

    fn union_count(&self, other: &Self) -> usize {
        // Inclusion-exclusion over the page-merge intersection count:
        // cardinalities are stored, so no page list is materialized.
        self.len + other.len - self.intersect_count(other)
    }

    fn diff(&self, other: &Self) -> Self {
        self.merge_pages(other, |a, b| a & !b)
    }

    fn diff_count(&self, other: &Self) -> usize {
        self.len - self.intersect_count(other)
    }

    fn iter(&self) -> impl Iterator<Item = SetElement> + '_ {
        self.pages.iter().flat_map(|&(page, word)| PageIter {
            word,
            base: page << 6,
        })
    }

    fn heap_bytes(&self) -> usize {
        self.pages.capacity() * std::mem::size_of::<(u32, u64)>()
    }

    fn min(&self) -> Option<SetElement> {
        self.pages
            .first()
            .map(|&(page, word)| (page << 6) + word.trailing_zeros())
    }
}

struct PageIter {
    word: u64,
    base: u32,
}

impl Iterator for PageIter {
    type Item = SetElement;

    #[inline]
    fn next(&mut self) -> Option<SetElement> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl FromIterator<SetElement> for SparseBitSet {
    fn from_iter<I: IntoIterator<Item = SetElement>>(iter: I) -> Self {
        let mut elements: Vec<SetElement> = iter.into_iter().collect();
        elements.sort_unstable();
        elements.dedup();
        Self::from_sorted(&elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all::<SparseBitSet>();
    }

    #[test]
    fn clustered_ids_use_few_pages() {
        // 128 consecutive IDs at a large offset: exactly 2 pages.
        let s: SparseBitSet = (1_000_000..1_000_128).collect();
        assert_eq!(s.pages.len(), 2);
        assert_eq!(s.cardinality(), 128);
        // Far smaller than a dense bitvector over the same universe.
        assert!(s.heap_bytes() < 1_000_128 / 8);
    }

    #[test]
    fn scattered_ids_cost_one_page_each() {
        let s: SparseBitSet = (0..50u32).map(|i| i * 1000).collect();
        assert_eq!(s.pages.len(), 50);
        assert_eq!(s.to_vec(), (0..50u32).map(|i| i * 1000).collect::<Vec<_>>());
    }

    #[test]
    fn page_boundary_ops() {
        let a = SparseBitSet::from_sorted(&[63, 64, 127, 128]);
        let b = SparseBitSet::from_sorted(&[64, 128, 129]);
        assert_eq!(a.intersect(&b).to_vec(), vec![64, 128]);
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union(&b).cardinality(), 5);
        assert_eq!(a.diff(&b).to_vec(), vec![63, 127]);
    }

    #[test]
    fn remove_drops_empty_pages() {
        let mut s = SparseBitSet::from_sorted(&[5, 1000]);
        assert_eq!(s.pages.len(), 2);
        s.remove(1000);
        assert_eq!(s.pages.len(), 1);
        assert_eq!(s.to_vec(), vec![5]);
    }
}
