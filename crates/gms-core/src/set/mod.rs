//! The set-algebra interface (`Set`) — the paper's key modularity
//! mechanism (Listing 1, §5.1).
//!
//! Graph mining algorithms in GMS are written against this trait and
//! are oblivious to the physical set layout. Swapping a sorted integer
//! array for a roaring bitmap (or a dense bitvector, or a hash set)
//! changes no algorithm code, which is exactly the experimentation the
//! paper's platform enables (modularity level 5+).
//!
//! The method surface mirrors Listing 1 of the paper:
//! `diff` / `intersect` / `union` each in *new-set*, `_count` and
//! `_inplace` variants, single-element `add` / `remove` / `contains`,
//! `cardinality`, iteration, and conversion to an integer array.

mod dense;
mod hashset;
pub mod roaring;
mod sorted;
mod sparse_bits;
pub mod word_ops;

pub use dense::DenseBitSet;
pub use hashset::HashVertexSet;
pub use roaring::RoaringSet;
pub use sorted::{intersect_count_sorted_slices, SortedVecSet};
pub use sparse_bits::SparseBitSet;

use crate::types::NodeId;

/// An element of a [`Set`]. Vertex IDs by default (the paper notes
/// tuples for edges can also be used; edge sets in GMS-rs are built
/// from `NodeId` pairs packed by the caller).
pub type SetElement = NodeId;

/// The set-algebra interface of GMS (paper Listing 1).
///
/// Implementations must behave like a mathematical set of `u32`
/// elements: no duplicates, order-insensitive equality.
///
/// # Contract
/// * `iter` yields each element exactly once, in **ascending order**
///   (all provided implementations are ordered; algorithms such as the
///   merge intersection rely on this).
/// * `FromIterator`/`from_sorted` build a set from any element source.
/// * Binary operations never require `self` and `other` to share
///   capacity or universe bounds.
/// * The `_count` variants (`intersect_count` / `union_count` /
///   `diff_count`) must not allocate: every provided layout overrides
///   the materializing defaults with count-only paths (pinned by
///   `tests/count_paths_allocation_free.rs`), because the mining
///   kernels' hottest loops — BK pivot selection, triangle counting —
///   are pure counts.
///
/// The `'static` bound lets schedulers stash per-worker scratch sets
/// in type-erased thread-local storage; all set layouts own their
/// storage, so this costs nothing.
pub trait Set: Clone + PartialEq + std::fmt::Debug + Send + Sync + Sized + 'static {
    /// Creates an empty set.
    fn empty() -> Self;

    /// Creates an empty set tuned to hold elements `< universe_hint`.
    /// Implementations may ignore the hint.
    fn with_universe(universe_hint: usize) -> Self {
        let _ = universe_hint;
        Self::empty()
    }

    /// Builds a set from a strictly increasing slice of elements.
    fn from_sorted(elements: &[SetElement]) -> Self;

    /// Overwrites `self` with the given strictly increasing elements.
    /// Semantically `*self = Self::from_sorted(elements)`; layouts
    /// override it to reuse `self`'s internal buffers, which lets the
    /// mining kernels refill a recycled scratch set from a CSR
    /// neighborhood slice without allocating.
    fn assign_sorted(&mut self, elements: &[SetElement]) {
        *self = Self::from_sorted(elements);
    }

    /// Builds a set from arbitrary (unsorted, possibly duplicated) elements.
    fn from_unsorted(elements: &[SetElement]) -> Self {
        let mut sorted = elements.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_sorted(&sorted)
    }

    /// Creates the set `{0, 1, ..., bound - 1}` (paper: `Set::Range`).
    fn range(bound: SetElement) -> Self {
        let elements: Vec<SetElement> = (0..bound).collect();
        Self::from_sorted(&elements)
    }

    /// Creates a single-element set.
    fn singleton(element: SetElement) -> Self {
        Self::from_sorted(&[element])
    }

    /// Number of elements (paper: `cardinality`).
    fn cardinality(&self) -> usize;

    /// `true` iff the set has no elements.
    #[inline]
    fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    /// Membership test: `element ∈ self`.
    fn contains(&self, element: SetElement) -> bool;

    /// Inserts one element (`A = A ∪ {b}`).
    fn add(&mut self, element: SetElement);

    /// Removes one element (`A = A \ {b}`); no-op if absent.
    fn remove(&mut self, element: SetElement);

    /// Returns `A ∩ B` as a new set.
    fn intersect(&self, other: &Self) -> Self;

    /// Returns `|A ∩ B|` without materializing the intersection.
    fn intersect_count(&self, other: &Self) -> usize {
        self.intersect(other).cardinality()
    }

    /// Returns `|A ∩ B|` where `B` is a strictly increasing element
    /// slice (e.g. a CSR neighborhood), without materializing or
    /// converting anything. The default probes membership per
    /// element — already allocation-free for every layout; sorted
    /// arrays override it with a slice-to-slice merge.
    fn intersect_count_sorted(&self, sorted: &[SetElement]) -> usize {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        sorted.iter().filter(|&&x| self.contains(x)).count()
    }

    /// Updates `A = A ∩ B`.
    fn intersect_inplace(&mut self, other: &Self) {
        *self = self.intersect(other);
    }

    /// Returns `A ∪ B` as a new set.
    fn union(&self, other: &Self) -> Self;

    /// Returns `|A ∪ B|` without materializing the union.
    fn union_count(&self, other: &Self) -> usize {
        self.union(other).cardinality()
    }

    /// Updates `A = A ∪ B`.
    fn union_inplace(&mut self, other: &Self) {
        *self = self.union(other);
    }

    /// Returns `A \ B` as a new set.
    fn diff(&self, other: &Self) -> Self;

    /// Returns `|A \ B|` without materializing the difference.
    fn diff_count(&self, other: &Self) -> usize {
        self.diff(other).cardinality()
    }

    /// Updates `A = A \ B`.
    fn diff_inplace(&mut self, other: &Self) {
        *self = self.diff(other);
    }

    /// Iterates the elements in ascending order.
    fn iter(&self) -> impl Iterator<Item = SetElement> + '_;

    /// Converts the set to a sorted integer array (paper: `toArray`).
    fn to_vec(&self) -> Vec<SetElement> {
        self.iter().collect()
    }

    /// Heap bytes used by the set representation (for the memory
    /// consumption analyses of §8.9).
    fn heap_bytes(&self) -> usize;

    /// Smallest element, if any.
    fn min(&self) -> Option<SetElement> {
        self.iter().next()
    }

    /// `true` iff `self ⊆ other`.
    fn is_subset_of(&self, other: &Self) -> bool {
        self.intersect_count(other) == self.cardinality()
    }
}

/// Picks an element of `A ∪ B` minimizing `|P ∩ N(u)|`-style scores;
/// helper used by pivot selection. Kept here because it only needs the
/// `Set` interface.
pub fn argmin_over_union<S: Set>(
    a: &S,
    b: &S,
    mut score: impl FnMut(SetElement) -> usize,
) -> Option<SetElement> {
    let mut best: Option<(usize, SetElement)> = None;
    for u in a.iter().chain(b.iter()) {
        let s = score(u);
        match best {
            Some((bs, _)) if bs <= s => {}
            _ => best = Some((s, u)),
        }
    }
    best.map(|(_, u)| u)
}

#[cfg(test)]
pub(crate) mod conformance {
    //! A reusable conformance suite run against every `Set`
    //! implementation; the same operations are mirrored on a
    //! `BTreeSet` model and the results compared.

    use super::*;
    use std::collections::BTreeSet;

    fn model_of<S: Set>(s: &S) -> BTreeSet<SetElement> {
        s.iter().collect()
    }

    pub(crate) fn run_all<S: Set>() {
        empty_and_singleton::<S>();
        add_remove_contains::<S>();
        binary_ops_match_model::<S>();
        count_variants_match::<S>();
        inplace_variants_match::<S>();
        assign_sorted_matches_from_sorted::<S>();
        range_and_iteration_sorted::<S>();
        equality_is_structural::<S>();
    }

    fn empty_and_singleton<S: Set>() {
        let e = S::empty();
        assert_eq!(e.cardinality(), 0);
        assert!(e.is_empty());
        assert!(!e.contains(0));
        let s = S::singleton(42);
        assert_eq!(s.cardinality(), 1);
        assert!(s.contains(42));
        assert!(!s.contains(41));
        assert_eq!(s.to_vec(), vec![42]);
    }

    fn add_remove_contains<S: Set>() {
        let mut s = S::empty();
        for x in [5u32, 1, 9, 5, 70_000, 3] {
            s.add(x);
        }
        assert_eq!(s.to_vec(), vec![1, 3, 5, 9, 70_000]);
        s.remove(5);
        s.remove(100); // absent: no-op
        assert_eq!(s.to_vec(), vec![1, 3, 9, 70_000]);
        assert!(s.contains(70_000));
        assert!(!s.contains(5));
    }

    fn sample_pairs() -> Vec<(Vec<u32>, Vec<u32>)> {
        vec![
            (vec![], vec![]),
            (vec![1, 2, 3], vec![]),
            (vec![], vec![4, 5]),
            (vec![1, 2, 3, 4], vec![3, 4, 5, 6]),
            (vec![0, 2, 4, 6, 8], vec![1, 3, 5, 7, 9]),
            (vec![10, 20, 30], vec![10, 20, 30]),
            ((0..200).collect(), (100..300).collect()),
            (vec![1, 65_536, 131_072], vec![65_536, 200_000]),
            (
                (0..5000).map(|x| x * 3).collect(),
                (0..5000).map(|x| x * 2).collect(),
            ),
        ]
    }

    fn binary_ops_match_model<S: Set>() {
        for (a, b) in sample_pairs() {
            let sa = S::from_sorted(&a);
            let sb = S::from_sorted(&b);
            let ma: BTreeSet<u32> = a.iter().copied().collect();
            let mb: BTreeSet<u32> = b.iter().copied().collect();

            assert_eq!(
                model_of(&sa.intersect(&sb)),
                ma.intersection(&mb).copied().collect::<BTreeSet<_>>(),
                "intersect {a:?} {b:?}"
            );
            assert_eq!(
                model_of(&sa.union(&sb)),
                ma.union(&mb).copied().collect::<BTreeSet<_>>(),
                "union {a:?} {b:?}"
            );
            assert_eq!(
                model_of(&sa.diff(&sb)),
                ma.difference(&mb).copied().collect::<BTreeSet<_>>(),
                "diff {a:?} {b:?}"
            );
        }
    }

    fn count_variants_match<S: Set>() {
        for (a, b) in sample_pairs() {
            let sa = S::from_sorted(&a);
            let sb = S::from_sorted(&b);
            assert_eq!(sa.intersect_count(&sb), sa.intersect(&sb).cardinality());
            assert_eq!(sa.union_count(&sb), sa.union(&sb).cardinality());
            assert_eq!(sa.diff_count(&sb), sa.diff(&sb).cardinality());
        }
    }

    fn inplace_variants_match<S: Set>() {
        for (a, b) in sample_pairs() {
            let sa = S::from_sorted(&a);
            let sb = S::from_sorted(&b);

            let mut t = sa.clone();
            t.intersect_inplace(&sb);
            assert_eq!(t, sa.intersect(&sb));

            let mut t = sa.clone();
            t.union_inplace(&sb);
            assert_eq!(t, sa.union(&sb));

            let mut t = sa.clone();
            t.diff_inplace(&sb);
            assert_eq!(t, sa.diff(&sb));
        }
    }

    fn assign_sorted_matches_from_sorted<S: Set>() {
        // Reassigning a dirty set must behave exactly like building a
        // fresh one — including shrinking from larger prior contents.
        let mut recycled = S::from_sorted(&(0..1000).collect::<Vec<_>>());
        for (a, _) in sample_pairs() {
            recycled.assign_sorted(&a);
            assert_eq!(recycled, S::from_sorted(&a), "assign_sorted {a:?}");
            assert_eq!(recycled.cardinality(), a.len());
        }
    }

    fn range_and_iteration_sorted<S: Set>() {
        let r = S::range(100);
        assert_eq!(r.cardinality(), 100);
        let v = r.to_vec();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.min(), Some(0));
        assert_eq!(S::empty().min(), None);
    }

    fn equality_is_structural<S: Set>() {
        let a = S::from_unsorted(&[3, 1, 2, 3, 1]);
        let b = S::from_sorted(&[1, 2, 3]);
        assert_eq!(a, b);
        let c = S::from_sorted(&[1, 2, 4]);
        assert_ne!(a, c);
        assert!(b.is_subset_of(&S::range(10)));
        assert!(!S::range(10).is_subset_of(&b));
    }

    #[test]
    fn argmin_picks_minimum() {
        let a = SortedVecSet::from_sorted(&[1, 3]);
        let b = SortedVecSet::from_sorted(&[2]);
        let got = argmin_over_union(&a, &b, |x| (10 - x) as usize);
        assert_eq!(got, Some(3));
        let none = argmin_over_union(&SortedVecSet::empty(), &SortedVecSet::empty(), |_| 0);
        assert_eq!(none, None);
    }
}
