//! `SortedVecSet`: a set stored as a sorted, deduplicated `Vec<u32>`.
//!
//! This mirrors the paper's `SortedSet` and the CSR convention that a
//! vertex neighborhood is a sorted contiguous integer array. Binary
//! operations use the *merge* scheme when the operands have similar
//! sizes and switch to *galloping* (exponential + binary search) when
//! one side is much smaller — the two intersection algorithms the
//! paper describes in §5.2 and §6.5.

use super::{Set, SetElement};
use serde::{Deserialize, Serialize};

/// Size ratio beyond which intersection switches from merging to
/// galloping. With |A| ≪ |B|, galloping costs O(|A| log |B|) versus
/// O(|A| + |B|) for the merge.
const GALLOP_RATIO: usize = 16;

/// Elements skipped at a time by the block-skipping merge: when the
/// current block of one side ends below the other side's cursor, the
/// whole block is discarded with a single comparison. Disjoint-ish
/// regions of the operands cost |len| / BLOCK comparisons instead of
/// |len|.
const MERGE_BLOCK: usize = 8;

/// `|a ∩ b|` for two strictly increasing slices, without
/// materializing anything: galloping when one side is much smaller
/// (size ratio ≥ `GALLOP_RATIO`), block-skipping merge otherwise.
/// This is
/// the slice-level kernel behind [`SortedVecSet::intersect_count`]
/// and the CSR-neighborhood counting in the triangle and k-clique
/// kernels.
pub fn intersect_count_sorted_slices(a: &[SetElement], b: &[SetElement]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if big.len() / small.len() >= GALLOP_RATIO {
        gallop_count(small, big)
    } else {
        merge_count(a, b)
    }
}

fn gallop_count(small: &[SetElement], big: &[SetElement]) -> usize {
    let mut count = 0;
    let mut from = 0;
    for &x in small {
        let pos = SortedVecSet::gallop(big, from, x);
        if pos < big.len() && big[pos] == x {
            count += 1;
            from = pos + 1;
        } else {
            from = pos;
        }
        if from >= big.len() {
            break;
        }
    }
    count
}

fn merge_count(a: &[SetElement], b: &[SetElement]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        // Block skip: discard MERGE_BLOCK elements per comparison
        // while one side's whole next block sits below the other's
        // cursor (cheap for locally disjoint regions, free for
        // overlapping ones).
        while i + MERGE_BLOCK <= a.len() && a[i + MERGE_BLOCK - 1] < b[j] {
            i += MERGE_BLOCK;
        }
        if i >= a.len() {
            break;
        }
        while j + MERGE_BLOCK <= b.len() && b[j + MERGE_BLOCK - 1] < a[i] {
            j += MERGE_BLOCK;
        }
        if j >= b.len() {
            break;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// A set of vertex IDs backed by a sorted vector.
#[derive(Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortedVecSet {
    elements: Vec<SetElement>,
}

impl Clone for SortedVecSet {
    fn clone(&self) -> Self {
        Self {
            elements: self.elements.clone(),
        }
    }

    /// Overwrites in place, reusing the existing element buffer (see
    /// `DenseBitSet::clone_from`; same scratch-recycling contract).
    fn clone_from(&mut self, source: &Self) {
        self.elements.clone_from(&source.elements);
    }
}

impl SortedVecSet {
    /// Borrows the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[SetElement] {
        &self.elements
    }

    /// Wraps an already-sorted, deduplicated vector without copying.
    ///
    /// # Panics
    /// In debug builds, panics if `elements` is not strictly increasing.
    pub fn from_sorted_vec(elements: Vec<SetElement>) -> Self {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        Self { elements }
    }

    /// Galloping (exponential + binary) search for `x` in `haystack[lo..]`,
    /// returning the insertion point relative to the whole slice.
    #[inline]
    fn gallop(haystack: &[SetElement], lo: usize, x: SetElement) -> usize {
        let mut step = 1;
        let mut prev = lo;
        let mut hi = lo;
        while hi < haystack.len() && haystack[hi] < x {
            prev = hi + 1;
            hi += step;
            step <<= 1;
        }
        // The insertion point now lies in [prev, min(hi, len)].
        let upper = hi.min(haystack.len());
        prev + haystack[prev..upper].partition_point(|&y| y < x)
    }

    fn intersect_merge(a: &[SetElement], b: &[SetElement], out: &mut Vec<SetElement>) {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    fn intersect_gallop(small: &[SetElement], big: &[SetElement], out: &mut Vec<SetElement>) {
        let mut from = 0;
        for &x in small {
            let pos = Self::gallop(big, from, x);
            if pos < big.len() && big[pos] == x {
                out.push(x);
                from = pos + 1;
            } else {
                from = pos;
            }
            if from >= big.len() {
                break;
            }
        }
    }

    fn intersect_into(a: &[SetElement], b: &[SetElement], out: &mut Vec<SetElement>) {
        let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if small.is_empty() {
            return;
        }
        if big.len() / small.len().max(1) >= GALLOP_RATIO {
            Self::intersect_gallop(small, big, out);
        } else {
            Self::intersect_merge(a, b, out);
        }
    }
}

impl Set for SortedVecSet {
    fn empty() -> Self {
        Self {
            elements: Vec::new(),
        }
    }

    fn with_universe(universe_hint: usize) -> Self {
        // Neighborhood-sized sets are usually far smaller than the
        // universe; reserve modestly.
        Self {
            elements: Vec::with_capacity(universe_hint.min(64)),
        }
    }

    fn from_sorted(elements: &[SetElement]) -> Self {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        Self {
            elements: elements.to_vec(),
        }
    }

    fn assign_sorted(&mut self, elements: &[SetElement]) {
        debug_assert!(elements.windows(2).all(|w| w[0] < w[1]));
        self.elements.clear();
        self.elements.extend_from_slice(elements);
    }

    #[inline]
    fn cardinality(&self) -> usize {
        self.elements.len()
    }

    #[inline]
    fn contains(&self, element: SetElement) -> bool {
        self.elements.binary_search(&element).is_ok()
    }

    fn add(&mut self, element: SetElement) {
        // Fast path: appending in ascending order is O(1).
        match self.elements.last() {
            Some(&last) if last < element => self.elements.push(element),
            Some(&last) if last == element => {}
            _ => {
                if let Err(pos) = self.elements.binary_search(&element) {
                    self.elements.insert(pos, element);
                }
            }
        }
    }

    fn remove(&mut self, element: SetElement) {
        if let Ok(pos) = self.elements.binary_search(&element) {
            self.elements.remove(pos);
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.elements.len().min(other.elements.len()));
        Self::intersect_into(&self.elements, &other.elements, &mut out);
        Self { elements: out }
    }

    fn intersect_count(&self, other: &Self) -> usize {
        intersect_count_sorted_slices(&self.elements, &other.elements)
    }

    fn intersect_count_sorted(&self, sorted: &[SetElement]) -> usize {
        intersect_count_sorted_slices(&self.elements, sorted)
    }

    fn intersect_inplace(&mut self, other: &Self) {
        // Merge in place: compact survivors toward the front.
        let b = &other.elements;
        let mut write = 0;
        let mut j = 0;
        for read in 0..self.elements.len() {
            let x = self.elements[read];
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j < b.len() && b[j] == x {
                self.elements[write] = x;
                write += 1;
            }
        }
        self.elements.truncate(write);
    }

    fn union(&self, other: &Self) -> Self {
        let a = &self.elements;
        let b = &other.elements;
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Self { elements: out }
    }

    fn union_count(&self, other: &Self) -> usize {
        self.elements.len() + other.elements.len() - self.intersect_count(other)
    }

    fn diff(&self, other: &Self) -> Self {
        let a = &self.elements;
        let b = &other.elements;
        let mut out = Vec::with_capacity(a.len());
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                out.push(x);
            }
        }
        Self { elements: out }
    }

    fn diff_count(&self, other: &Self) -> usize {
        self.elements.len() - self.intersect_count(other)
    }

    fn diff_inplace(&mut self, other: &Self) {
        let b = &other.elements;
        let mut write = 0;
        let mut j = 0;
        for read in 0..self.elements.len() {
            let x = self.elements[read];
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                self.elements[write] = x;
                write += 1;
            }
        }
        self.elements.truncate(write);
    }

    fn iter(&self) -> impl Iterator<Item = SetElement> + '_ {
        self.elements.iter().copied()
    }

    fn to_vec(&self) -> Vec<SetElement> {
        self.elements.clone()
    }

    fn heap_bytes(&self) -> usize {
        self.elements.capacity() * std::mem::size_of::<SetElement>()
    }

    fn min(&self) -> Option<SetElement> {
        self.elements.first().copied()
    }
}

impl FromIterator<SetElement> for SortedVecSet {
    fn from_iter<I: IntoIterator<Item = SetElement>>(iter: I) -> Self {
        let mut elements: Vec<SetElement> = iter.into_iter().collect();
        elements.sort_unstable();
        elements.dedup();
        Self { elements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::conformance;

    #[test]
    fn conformance_suite() {
        conformance::run_all::<SortedVecSet>();
    }

    #[test]
    fn galloping_kicks_in_for_skewed_sizes() {
        let small = SortedVecSet::from_sorted(&[5, 500, 50_000]);
        let big: SortedVecSet = (0..100_000).collect();
        assert_eq!(small.intersect(&big).to_vec(), vec![5, 500, 50_000]);
        assert_eq!(small.intersect_count(&big), 3);
        // And symmetric.
        assert_eq!(big.intersect_count(&small), 3);
    }

    #[test]
    fn inplace_diff_compacts() {
        let mut a: SortedVecSet = (0..100).collect();
        let evens: SortedVecSet = (0..100).filter(|x| x % 2 == 0).collect();
        a.diff_inplace(&evens);
        assert_eq!(a.cardinality(), 50);
        assert!(a.iter().all(|x| x % 2 == 1));
    }

    #[test]
    fn add_is_ascending_fast_path_safe() {
        let mut s = SortedVecSet::empty();
        s.add(10);
        s.add(20);
        s.add(20);
        s.add(15);
        s.add(1);
        assert_eq!(s.to_vec(), vec![1, 10, 15, 20]);
    }

    #[test]
    fn union_count_via_inclusion_exclusion() {
        let a = SortedVecSet::from_sorted(&[1, 2, 3]);
        let b = SortedVecSet::from_sorted(&[3, 4]);
        assert_eq!(a.union_count(&b), 4);
    }

    #[test]
    fn slice_count_matches_naive_across_shapes() {
        fn naive(a: &[SetElement], b: &[SetElement]) -> usize {
            a.iter().filter(|x| b.contains(x)).count()
        }
        let shapes: Vec<(Vec<SetElement>, Vec<SetElement>)> = vec![
            (vec![], vec![]),
            (vec![], (0..100).collect()),
            ((0..100).collect(), (100..200).collect()), // disjoint
            // One side exactly MERGE_BLOCK long and entirely below the
            // other: the block skip must not run the cursor past `len`.
            ((0..8).collect(), vec![100]),
            ((0..100).collect(), (0..100).collect()), // identical
            // Interleaved runs longer than MERGE_BLOCK so block
            // skipping actually fires on both sides.
            (
                (0..200).collect(),
                (0..400).filter(|x| x % 97 < 3).collect(),
            ),
            (
                (0..1000).step_by(3).collect(),
                (0..1000).step_by(7).collect(),
            ),
            // Skewed sizes to drive the galloping path.
            (vec![5, 500, 50_000], (0..100_000).collect()),
        ];
        for (a, b) in shapes {
            let expected = naive(&a, &b);
            assert_eq!(intersect_count_sorted_slices(&a, &b), expected);
            assert_eq!(intersect_count_sorted_slices(&b, &a), expected);
            let sa = SortedVecSet::from_sorted(&a);
            assert_eq!(sa.intersect_count_sorted(&b), expected);
        }
    }
}
