//! u64-block kernels for word-parallel set algebra.
//!
//! Every bit-vector layout (`DenseBitSet`, and `SparseBitSet` /
//! `RoaringSet` at the container level) bottoms out in loops over
//! `u64` words. The kernels here process words in chunks of four with
//! independent accumulators — the shape LLVM's autovectorizer turns
//! into SIMD (`vpand` + `vpopcntq` on AVX-512, unrolled `popcnt` on
//! older x86) without any target-feature gates, keeping the crate
//! portable. The `_count` variants never materialize their result:
//! they reduce with `count_ones` straight out of the combined words,
//! which is what makes the mining kernels' count-only paths
//! allocation-free.

/// Four-word block size: wide enough for 256-bit vector units, small
/// enough that remainder handling stays trivial.
const LANES: usize = 4;

macro_rules! blockwise_count {
    ($a:expr, $b:expr, $op:expr) => {{
        let n = $a.len().min($b.len());
        let (a, b) = (&$a[..n], &$b[..n]);
        let mut acc = [0usize; LANES];
        let mut chunks_a = a.chunks_exact(LANES);
        let mut chunks_b = b.chunks_exact(LANES);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            for lane in 0..LANES {
                acc[lane] += $op(ca[lane], cb[lane]).count_ones() as usize;
            }
        }
        let mut total: usize = acc.iter().sum();
        for (&wa, &wb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += $op(wa, wb).count_ones() as usize;
        }
        total
    }};
}

/// `|A ∩ B|` over word slices (missing tail words count as zero).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    blockwise_count!(a, b, |x: u64, y: u64| x & y)
}

/// `|A \ B|` over word slices: bits of `a` not set in `b`, including
/// `a`'s tail beyond `b`'s length.
#[inline]
pub fn andnot_count(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    blockwise_count!(a[..n], b[..n], |x: u64, y: u64| x & !y) + popcount(&a[n..])
}

/// `|A ∪ B|` over word slices, including both tails.
#[inline]
pub fn or_count(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    blockwise_count!(a[..n], b[..n], |x: u64, y: u64| x | y) + popcount(&a[n..]) + popcount(&b[n..])
}

/// Total set bits in a word slice (blockwise `count_ones` reduction).
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    let mut acc = [0usize; LANES];
    let mut chunks = words.chunks_exact(LANES);
    for chunk in &mut chunks {
        for lane in 0..LANES {
            acc[lane] += chunk[lane].count_ones() as usize;
        }
    }
    acc.iter().sum::<usize>()
        + chunks
            .remainder()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
}

/// Writes `a & b` into `out` (cleared first; buffer reuse keeps this
/// allocation-free once capacity has grown). Returns the popcount of
/// the result so callers get the cardinality for free.
pub fn and_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> usize {
    let n = a.len().min(b.len());
    out.clear();
    out.reserve(n);
    let mut ones = 0usize;
    for (&wa, &wb) in a[..n].iter().zip(&b[..n]) {
        let w = wa & wb;
        ones += w.count_ones() as usize;
        out.push(w);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    ones
}

/// Writes `a & !b` into `out` (cleared first), `a`'s tail included.
/// Returns the popcount of the result.
pub fn andnot_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> usize {
    let n = a.len().min(b.len());
    out.clear();
    out.reserve(a.len());
    let mut ones = 0usize;
    for (&wa, &wb) in a[..n].iter().zip(&b[..n]) {
        let w = wa & !wb;
        ones += w.count_ones() as usize;
        out.push(w);
    }
    for &wa in &a[n..] {
        ones += wa.count_ones() as usize;
        out.push(wa);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    ones
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_count(a: &[u64], b: &[u64], op: fn(u64, u64) -> u64, tails: bool) -> usize {
        let n = a.len().min(b.len());
        let mut total: usize = a[..n]
            .iter()
            .zip(&b[..n])
            .map(|(&x, &y)| op(x, y).count_ones() as usize)
            .sum();
        if tails {
            total += a[n..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        }
        total
    }

    fn samples() -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut out = Vec::new();
        // Deterministic xorshift patterns across lengths that cover
        // every chunk remainder (0..=LANES) and unequal slice lengths.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len_a in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 31] {
            for delta in [0usize, 1, 5] {
                let a: Vec<u64> = (0..len_a).map(|_| next()).collect();
                let b: Vec<u64> = (0..len_a + delta).map(|_| next()).collect();
                out.push((a, b));
            }
        }
        out.push((vec![u64::MAX; 6], vec![u64::MAX; 6]));
        out.push((vec![0; 5], vec![u64::MAX; 5]));
        out
    }

    #[test]
    fn counts_match_naive_word_loops() {
        for (a, b) in samples() {
            assert_eq!(and_count(&a, &b), naive_count(&a, &b, |x, y| x & y, false));
            assert_eq!(and_count(&b, &a), and_count(&a, &b), "and is symmetric");
            assert_eq!(
                andnot_count(&a, &b),
                naive_count(&a, &b, |x, y| x & !y, true)
            );
            assert_eq!(
                or_count(&a, &b),
                popcount(&a) + popcount(&b) - and_count(&a, &b),
                "inclusion-exclusion"
            );
            assert_eq!(popcount(&a), naive_count(&a, &a, |x, _| x, false));
        }
    }

    #[test]
    fn into_variants_match_counts_and_trim_zeros() {
        for (a, b) in samples() {
            let mut out = Vec::new();
            let ones = and_into(&a, &b, &mut out);
            assert_eq!(ones, and_count(&a, &b));
            assert_eq!(popcount(&out), ones);
            assert_ne!(out.last(), Some(&0), "trailing zero words trimmed");

            let ones = andnot_into(&a, &b, &mut out);
            assert_eq!(ones, andnot_count(&a, &b));
            assert_eq!(popcount(&out), ones);
            assert_ne!(out.last(), Some(&0));
        }
    }
}
