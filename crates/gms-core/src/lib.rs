//! # gms-core
//!
//! The set-algebra kernel of GraphMineSuite-rs (a Rust reproduction of
//! Besta et al., *GraphMineSuite*, VLDB 2021).
//!
//! This crate provides the two foundations everything else builds on:
//!
//! * the [`Set`] trait (paper Listing 1) with four
//!   interchangeable implementations — [`SortedVecSet`],
//!   [`RoaringSet`] (a from-scratch roaring bitmap),
//!   [`DenseBitSet`] and
//!   [`HashVertexSet`];
//! * graph representations — [`CsrGraph`] (the default
//!   CSR/adjacency-array layout) and the set-centric
//!   [`SetGraph`] (paper Listing 2), tied together by
//!   the [`Graph`] access interface.
//!
//! Graph mining algorithms written against these traits can swap set
//! layouts and graph representations freely — the paper's key
//! "modularity through set algebra" idea.

#![warn(missing_docs)]

pub mod cancel;
pub mod graph;
pub mod hash;
pub mod set;
pub mod types;

pub use cancel::CancelToken;
pub use graph::{CsrBuilder, CsrGraph, Graph, SetGraph, SetNeighborhoods};
pub use set::{
    DenseBitSet, HashVertexSet, RoaringSet, Set, SetElement, SortedVecSet, SparseBitSet,
};
pub use types::{normalize_edge, Edge, EdgeId, NodeId};
