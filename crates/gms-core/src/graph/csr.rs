//! Compressed Sparse Row (CSR, "adjacency array") — the default GMS
//! representation (§2.3): a contiguous array of neighbor IDs plus an
//! offset array, with every neighborhood sorted by vertex ID.

use super::Graph;
use crate::types::{Edge, NodeId};
use serde::{Deserialize, Serialize};

/// An immutable CSR graph. May hold a symmetric (undirected) graph or
/// an oriented one — construction decides; the accessors are identical.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds an undirected graph from an edge list. Self-loops are
    /// dropped and duplicate edges deduplicated; each kept edge is
    /// stored in both directions.
    pub fn from_undirected_edges(n: usize, edges: &[Edge]) -> Self {
        let mut builder = CsrBuilder::new(n);
        for &(u, v) in edges {
            if u != v {
                builder.push_arc(u, v);
                builder.push_arc(v, u);
            }
        }
        builder.finish_dedup()
    }

    /// Builds a directed graph from arcs (kept as given, deduplicated,
    /// self-loops dropped).
    pub fn from_arcs(n: usize, arcs: &[Edge]) -> Self {
        let mut builder = CsrBuilder::new(n);
        for &(u, v) in arcs {
            if u != v {
                builder.push_arc(u, v);
            }
        }
        builder.finish_dedup()
    }

    /// Assembles a CSR directly from parts.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone or do not span `neighbors`.
    pub fn from_parts(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(*offsets.first().unwrap(), 0);
        assert_eq!(*offsets.last().unwrap(), neighbors.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets, neighbors }
    }

    /// The sorted neighborhood slice of `v`.
    #[inline]
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// The raw offset array (n + 1 entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array.
    pub fn adjacency(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Returns each arc `(u, v)` exactly once as stored.
    pub fn arcs(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as NodeId)
            .flat_map(move |u| self.neighbors_slice(u).iter().map(move |&v| (u, v)))
    }

    /// Returns each undirected edge once (`u < v`), assuming symmetric
    /// storage.
    pub fn edges_undirected(&self) -> impl Iterator<Item = Edge> + '_ {
        self.arcs().filter(|&(u, v)| u < v)
    }

    /// Heap bytes of the representation (offsets + adjacency), for the
    /// storage analyses of §8.9.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<NodeId>()
    }
}

impl Graph for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors_slice(v).iter().copied()
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_slice(u).binary_search(&v).is_ok()
    }
}

/// Incremental CSR builder: collect arcs, then sort into place.
pub struct CsrBuilder {
    n: usize,
    arcs: Vec<Edge>,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            arcs: Vec::new(),
        }
    }

    /// Records the arc `u -> v`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn push_arc(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "arc out of range"
        );
        self.arcs.push((u, v));
    }

    /// Builds the CSR, deduplicating arcs.
    pub fn finish_dedup(mut self) -> CsrGraph {
        self.arcs.sort_unstable();
        self.arcs.dedup();
        self.finish_sorted()
    }

    fn finish_sorted(self) -> CsrGraph {
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _) in &self.arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors = self.arcs.into_iter().map(|(_, v)| v).collect();
        CsrGraph { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle; 2-3 tail.
        CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.num_edges_undirected(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors_slice(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn dedup_and_self_loop_policy() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges_undirected(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn arcs_and_undirected_edges() {
        let g = triangle_plus_tail();
        assert_eq!(g.arcs().count(), 8);
        let edges: Vec<_> = g.edges_undirected().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn directed_construction_keeps_orientation() {
        let g = CsrGraph::from_arcs(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.num_arcs(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn from_parts_validates() {
        let g = CsrGraph::from_parts(vec![0, 2, 2], vec![0, 1]);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "arc out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = CsrBuilder::new(2);
        b.push_arc(0, 5);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
