//! `SetGraph<S>`: the set-centric graph representation (§5.3,
//! Listing 2). One [`Set`] implements one neighborhood; the set type
//! is a generic parameter, so swapping `SortedVecSet` for `RoaringSet`
//! swaps the layout of every neighborhood without touching algorithms.

use super::{CsrGraph, Graph, SetNeighborhoods};
use crate::set::Set;
use crate::types::NodeId;
use rayon::prelude::*;

/// A graph whose neighborhoods are stored as sets of type `S`.
#[derive(Clone, Debug)]
pub struct SetGraph<S: Set> {
    neighborhoods: Vec<S>,
    arcs: usize,
}

impl<S: Set> SetGraph<S> {
    /// Converts a CSR graph, building every neighborhood set in
    /// parallel.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let neighborhoods: Vec<S> = (0..csr.num_vertices() as NodeId)
            .into_par_iter()
            .map(|v| S::from_sorted(csr.neighbors_slice(v)))
            .collect();
        Self {
            neighborhoods,
            arcs: csr.num_arcs(),
        }
    }

    /// Builds directly from per-vertex sorted adjacency lists.
    pub fn from_adjacency(adjacency: Vec<Vec<NodeId>>) -> Self {
        let arcs = adjacency.iter().map(Vec::len).sum();
        let neighborhoods = adjacency
            .into_iter()
            .map(|neigh| S::from_sorted(&neigh))
            .collect();
        Self {
            neighborhoods,
            arcs,
        }
    }

    /// Total heap bytes across all neighborhood sets (§8.9).
    pub fn heap_bytes(&self) -> usize {
        self.neighborhoods.iter().map(S::heap_bytes).sum()
    }

    /// Immutable view of all neighborhoods.
    pub fn neighborhoods(&self) -> &[S] {
        &self.neighborhoods
    }
}

impl<S: Set> Graph for SetGraph<S> {
    fn num_vertices(&self) -> usize {
        self.neighborhoods.len()
    }

    fn num_arcs(&self) -> usize {
        self.arcs
    }

    fn degree(&self, v: NodeId) -> usize {
        self.neighborhoods[v as usize].cardinality()
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighborhoods[v as usize].iter()
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighborhoods[u as usize].contains(v)
    }
}

impl<S: Set> SetNeighborhoods for SetGraph<S> {
    type NSet = S;

    #[inline]
    fn neighborhood(&self, v: NodeId) -> &S {
        &self.neighborhoods[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{DenseBitSet, HashVertexSet, RoaringSet, SortedVecSet};

    fn csr() -> CsrGraph {
        CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    }

    fn check<S: Set>() {
        let csr = csr();
        let g: SetGraph<S> = SetGraph::from_csr(&csr);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), csr.num_arcs());
        for v in g.vertices() {
            assert_eq!(g.degree(v), csr.degree(v));
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                csr.neighbors_slice(v).to_vec()
            );
        }
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 4));
        // Set algebra on neighborhoods: common neighbors of 0 and 1.
        let common = g.neighborhood(0).intersect(g.neighborhood(1));
        assert_eq!(common.to_vec(), vec![2]);
    }

    #[test]
    fn all_set_backends_agree() {
        check::<SortedVecSet>();
        check::<RoaringSet>();
        check::<DenseBitSet>();
        check::<HashVertexSet>();
    }

    #[test]
    fn from_adjacency() {
        let g: SetGraph<SortedVecSet> =
            SetGraph::from_adjacency(vec![vec![1], vec![0, 2], vec![1]]);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.degree(1), 2);
    }
}
