//! Graph representations and the access interface between a
//! representation and the rest of GMS (§5, modularity levels ①–②).
//!
//! The paper prescribes a concise interface: check the degree `Δ(v)`,
//! load the neighbors `N(v)`, iterate over vertices/edges, and verify
//! whether an edge `(u, v)` exists. Any structure providing these can
//! back any GMS algorithm.

mod csr;
mod setgraph;

pub use csr::{CsrBuilder, CsrGraph};
pub use setgraph::SetGraph;

use crate::set::Set;
use crate::types::NodeId;

/// The graph-access interface of the GMS platform.
pub trait Graph: Send + Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of directed arcs stored. For an undirected graph stored
    /// symmetrically this is `2m`; for an oriented graph it is `m`.
    fn num_arcs(&self) -> usize;

    /// Degree `Δ(v)` (out-degree for oriented graphs).
    fn degree(&self, v: NodeId) -> usize;

    /// Iterates over `N(v)` in ascending order.
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// Verifies whether the arc `(u, v)` exists.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Iterates over all vertex IDs.
    fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.num_vertices() as NodeId
    }

    /// Number of undirected edges `m`, assuming symmetric storage.
    fn num_edges_undirected(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Maximum degree `Δ`.
    fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

/// A graph whose neighborhoods are materialized as [`Set`]s — the
/// paper's "set-centric" representation (§5.3): one set implements one
/// neighborhood, and graph algorithms manipulate neighborhoods with
/// set algebra directly.
pub trait SetNeighborhoods: Graph {
    /// The set type implementing each neighborhood.
    type NSet: Set;

    /// Borrows `N(v)` as a set.
    fn neighborhood(&self, v: NodeId) -> &Self::NSet;
}
