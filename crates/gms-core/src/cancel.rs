//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is a cheap, clonable handle the serving layer
//! threads into kernel hot loops so an expired request stops burning
//! CPU mid-search instead of computing an answer nobody is waiting
//! for. Cancellation is *cooperative*: kernels poll the token at
//! recursion entries and task boundaries and unwind with a partial
//! (discarded) result when it fires.
//!
//! Two sources can fire a token: an explicit [`CancelToken::cancel`]
//! call, or a wall-clock deadline the token was created with. The
//! deadline check costs an `Instant::now()` call, so the hot-path
//! probe [`CancelToken::is_cancelled`] strides it — the flag is read
//! on every call, the clock only every [`POLL_STRIDE`]th call — and
//! latches expiry into the flag so later probes are a single relaxed
//! atomic load.
//!
//! [`CancelToken::none`] (also `Default`) is a no-op token that
//! shares no state and never fires; passing it costs one branch per
//! probe, so uncancellable call sites need no separate code path.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many [`CancelToken::is_cancelled`] probes share one clock
/// read. Kernels probe once per recursion entry, so expiry is
/// noticed within a few hundred set operations — microseconds on the
/// workloads that need cancelling at all.
pub const POLL_STRIDE: u32 = 64;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    polls: AtomicU32,
}

/// A shared cancellation flag with an optional deadline. Clones
/// observe the same state; see the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Option<Arc<Inner>>);

impl CancelToken {
    /// A token that never fires — the zero-cost default for call
    /// sites without a deadline.
    pub fn none() -> Self {
        Self(None)
    }

    /// A token that fires by [`CancelToken::cancel`] only.
    pub fn manual() -> Self {
        Self(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: None,
            polls: AtomicU32::new(0),
        })))
    }

    /// A token that fires once `deadline` passes (or on an explicit
    /// [`CancelToken::cancel`]).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
            polls: AtomicU32::new(0),
        })))
    }

    /// A token that fires `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// The deadline this token fires at, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.0.as_ref().and_then(|inner| inner.deadline)
    }

    /// Fires the token. No-op on [`CancelToken::none`]; irrevocable
    /// otherwise.
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// The hot-path probe: `true` once the token has fired. Reads
    /// the flag every call but the clock only every
    /// [`POLL_STRIDE`]th, so a deadline is observed slightly late in
    /// exchange for staying cheap inside recursion.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = inner.deadline {
            let polls = inner.polls.fetch_add(1, Ordering::Relaxed);
            if polls % POLL_STRIDE == 0 && Instant::now() >= deadline {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// The exact probe: `true` if the token has fired *or* its
    /// deadline has passed, checked against the clock right now.
    /// Used at decision points (before starting work, after a kernel
    /// returns) where one clock read is fine and staleness is not.
    pub fn expired(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let token = CancelToken::none();
        token.cancel();
        assert!(!token.is_cancelled());
        assert!(!token.expired());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let token = CancelToken::manual();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.expired());
    }

    #[test]
    fn deadline_fires_and_latches() {
        let token = CancelToken::after(Duration::from_millis(0));
        // `expired` checks the clock directly and latches the flag...
        assert!(token.expired());
        // ...so the strided probe sees it immediately afterwards.
        assert!(token.is_cancelled());
    }

    #[test]
    fn strided_probe_notices_a_passed_deadline() {
        let token = CancelToken::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        // Within one stride of probes the clock is consulted.
        assert!((0..=POLL_STRIDE).any(|_| token.is_cancelled()));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let token = CancelToken::after(Duration::from_secs(3600));
        assert!(!token.expired());
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_some());
    }
}
