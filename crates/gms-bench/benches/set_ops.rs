//! Criterion microbenches of the set-algebra kernel: intersections,
//! unions and differences across the four set layouts, in the size
//! regimes graph mining produces (balanced merges, skewed gallops,
//! dense bit-parallel sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gms_core::{DenseBitSet, HashVertexSet, RoaringSet, Set, SortedVecSet};
use std::hint::black_box;

fn dataset(n: u32, step: usize, offset: u32) -> Vec<u32> {
    (offset..n).step_by(step).collect()
}

fn bench_layouts<S: Set>(c: &mut Criterion, layout: &str) {
    let balanced_a = S::from_sorted(&dataset(40_000, 2, 0));
    let balanced_b = S::from_sorted(&dataset(40_000, 3, 0));
    let small = S::from_sorted(&dataset(40_000, 500, 7));
    let big = S::from_sorted(&dataset(40_000, 1, 0));

    let mut group = c.benchmark_group("set_ops");
    group.bench_function(BenchmarkId::new("intersect_balanced", layout), |b| {
        b.iter(|| black_box(balanced_a.intersect_count(black_box(&balanced_b))))
    });
    group.bench_function(BenchmarkId::new("intersect_skewed", layout), |b| {
        b.iter(|| black_box(small.intersect_count(black_box(&big))))
    });
    group.bench_function(BenchmarkId::new("union", layout), |b| {
        b.iter(|| black_box(balanced_a.union(black_box(&balanced_b)).cardinality()))
    });
    group.bench_function(BenchmarkId::new("diff", layout), |b| {
        b.iter(|| black_box(balanced_a.diff(black_box(&balanced_b)).cardinality()))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_layouts::<SortedVecSet>(c, "sorted");
    bench_layouts::<RoaringSet>(c, "roaring");
    bench_layouts::<DenseBitSet>(c, "dense");
    bench_layouts::<HashVertexSet>(c, "hash");
}

criterion_group! {
    name = set_ops;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(set_ops);
