//! Criterion bench of the Bron–Kerbosch variants (the Fig. 4 kernels)
//! on two contrasting gallery graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gms_pattern::BkVariant;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let graphs = [
        (
            "tskew-huge",
            gms_gen::planted_cliques(800, 0.004, 1, 14, 105).0,
        ),
        (
            "tskew-low",
            gms_gen::planted_cliques(800, 0.003, 30, 5, 106).0,
        ),
    ];
    let mut group = c.benchmark_group("bron_kerbosch");
    for (name, graph) in &graphs {
        for variant in BkVariant::ALL {
            group.bench_function(BenchmarkId::new(variant.label(), name), |b| {
                b.iter(|| black_box(variant.run(black_box(graph)).clique_count))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = bk;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(bk);
