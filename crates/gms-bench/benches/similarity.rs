//! Criterion bench of the vertex-similarity kernel (§6.5): the seven
//! measures over a batch of vertex pairs, on sorted-array
//! neighborhoods (merge/galloping intersections).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gms_core::{SetGraph, SortedVecSet};
use gms_learn::{similarity_batch, SimilarityMeasure};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let csr = gms_gen::kronecker_default(12, 10, 3);
    let graph: SetGraph<SortedVecSet> = SetGraph::from_csr(&csr);
    let pairs: Vec<(u32, u32)> = (0..2_000u32)
        .map(|i| (i * 2 % 4096, (i * 7 + 1) % 4096))
        .collect();
    let mut group = c.benchmark_group("similarity");
    for measure in SimilarityMeasure::ALL {
        group.bench_function(BenchmarkId::new(measure.label(), "kron12x2000"), |b| {
            b.iter(|| black_box(similarity_batch(&graph, measure, black_box(&pairs))))
        });
    }
    group.finish();
}

criterion_group! {
    name = sim;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(sim);
