//! Criterion bench of k-clique counting (the Fig. 5/9 kernels):
//! drivers × orderings × k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gms_order::OrderingKind;
use gms_pattern::{k_clique_count, KcConfig, KcParallel};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let graph = gms_gen::planted_cliques(1_000, 0.006, 8, 9, 42).0;
    let mut group = c.benchmark_group("kclique");
    for k in [4usize, 6] {
        for (label, config) in [
            (
                "edge+ADG",
                KcConfig {
                    ordering: OrderingKind::ApproxDegeneracy(0.25),
                    parallel: KcParallel::Edge,
                },
            ),
            (
                "edge+DGR",
                KcConfig {
                    ordering: OrderingKind::Degeneracy,
                    parallel: KcParallel::Edge,
                },
            ),
            (
                "node+DGR",
                KcConfig {
                    ordering: OrderingKind::Degeneracy,
                    parallel: KcParallel::Node,
                },
            ),
        ] {
            group.bench_function(BenchmarkId::new(label, format!("k{k}")), |b| {
                b.iter(|| black_box(k_clique_count(black_box(&graph), k, &config).count))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = kc;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(kc);
