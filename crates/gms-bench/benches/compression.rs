//! Criterion bench of the compression schemes (Appendix B): encode
//! and decode throughput of gap/varint, RLE, bit packing, compressed
//! CSR, and k²-tree construction — the access-cost side of the
//! storage trade-off (§6.8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gms_core::Graph;
use gms_graph::compress::{bitpack::BitPacked, gap, k2tree::K2Tree, rle};
use gms_graph::CompressedCsr;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let graph = gms_gen::kronecker_default(12, 8, 5);
    let neighborhood: Vec<u32> = (0..4096u32).map(|i| i * 7).collect();

    let mut group = c.benchmark_group("compression");
    group.bench_function(BenchmarkId::new("gap_encode", "4096"), |b| {
        b.iter(|| black_box(gap::encode(black_box(&neighborhood))))
    });
    let encoded = gap::encode(&neighborhood);
    group.bench_function(BenchmarkId::new("gap_decode", "4096"), |b| {
        b.iter(|| black_box(gap::decode(black_box(&encoded), neighborhood.len())))
    });
    group.bench_function(BenchmarkId::new("rle_encode", "4096"), |b| {
        b.iter(|| black_box(rle::encode(black_box(&neighborhood))))
    });
    group.bench_function(BenchmarkId::new("bitpack", "4096"), |b| {
        b.iter(|| {
            black_box(BitPacked::pack_for_universe(
                black_box(&neighborhood),
                40_000,
            ))
        })
    });
    group.bench_function(BenchmarkId::new("compressed_csr_build", "kron12"), |b| {
        b.iter(|| black_box(CompressedCsr::from_csr(black_box(&graph))))
    });
    let compressed = CompressedCsr::from_csr(&graph);
    group.bench_function(BenchmarkId::new("compressed_csr_scan", "kron12"), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for v in 0..graph.num_vertices() as u32 {
                total += compressed.neighbors(v).count() as u64;
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::new("csr_scan", "kron12"), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for v in 0..graph.num_vertices() as u32 {
                total += graph.neighbors_slice(v).len() as u64;
            }
            black_box(total)
        })
    });
    let small = gms_gen::gnp(512, 0.02, 3);
    group.bench_function(BenchmarkId::new("k2tree_build", "er512"), |b| {
        b.iter(|| black_box(K2Tree::from_graph(black_box(&small))))
    });
    group.finish();
}

criterion_group! {
    name = compression;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(compression);
