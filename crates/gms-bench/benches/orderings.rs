//! Criterion bench of the preprocessing orderings (the Fig. 6
//! reordering costs): DEG vs DGR vs ADG at several ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gms_order::{approx_degeneracy_order, degeneracy_order, degree_order};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let graph = gms_gen::kronecker_default(12, 8, 7);
    let mut group = c.benchmark_group("orderings");
    group.bench_function(BenchmarkId::new("DEG", "kron12"), |b| {
        b.iter(|| black_box(degree_order(black_box(&graph))))
    });
    group.bench_function(BenchmarkId::new("DGR", "kron12"), |b| {
        b.iter(|| black_box(degeneracy_order(black_box(&graph)).degeneracy))
    });
    for eps in [0.5, 0.1, 0.01] {
        group.bench_function(BenchmarkId::new(format!("ADG-{eps}"), "kron12"), |b| {
            b.iter(|| black_box(approx_degeneracy_order(black_box(&graph), eps).rounds))
        });
    }
    group.finish();
}

criterion_group! {
    name = orderings;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(orderings);
