//! The dataset gallery: synthetic stand-ins for the Table 7 graphs.
//!
//! The paper deliberately refrains from fixing datasets (§4.2) and
//! instead characterizes inputs by structural axes. Each gallery entry
//! reproduces one Table 7 archetype at laptop scale (see DESIGN.md for
//! the substitution rationale):
//!
//! | entry | archetype | axis |
//! |---|---|---|
//! | `social-kron` | Orkut/Pokec | power-law degree skew |
//! | `sparse-kron` | Youtube/Flixster | very low m/n *and* skew |
//! | `clique-rich` | Flickr-photos | huge 4-clique counts |
//! | `cluster-rich` | Livemocha | dense but non-clique clusters |
//! | `tskew-huge` | Gupta3/RecDate | enormous T-skew |
//! | `tskew-low` | ldoor/Gearbox | many triangles, low T-skew |
//! | `econ-dense` | mbeacxc/orani678 | small n, very high m/n |
//! | `road-grid` | USA roads | extreme diameter, T ≈ 0 |
//! | `er-uniform` | — | skew-free control |

use gms_core::CsrGraph;

/// A named dataset.
pub struct Dataset {
    /// Gallery label.
    pub name: &'static str,
    /// The graph.
    pub graph: CsrGraph,
}

/// Builds the full gallery at the given scale factor (1 = default
/// laptop scale; larger factors grow n roughly linearly).
pub fn gallery(scale: usize) -> Vec<Dataset> {
    let s = scale.max(1);
    vec![
        Dataset {
            name: "social-kron",
            graph: gms_gen::kronecker_default(10 + log2(s), 12, 101),
        },
        Dataset {
            name: "sparse-kron",
            graph: gms_gen::kronecker_default(11 + log2(s), 3, 102),
        },
        Dataset {
            name: "clique-rich",
            graph: gms_gen::planted_cliques(1_500 * s, 0.004, 12, 10, 103).0,
        },
        Dataset {
            name: "cluster-rich",
            graph: gms_gen::planted_dense_groups(&gms_gen::PlantedConfig {
                n: 1_500 * s,
                background_p: 0.004,
                sizes: vec![14; 12],
                density: 0.55,
                seed: 104,
            })
            .0,
        },
        Dataset {
            name: "tskew-huge",
            graph: gms_gen::planted_cliques(1_200 * s, 0.003, 1, 18, 105).0,
        },
        Dataset {
            name: "tskew-low",
            graph: gms_gen::planted_cliques(1_200 * s, 0.002, 60, 5, 106).0,
        },
        Dataset {
            name: "econ-dense",
            graph: gms_gen::gnp(400 * s, 0.12, 107),
        },
        Dataset {
            name: "road-grid",
            graph: gms_gen::grid(40 * s, 40),
        },
        Dataset {
            name: "er-uniform",
            graph: gms_gen::gnp(1_500 * s, 0.006, 108),
        },
    ]
}

/// The four-graph subset used by Fig. 1 (one per origin class, with
/// contrasting T-skew).
pub fn fig1_subset(scale: usize) -> Vec<Dataset> {
    gallery(scale)
        .into_iter()
        .filter(|d| {
            matches!(
                d.name,
                "tskew-low" | "social-kron" | "tskew-huge" | "econ-dense"
            )
        })
        .collect()
}

fn log2(s: usize) -> u32 {
    usize::BITS - 1 - s.leading_zeros()
}

/// Prints a CSV header + rows helper used by all figure binaries.
pub fn print_csv(header: &str, rows: &[String]) {
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph as _;

    #[test]
    fn gallery_builds_and_axes_hold() {
        let datasets = gallery(1);
        assert_eq!(datasets.len(), 9);
        let by_name = |n: &str| {
            datasets
                .iter()
                .find(|d| d.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        // Road grid: near-zero triangles.
        assert_eq!(gms_order::triangle_count(&by_name("road-grid").graph), 0);
        // Clique-rich has far more 4-cliques than cluster-rich despite
        // matched n and similar m — the §8.6 contrast.
        let kc = |g: &CsrGraph| {
            gms_pattern::k_clique_count(g, 4, &gms_pattern::KcConfig::default()).count
        };
        let rich = kc(&by_name("clique-rich").graph);
        let cluster = kc(&by_name("cluster-rich").graph);
        assert!(
            rich > 5 * cluster,
            "4-cliques: rich {rich} vs cluster {cluster}"
        );
        // Power-law graph has degree skew; ER does not.
        let skew = |g: &CsrGraph| {
            g.max_degree() as f64
                / (2.0 * g.num_edges_undirected() as f64 / g.num_vertices() as f64)
        };
        assert!(skew(&by_name("social-kron").graph) > 2.0 * skew(&by_name("er-uniform").graph));
    }

    #[test]
    fn fig1_subset_is_four_graphs() {
        assert_eq!(fig1_subset(1).len(), 4);
    }
}
