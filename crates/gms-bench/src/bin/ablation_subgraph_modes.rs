//! Ablation: the three H-subgraph policies of §6.2 — none, outermost
//! (GMS's choice), per-level (Eppstein's original) — across densities.
//! Expected shape (and the paper's stated finding): per-level rebuild
//! overheads outweigh its gains; outermost helps on dense graphs and
//! can hurt on very sparse ones.
//!
//! Like `ablation_set_layouts`, the sweep enumerates the `bk`
//! kernel's own parameter schema through the unified kernel API: the
//! policies tested are exactly the `subgraph` choices the kernel
//! declares.

use gms_platform::kernel::{Params, Registry};

fn main() {
    let graphs = [
        ("sparse(er-1500-0.02)", gms_gen::gnp(1500, 0.02, 1)),
        ("medium(er-800-0.10)", gms_gen::gnp(800, 0.10, 1)),
        ("dense(er-500-0.25)", gms_gen::gnp(500, 0.25, 1)),
    ];
    let registry = Registry::with_builtins();
    let modes = registry
        .get("bk")
        .expect("bk is registered")
        .params()
        .into_iter()
        .find(|spec| spec.name == "subgraph")
        .expect("bk declares a subgraph parameter")
        .choices;

    println!("graph,subgraph_mode,cliques,mine_s");
    for (name, graph) in &graphs {
        let mut counts = Vec::new();
        for &mode in modes {
            let outcome = registry
                .run("bk", graph, &Params::new().with("subgraph", mode))
                .expect("valid subgraph mode");
            counts.push(outcome.patterns);
            println!(
                "{name},{mode},{},{:.4}",
                outcome.patterns,
                outcome.timings.kernel.as_secs_f64()
            );
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "modes disagree");
    }
}
