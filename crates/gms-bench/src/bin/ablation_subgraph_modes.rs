//! Ablation: the three H-subgraph policies of §6.2 — none, outermost
//! (GMS's choice), per-level (Eppstein's original) — across densities.
//! Expected shape (and the paper's stated finding): per-level rebuild
//! overheads outweigh its gains; outermost helps on dense graphs and
//! can hurt on very sparse ones.

use gms_core::DenseBitSet;
use gms_order::OrderingKind;
use gms_pattern::{bron_kerbosch, BkConfig, SubgraphMode};

fn main() {
    let graphs = [
        ("sparse(er-1500-0.02)", gms_gen::gnp(1500, 0.02, 1)),
        ("medium(er-800-0.10)", gms_gen::gnp(800, 0.10, 1)),
        ("dense(er-500-0.25)", gms_gen::gnp(500, 0.25, 1)),
    ];
    println!("graph,subgraph_mode,cliques,mine_s");
    for (name, graph) in &graphs {
        let mut counts = Vec::new();
        for (label, mode) in [
            ("none", SubgraphMode::None),
            ("outermost", SubgraphMode::Outermost),
            ("per-level", SubgraphMode::PerLevel),
        ] {
            let outcome = bron_kerbosch::<DenseBitSet>(
                graph,
                &BkConfig {
                    ordering: OrderingKind::ApproxDegeneracy(0.25),
                    subgraph: mode,
                    collect: false,
                    ..BkConfig::default()
                },
            );
            counts.push(outcome.clique_count);
            println!(
                "{name},{label},{},{:.4}",
                outcome.clique_count,
                outcome.mine.as_secs_f64()
            );
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "modes disagree");
    }
}
