//! Batch-serving smoke and throughput probe: pushes a mixed batch —
//! **every** registered kernel at default parameters on two graphs,
//! plus deliberate duplicates — through [`BatchRunner`] and the
//! session's fingerprint-keyed cache, then replays the batch to show
//! the all-hit path. This is the service-layer shape of the ROADMAP
//! north star exercised end to end; CI runs it in release under
//! `RAYON_NUM_THREADS=2`.
//!
//! Output: one `{kernel, graph, patterns, ms, cached}` JSON row per
//! request plus the result cache's counter block
//! (hit/miss/eviction/coalescing totals), then a summary line with
//! batch wall time, pool width, and cache hit/miss counts.
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_batch
//! ```

use gms_bench::scale_from_env;
use gms_platform::kernel::{BatchRequest, BatchRunner, Params, Session};
use std::time::Instant;

fn main() {
    let s = scale_from_env();
    let mut session = Session::new();
    let clique_rich = session.add_graph(gms_gen::planted_cliques(400 * s, 0.008, 4, 8, 42).0);
    let social = session.add_graph(gms_gen::kronecker_default(10, 8, 7));
    let graph_names = [(clique_rich, "clique-rich"), (social, "social-kron")];

    // Every registered kernel once per graph, plus duplicated
    // requests the runner must serve without re-running.
    let mut requests: Vec<BatchRequest> = Vec::new();
    for &(handle, _) in &graph_names {
        for kernel in session.registry().iter() {
            requests.push(BatchRequest::new(kernel.name(), handle, Params::new()));
        }
    }
    requests.push(BatchRequest::new("bk-gms-adg", clique_rich, Params::new()));
    requests.push(BatchRequest::new("triangle-count", social, Params::new()));

    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let runner = BatchRunner::new(threads);

    let t = Instant::now();
    let outcomes = runner.run(&mut session, &requests);
    let cold = t.elapsed();

    let mut rows = Vec::new();
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let outcome = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", request.kernel));
        let graph = graph_names
            .iter()
            .find(|(h, _)| *h == request.graph)
            .map(|(_, n)| *n)
            .unwrap_or("?");
        rows.push(format!(
            "{{\"kernel\":\"{}\",\"graph\":\"{}\",\"patterns\":{},\"ms\":{:.3},\"cached\":{}}}",
            request.kernel,
            graph,
            outcome.patterns,
            outcome.timings.total().as_secs_f64() * 1e3,
            outcome.cached,
        ));
    }

    // Replay: the whole batch must now come out of the result cache.
    let t = Instant::now();
    let replay = runner.run(&mut session, &requests);
    let warm = t.elapsed();
    let replay_hits = replay
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|o| o.cached))
        .count();
    assert_eq!(
        replay_hits,
        requests.len(),
        "replayed batch must be all hits"
    );

    let cache = session.cache_stats();
    println!(
        "{{\"bench\":\"batch\",\"rows\":[\n  {}\n],\n\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"coalesced\":{},\"cross_hits\":{},\"entries\":{},\"capacity\":{}}}}}",
        rows.join(",\n  "),
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.coalesced,
        cache.cross_hits,
        cache.entries,
        cache.capacity,
    );
    let stats = session.stats();
    eprintln!(
        "{} requests ({} unique misses, {} hits) | cold {:.1} ms, warm replay {:.1} ms | threads={}",
        2 * requests.len(),
        stats.misses,
        stats.hits,
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
        if threads == 0 { "default".to_string() } else { threads.to_string() },
    );
}
