//! Writes `BENCH_compression.json`: bytes-per-edge vs kernel-slowdown
//! curves for the compressed serving backend — every gallery
//! archetype in the selected subset, held raw, gap-compressed, and
//! gap-compressed after a BFS locality reordering, with the pattern
//! kernels (triangle-count, bk, k-clique) timed on each resident
//! representation through the same [`Kernel`] entry points the
//! serving layer uses (`run` on raw CSR, `run_compressed` on the
//! compressed backend).
//!
//! Each row reports the representation's adjacency heap footprint in
//! bytes per stored arc and the kernel's wall-clock slowdown against
//! the raw CSR run of the same kernel on the same graph — the
//! space/time trade-off of §2.3's compressed representations, on the
//! serving path rather than in isolation.
//!
//! The binary enforces the PR's compression floor: on at least one
//! gallery graph, gap+reorder must shrink bytes-per-arc by ≥ 2×
//! against the raw CSR, or it exits nonzero (CI release smoke).
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_compression
//! ```

use gms_bench::{gallery, scale_from_env};
use gms_core::{CsrGraph, Graph};
use gms_graph::CompressedCsr;
use gms_platform::kernel::{Kernel, Params, Registry};
use std::time::Instant;

const KERNELS: [&str; 3] = ["triangle-count", "bk", "k-clique"];
const DATASETS: [&str; 3] = ["social-kron", "clique-rich", "road-grid"];

/// Median-of-three wall clock (seconds) after one warmup run.
fn timed(mut run: impl FnMut() -> u64) -> (u64, f64) {
    let patterns = run(); // warmup; also the answer
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    (patterns, samples[1].max(1e-12))
}

/// Raw CSR adjacency footprint: the offsets and targets arrays.
fn raw_bytes(graph: &CsrGraph) -> usize {
    std::mem::size_of_val(graph.offsets()) + std::mem::size_of_val(graph.adjacency())
}

struct Scheme<'a> {
    name: &'static str,
    bytes_per_arc: f64,
    compressed: Option<&'a CompressedCsr>,
}

fn main() {
    let datasets = gallery(scale_from_env());
    let registry = Registry::with_builtins();
    let params = Params::new();
    let mut rows: Vec<String> = Vec::new();
    let mut best_reduction: (f64, &'static str) = (0.0, "none");

    for dataset in datasets.iter().filter(|d| DATASETS.contains(&d.name)) {
        let graph = &dataset.graph;
        let arcs = graph.num_arcs().max(1) as f64;
        let gap = CompressedCsr::from_csr(graph);
        let rank = gms_order::bfs_order(graph, 0);
        let reordered = CompressedCsr::from_csr_ordered(graph, &rank);
        let raw_bpa = raw_bytes(graph) as f64 / arcs;
        let schemes = [
            Scheme {
                name: "raw",
                bytes_per_arc: raw_bpa,
                compressed: None,
            },
            Scheme {
                name: "gap",
                bytes_per_arc: gap.bytes_per_arc(),
                compressed: Some(&gap),
            },
            Scheme {
                name: "gap+reorder",
                bytes_per_arc: reordered.bytes_per_arc(),
                compressed: Some(&reordered),
            },
        ];
        let reduction = raw_bpa / schemes[2].bytes_per_arc.max(1e-12);
        if reduction > best_reduction.0 {
            best_reduction = (reduction, dataset.name);
        }

        for kernel_name in KERNELS {
            let kernel: &dyn Kernel = registry.get(kernel_name).expect("builtin kernel");
            let (raw_patterns, raw_secs) = timed(|| {
                kernel
                    .run(graph, &params)
                    .expect("default params are valid")
                    .patterns
            });
            for scheme in &schemes {
                let (patterns, secs) = match scheme.compressed {
                    None => (raw_patterns, raw_secs),
                    Some(compressed) => timed(|| {
                        kernel
                            .run_compressed(compressed, &params)
                            .expect("default params are valid")
                            .patterns
                    }),
                };
                // The reordered backend is a relabeled isomorph;
                // pattern counts are isomorphism invariants.
                assert_eq!(
                    patterns, raw_patterns,
                    "{kernel_name} on {}/{} disagrees with the raw run",
                    dataset.name, scheme.name
                );
                rows.push(format!(
                    "{{\"graph\":\"{}\",\"scheme\":\"{}\",\"kernel\":\"{}\",\
                     \"bytes_per_arc\":{:.3},\"ms\":{:.3},\"slowdown_vs_raw\":{:.3},\
                     \"patterns\":{}}}",
                    dataset.name,
                    scheme.name,
                    kernel_name,
                    scheme.bytes_per_arc,
                    secs * 1e3,
                    secs / raw_secs,
                    patterns,
                ));
            }
        }
    }

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    let path = "BENCH_compression.json";
    std::fs::write(path, &json).expect("write BENCH_compression.json");
    println!("{json}");
    eprintln!("wrote {path}");
    eprintln!(
        "compression floor check: best gap+reorder reduction {:.2}x (on {})",
        best_reduction.0, best_reduction.1
    );
    if best_reduction.0 < 2.0 {
        eprintln!("FAIL: gap+reorder never reached a 2x bytes-per-arc reduction over the raw CSR");
        std::process::exit(1);
    }
}
