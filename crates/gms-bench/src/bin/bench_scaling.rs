//! Writes `BENCH_scaling.json`: thread-scaling rows for every
//! registered pattern-mining kernel on a seeded Kronecker graph at
//! 1/2/4 threads, each row `{kernel, threads, ms, speedup}`.
//!
//! The kernels come from the unified [`Registry`], not from
//! hand-wired calls: registering a new pattern kernel adds it to
//! this trajectory automatically. The artifact is a perf history:
//! future PRs rerun this binary on the same machine and diff the
//! JSON to see whether the scheduler or the kernels regressed. On a
//! single-core container the speedups hover around 1.0 (the
//! work-stealing paths still execute — workers are real threads —
//! there is just no extra hardware to win with); on a multi-core box
//! the curve should rise until memory bandwidth flattens it (§8.1.3).
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_scaling
//! ```

use gms_bench::scale_from_env;
use gms_platform::kernel::{Category, Params, Registry};
use gms_platform::{run_scaling, series_json_rows};

fn main() {
    let s = scale_from_env() as u32;
    // Seeded Kronecker graph (deterministic across runs/machines).
    let graph = gms_gen::kronecker_default(10 + s.ilog2(), 12, 7);
    let thread_counts = [1usize, 2, 4];
    let registry = Registry::with_builtins();
    let mut rows: Vec<String> = Vec::new();

    // Every pattern kernel at its default parameters: the paper's BK
    // variants, the parameterized BK, k-cliques, triangles,
    // clique-stars — and whatever the registry gains next.
    for kernel in registry.by_category(Category::Pattern) {
        let params = Params::new();
        let series = run_scaling(&thread_counts, || {
            let outcome = registry
                .run(kernel.name(), &graph, &params)
                .expect("default params are valid");
            std::hint::black_box(outcome.patterns);
        });
        rows.extend(series_json_rows(kernel.name(), &series));
    }

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    let path = "BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
