//! Writes `BENCH_scaling.json`: thread-scaling rows for every
//! registered pattern-mining kernel on a seeded Kronecker graph at
//! 1/2/4 threads (each point the median of repeated runs after a
//! warmup — see `run_scaling`), plus a set-algebra microbenchmark
//! lane reporting count-kernel throughput per set layout.
//!
//! The kernels come from the unified [`Registry`], not from
//! hand-wired calls: registering a new pattern kernel adds it to
//! this trajectory automatically. The artifact is a perf history:
//! future PRs rerun this binary on the same machine and diff the
//! JSON to see whether the scheduler or the kernels regressed. On a
//! single-core container the speedups hover around 1.0 (the
//! work-stealing paths still execute — workers are real threads —
//! there is just no extra hardware to win with); on a multi-core box
//! the curve should rise until memory bandwidth flattens it (§8.1.3).
//!
//! Set-op lane rows look like ordinary rows with kernel
//! `setops_<layout>` and an extra `"ops_per_s"` field: the number of
//! `intersect_count`/`union_count`/`diff_count` calls per second over
//! Kronecker neighborhood pairs. These pin the u64-block and
//! galloping count kernels against accidental deoptimization.
//!
//! With `GMS_ENFORCE_SPEEDUP_FLOOR=1` (the CI release-smoke setting)
//! the binary exits nonzero if the `bk` kernel's 4-thread speedup
//! falls below 1.0 — parallel mining must never be slower than
//! sequential on a multi-core runner.
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_scaling
//! ```

use gms_bench::scale_from_env;
use gms_core::{
    CsrGraph, DenseBitSet, Graph, HashVertexSet, NodeId, RoaringSet, Set, SortedVecSet,
    SparseBitSet,
};
use gms_platform::kernel::{Category, Params, Registry};
use gms_platform::{run_scaling, series_json_rows_with};
use std::time::Instant;

/// Times `intersect_count` + `union_count` + `diff_count` over every
/// adjacent neighborhood pair of the graph, returning a JSON row with
/// ops/s. Median of three timed passes after one warmup pass, same
/// discipline as the kernel lane.
fn setop_lane_row<S: Set>(layout: &str, graph: &CsrGraph) -> String {
    let sets: Vec<S> = (0..graph.num_vertices() as NodeId)
        .map(|v| S::from_sorted(graph.neighbors_slice(v)))
        .collect();
    let pairs: Vec<(&S, &S)> = sets.windows(2).map(|w| (&w[0], &w[1])).collect();
    let pass = || {
        let mut acc = 0usize;
        for (a, b) in &pairs {
            acc += a.intersect_count(b);
            acc += a.union_count(b);
            acc += a.diff_count(b);
        }
        std::hint::black_box(acc);
    };
    pass(); // warmup
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            pass();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    let secs = samples[1].max(1e-12);
    let ops = (pairs.len() * 3) as f64;
    format!(
        "{{\"kernel\":\"setops_{}\",\"threads\":1,\"ms\":{:.3},\"speedup\":1.000,\"ops_per_s\":{:.0}}}",
        layout,
        secs * 1e3,
        ops / secs,
    )
}

fn main() {
    let s = scale_from_env() as u32;
    // Seeded Kronecker graph (deterministic across runs/machines).
    let graph = gms_gen::kronecker_default(10 + s.ilog2(), 12, 7);
    let thread_counts = [1usize, 2, 4];
    let registry = Registry::with_builtins();
    let mut rows: Vec<String> = Vec::new();
    // (kernel, threads, speedup) points for the floor check.
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();

    // Every pattern kernel at its default parameters: the paper's BK
    // variants, the parameterized BK, k-cliques, triangles,
    // clique-stars — and whatever the registry gains next.
    for kernel in registry.by_category(Category::Pattern) {
        let params = Params::new();
        let series = run_scaling(&thread_counts, || {
            let outcome = registry
                .run(kernel.name(), &graph, &params)
                .expect("default params are valid");
            std::hint::black_box(outcome.patterns);
        });
        if let Some(first) = series.first() {
            for point in &series {
                speedups.push((
                    kernel.name().to_string(),
                    point.threads,
                    point.speedup_vs(first.elapsed),
                ));
            }
        }
        rows.extend(series_json_rows_with(kernel.name(), &series, &[]));
    }

    // Set-algebra lane: count-kernel throughput per layout.
    rows.push(setop_lane_row::<SortedVecSet>("sorted", &graph));
    rows.push(setop_lane_row::<DenseBitSet>("dense", &graph));
    rows.push(setop_lane_row::<HashVertexSet>("hash", &graph));
    rows.push(setop_lane_row::<SparseBitSet>("sparse_bits", &graph));
    rows.push(setop_lane_row::<RoaringSet>("roaring", &graph));

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    let path = "BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    println!("{json}");
    eprintln!("wrote {path}");

    if std::env::var("GMS_ENFORCE_SPEEDUP_FLOOR").is_ok_and(|v| v == "1") {
        let bk_4t = speedups
            .iter()
            .find(|(k, t, _)| k == "bk" && *t == 4)
            .map(|&(_, _, s)| s)
            .expect("bk kernel present in registry");
        eprintln!("speedup floor check: bk @4T = {bk_4t:.3}");
        if bk_4t < 1.0 {
            eprintln!("FAIL: bk 4-thread speedup {bk_4t:.3} < 1.0 — parallel slowdown");
            std::process::exit(1);
        }
    }
}
