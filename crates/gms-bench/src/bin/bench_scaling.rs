//! Writes `BENCH_scaling.json`: thread-scaling rows for the two
//! hottest mining kernels — Bron–Kerbosch maximal clique listing and
//! k-clique counting — on a seeded Kronecker graph at 1/2/4 threads,
//! each row `{kernel, threads, ms, speedup}`.
//!
//! The artifact is a perf trajectory: future PRs rerun this binary on
//! the same machine and diff the JSON to see whether the scheduler or
//! the kernels regressed. On a single-core container the speedups
//! hover around 1.0 (the work-stealing paths still execute — workers
//! are real threads — there is just no extra hardware to win with);
//! on a multi-core box the curve should rise until memory bandwidth
//! flattens it (§8.1.3).
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_scaling
//! ```

use gms_bench::scale_from_env;
use gms_pattern::{bron_kerbosch, k_clique_count, BkConfig, KcConfig};
use gms_platform::{run_scaling, series_json_rows};

fn main() {
    let s = scale_from_env() as u32;
    // Seeded Kronecker graph (deterministic across runs/machines).
    let graph = gms_gen::kronecker_default(11 + s.ilog2(), 14, 7);
    let thread_counts = [1usize, 2, 4];
    let mut rows: Vec<String> = Vec::new();

    let bk_config = BkConfig::default();
    let bk_series = run_scaling(&thread_counts, || {
        let outcome = bron_kerbosch::<gms_core::DenseBitSet>(&graph, &bk_config);
        std::hint::black_box(outcome.clique_count);
    });
    rows.extend(series_json_rows("bron_kerbosch", &bk_series));

    let kc_config = KcConfig::default();
    let kc_series = run_scaling(&thread_counts, || {
        let outcome = k_clique_count(&graph, 4, &kc_config);
        std::hint::black_box(outcome.count);
    });
    rows.extend(series_json_rows("k_clique_4", &kc_series));

    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));
    let path = "BENCH_scaling.json";
    std::fs::write(path, &json).expect("write BENCH_scaling.json");
    println!("{json}");
    eprintln!("wrote {path}");
}
