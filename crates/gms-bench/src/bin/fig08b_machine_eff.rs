//! Figure 8b: machine-efficiency analysis, emitted as JSON.
//!
//! Runs three load-imbalanced kernels — Bron–Kerbosch maximal clique
//! listing, edge-parallel k-clique counting, and the parallel
//! subgraph-isomorphism driver — through `gms_platform::run_scaling`
//! at 1/2/4/8 threads and reports per-point runtime, speedup and
//! parallel efficiency. All three are requested by name through the
//! unified kernel [`Registry`] with typed [`Params`]; the BK rows use
//! the `counting` set layout, which routes every set operation
//! through the software counters (the PAPI substitute; see
//! DESIGN.md), so they additionally carry the memory-pressure proxy
//! (bytes touched by set operations per second). Paper shape:
//! speedups flatten as threads grow while the memory-traffic rate
//! keeps climbing — the memory-bound signature of maximal clique
//! listing.
//!
//! The full thread series runs even when the machine has fewer cores:
//! on an oversubscribed pool the curve goes flat, which is itself the
//! saturation signal this figure reports.

use gms_bench::scale_from_env;
use gms_platform::counters::CounterRegion;
use gms_platform::kernel::{Params, Registry};
use gms_platform::{efficiencies, run_scaling, series_json_rows_with, ScalingPoint};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Formats one kernel's series through the shared platform row
/// builder, attaching efficiency plus any kernel-specific extra
/// fields (aligned with the series).
fn rows_for(kernel: &str, series: &[ScalingPoint], extras: &[String]) -> Vec<String> {
    let with_eff: Vec<String> = efficiencies(series)
        .iter()
        .enumerate()
        .map(|(i, eff)| {
            format!(
                ",\"efficiency\":{:.3}{}",
                eff,
                extras.get(i).map(String::as_str).unwrap_or("")
            )
        })
        .collect();
    series_json_rows_with(kernel, series, &with_eff)
}

fn main() {
    let s = scale_from_env();
    let clique_rich = gms_gen::planted_cliques(1_200 * s, 0.004, 10, 9, 103).0;
    let social = gms_gen::kronecker_default(11, 10, 101);
    let registry = Registry::with_builtins();

    let mut rows: Vec<String> = Vec::new();

    // Bron–Kerbosch, instrumented: the `counting` layout feeds the
    // software counters so each point also reports set-op memory
    // traffic.
    let bk_params = Params::new().with("layout", "counting");
    for (name, graph) in [("clique-rich", &clique_rich), ("social-kron", &social)] {
        let mut series = Vec::new();
        let mut extras = Vec::new();
        for &t in &THREADS {
            let region = CounterRegion::start();
            let point = run_scaling(&[t], || {
                let outcome = registry.run("bk", graph, &bk_params).expect("bk params");
                std::hint::black_box(outcome.patterns);
            })[0];
            let stats = region.stop();
            let secs = point.elapsed.as_secs_f64();
            extras.push(format!(
                ",\"set_ops\":{},\"bytes_touched\":{},\"bytes_per_second\":{:.3e}",
                stats.set_ops,
                stats.bytes_touched(),
                stats.bytes_touched() as f64 / secs.max(1e-12),
            ));
            series.push(point);
        }
        rows.extend(rows_for(&format!("bk/{name}"), &series, &extras));
    }

    // Edge-parallel k-clique counting (recursive-split root edges).
    let kc_params = Params::new().with("k", 4);
    let kc_series = run_scaling(&THREADS, || {
        let outcome = registry
            .run("k-clique", &social, &kc_params)
            .expect("k-clique params");
        std::hint::black_box(outcome.patterns);
    });
    rows.extend(rows_for("kclique4/social-kron", &kc_series, &[]));

    // Parallel subgraph isomorphism: the driver sizes its own pool,
    // so each scaling point hands it the point's thread count. The
    // kernel's convert stage clones the target into a LabeledGraph —
    // a fixed sequential cost that would compress the curve toward
    // 1.0 (Amdahl) if timed — so each point reports the kernel-stage
    // time from the outcome, not the closure wall clock.
    let iso_target = gms_gen::gnp(600 * s, 0.02, 5);
    let iso_series: Vec<ScalingPoint> = THREADS
        .iter()
        .map(|&t| {
            let params = Params::new()
                .with("query", "path4")
                .with("threads", t)
                .with("stealing", true);
            let kernel_nanos = std::sync::atomic::AtomicU64::new(0);
            run_scaling(&[t], || {
                let outcome = registry
                    .run("subgraph-iso-par", &iso_target, &params)
                    .expect("iso params");
                kernel_nanos.store(
                    outcome.timings.kernel.as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                std::hint::black_box(outcome.patterns);
            });
            ScalingPoint {
                threads: t,
                elapsed: std::time::Duration::from_nanos(
                    kernel_nanos.load(std::sync::atomic::Ordering::Relaxed),
                ),
            }
        })
        .collect();
    rows.extend(rows_for("subgraph-iso/gnp", &iso_series, &[]));

    println!(
        "{{\"figure\":\"fig08b_machine_eff\",\"rows\":[\n  {}\n]}}",
        rows.join(",\n  ")
    );
}
