//! Figure 8b: machine-efficiency analysis — BK runtime vs thread
//! count, alongside the memory-pressure proxy (bytes touched by set
//! operations per second, from the software counters that substitute
//! for PAPI stalled-cycle measurements; see DESIGN.md). Paper shape:
//! speedups flatten as threads grow while the memory-traffic rate
//! keeps climbing — the memory-bound signature of maximal clique
//! listing.

use gms_bench::{print_csv, scale_from_env};
use gms_core::SortedVecSet;
use gms_order::OrderingKind;
use gms_pattern::bk::SubgraphMode;
use gms_pattern::{bron_kerbosch, BkConfig};
use gms_platform::counters::{CounterRegion, CountingSet};
use gms_platform::run_scaling;

fn main() {
    let s = scale_from_env();
    let graphs = [
        (
            "clique-rich",
            gms_gen::planted_cliques(1_200 * s, 0.004, 10, 9, 103).0,
        ),
        ("social-kron", gms_gen::kronecker_default(11, 10, 101)),
    ];
    let config = BkConfig {
        ordering: OrderingKind::ApproxDegeneracy(0.25),
        subgraph: SubgraphMode::None,
        collect: false,
    };
    let mut rows = Vec::new();
    for (name, graph) in &graphs {
        // Run the full series even when the machine has fewer cores:
        // on an oversubscribed pool the curve goes flat, which is
        // itself the saturation signal this figure reports.
        for t in [1usize, 2, 4, 8] {
            let region = CounterRegion::start();
            let series = run_scaling(&[t], || {
                // Instrumented run: CountingSet feeds the counters.
                let outcome = bron_kerbosch::<CountingSet<SortedVecSet>>(graph, &config);
                std::hint::black_box(outcome.clique_count);
            });
            let stats = region.stop();
            let secs = series[0].elapsed.as_secs_f64();
            rows.push(format!(
                "{name},{t},{:.4},{},{},{:.3e}",
                secs,
                stats.set_ops,
                stats.bytes_touched(),
                stats.bytes_touched() as f64 / secs.max(1e-12),
            ));
        }
    }
    print_csv(
        "graph,threads,time_s,set_ops,bytes_touched,bytes_per_second",
        &rows,
    );
}
