//! Figure 8b: machine-efficiency analysis, emitted as JSON.
//!
//! Runs the three load-imbalanced kernels — Bron–Kerbosch maximal
//! clique listing, edge-parallel k-clique counting, and the parallel
//! subgraph-isomorphism driver — through `gms_platform::run_scaling`
//! at 1/2/4/8 threads and reports per-point runtime, speedup and
//! parallel efficiency. The BK rows additionally carry the
//! memory-pressure proxy (bytes touched by set operations per second,
//! from the software counters that substitute for PAPI stalled-cycle
//! measurements; see DESIGN.md). Paper shape: speedups flatten as
//! threads grow while the memory-traffic rate keeps climbing — the
//! memory-bound signature of maximal clique listing.
//!
//! The full thread series runs even when the machine has fewer cores:
//! on an oversubscribed pool the curve goes flat, which is itself the
//! saturation signal this figure reports.

use gms_bench::scale_from_env;
use gms_core::SortedVecSet;
use gms_match::{count_embeddings_parallel, IsoOptions, LabeledGraph, ParallelIsoConfig};
use gms_pattern::{bron_kerbosch, k_clique_count, BkConfig, KcConfig};
use gms_platform::counters::{CounterRegion, CountingSet};
use gms_platform::{efficiencies, run_scaling, series_json_rows_with, ScalingPoint};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Formats one kernel's series through the shared platform row
/// builder, attaching efficiency plus any kernel-specific extra
/// fields (aligned with the series).
fn rows_for(kernel: &str, series: &[ScalingPoint], extras: &[String]) -> Vec<String> {
    let with_eff: Vec<String> = efficiencies(series)
        .iter()
        .enumerate()
        .map(|(i, eff)| {
            format!(
                ",\"efficiency\":{:.3}{}",
                eff,
                extras.get(i).map(String::as_str).unwrap_or("")
            )
        })
        .collect();
    series_json_rows_with(kernel, series, &with_eff)
}

fn main() {
    let s = scale_from_env();
    let clique_rich = gms_gen::planted_cliques(1_200 * s, 0.004, 10, 9, 103).0;
    let social = gms_gen::kronecker_default(11, 10, 101);

    let mut rows: Vec<String> = Vec::new();

    // Bron–Kerbosch, instrumented: CountingSet feeds the software
    // counters so each point also reports set-op memory traffic.
    for (name, graph) in [("clique-rich", &clique_rich), ("social-kron", &social)] {
        let config = BkConfig::default();
        let mut series = Vec::new();
        let mut extras = Vec::new();
        for &t in &THREADS {
            let region = CounterRegion::start();
            let point = run_scaling(&[t], || {
                let outcome = bron_kerbosch::<CountingSet<SortedVecSet>>(graph, &config);
                std::hint::black_box(outcome.clique_count);
            })[0];
            let stats = region.stop();
            let secs = point.elapsed.as_secs_f64();
            extras.push(format!(
                ",\"set_ops\":{},\"bytes_touched\":{},\"bytes_per_second\":{:.3e}",
                stats.set_ops,
                stats.bytes_touched(),
                stats.bytes_touched() as f64 / secs.max(1e-12),
            ));
            series.push(point);
        }
        rows.extend(rows_for(&format!("bk/{name}"), &series, &extras));
    }

    // Edge-parallel k-clique counting (recursive-split root edges).
    let kc_config = KcConfig::default();
    let kc_series = run_scaling(&THREADS, || {
        let outcome = k_clique_count(&social, 4, &kc_config);
        std::hint::black_box(outcome.count);
    });
    rows.extend(rows_for("kclique4/social-kron", &kc_series, &[]));

    // Parallel subgraph isomorphism: the driver sizes its own pool,
    // so each scaling point hands it the point's thread count.
    let target = LabeledGraph::random_labels(gms_gen::gnp(600 * s, 0.02, 5), 3, 11);
    let query = target.induced(&[0, 7, 19]);
    let iso_series: Vec<ScalingPoint> = THREADS
        .iter()
        .map(|&t| {
            let config = ParallelIsoConfig {
                threads: t,
                work_stealing: true,
                options: IsoOptions::default(),
            };
            run_scaling(&[t], || {
                std::hint::black_box(count_embeddings_parallel(&query, &target, &config));
            })[0]
        })
        .collect();
    rows.extend(rows_for("subgraph-iso/gnp", &iso_series, &[]));

    println!(
        "{{\"figure\":\"fig08b_machine_eff\",\"rows\":[\n  {}\n]}}",
        rows.join(",\n  ")
    );
}
