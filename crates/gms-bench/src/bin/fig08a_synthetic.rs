//! Figure 8a: synthetic-graph sweep — Kronecker power-law graphs at
//! scales 10 and 11, average degree swept over powers of two;
//! preprocessing (DGR reordering) time vs mining (BK) time. Paper
//! shape: for very sparse graphs mining dominates; as m/n grows the
//! reordering cost overtakes it, because Kronecker graphs lack large
//! cliques while reorder cost grows with m.

use gms_bench::print_csv;
use gms_core::{Graph, RoaringSet};
use gms_order::OrderingKind;
use gms_pattern::bk::SubgraphMode;
use gms_pattern::{bron_kerbosch, BkConfig};

fn main() {
    let mut rows = Vec::new();
    for scale in [10u32, 11] {
        for edge_factor in [1usize, 4, 16, 64] {
            let graph = gms_gen::kronecker_default(scale, edge_factor, 77);
            let outcome = bron_kerbosch::<RoaringSet>(
                &graph,
                &BkConfig {
                    ordering: OrderingKind::Degeneracy,
                    subgraph: SubgraphMode::None,
                    collect: false,
                    ..BkConfig::default()
                },
            );
            let avg_degree =
                2.0 * graph.num_edges_undirected() as f64 / graph.num_vertices() as f64;
            rows.push(format!(
                "{scale},{edge_factor},{:.2},{:.4},{:.4},{}",
                avg_degree,
                outcome.preprocess.as_secs_f64(),
                outcome.mine.as_secs_f64(),
                outcome.clique_count,
            ));
        }
    }
    print_csv(
        "kron_scale,edge_factor,avg_degree,preprocessing_time_s,mining_time_s,cliques",
        &rows,
    );
}
