//! Figure 11 (appendix): algorithmic throughput (maximal cliques per
//! second) of all Bron–Kerbosch variants across the FULL dataset
//! gallery — the appendix-size version of Fig. 1. Paper shape: GMS
//! variants dominate BK-DAS everywhere; the relative margin shrinks on
//! graphs dense in maximal cliques (§8.10).

use gms_bench::{gallery, print_csv, scale_from_env};
use gms_pattern::BkVariant;

fn main() {
    let datasets = gallery(scale_from_env());
    let mut rows = Vec::new();
    for dataset in &datasets {
        for variant in BkVariant::ALL {
            let outcome = variant.run(&dataset.graph);
            rows.push(format!(
                "{},{},{},{:.0}",
                dataset.name,
                variant.label(),
                outcome.clique_count,
                outcome.throughput(),
            ));
        }
    }
    print_csv("graph,variant,maximal_cliques,cliques_per_second", &rows);
}
