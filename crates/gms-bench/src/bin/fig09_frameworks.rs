//! Figure 9: GMS vs GBBS-style vs Danisch-style k-clique mining for
//! large clique sizes (k = 9, 10) across graphs. Paper shape: GMS
//! (edge-parallel + ADG) is consistently fastest or tied; the
//! node-parallel GBBS shape loses ground on skewed graphs; all three
//! agree on counts. (Peregrine/RStream are 10–100× slower in the
//! paper and are omitted there too for most plots.)

use gms_bench::{gallery, print_csv, scale_from_env};
use gms_pattern::KcVariant;

fn main() {
    let datasets = gallery(scale_from_env());
    let selected = ["clique-rich", "tskew-huge", "social-kron", "cluster-rich"];
    let mut rows = Vec::new();
    for dataset in datasets.iter().filter(|d| selected.contains(&d.name)) {
        for k in [9usize, 10] {
            let mut counts = Vec::new();
            for variant in KcVariant::ALL {
                let outcome = variant.run(&dataset.graph, k);
                counts.push(outcome.count);
                rows.push(format!(
                    "{},{k},{},{},{:.4}",
                    dataset.name,
                    variant.label(),
                    outcome.count,
                    (outcome.preprocess + outcome.mine).as_secs_f64(),
                ));
            }
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "variants disagree");
        }
    }
    print_csv("graph,k,framework,cliques,total_time_s", &rows);
}
