//! `bench_router`: the scaling bench for `gms-router`, and the CI
//! routing smoke. Writes `BENCH_router.json`.
//!
//! **Standalone** (no env) it measures the 1→4 backend scaling
//! curve: for each fleet size it starts that many in-process
//! `gms-serve` backends behind a fresh router, loads the same eight
//! graphs through the router, and drives an identical closed-loop
//! mixed-kernel workload from eight client threads — reporting
//! throughput, latency percentiles, and how many shards the ring
//! actually spread the graphs over. Each fleet starts cold, so the
//! numbers compare like with like. The 4-backend point finishes with
//! a failover probe: one backend is killed and the same request
//! stream must keep answering (typed errors allowed, hangs not).
//!
//! **External smoke** (`GMS_ROUTER_ADDR` set) drives an
//! already-running router — CI starts `gms-router --spawn 2` first —
//! through load/run/batch/stats and asserts the fleet plumbing:
//! responses name their serving shard, batches scatter-gather with
//! per-item results in order, and fleet stats aggregate the backend
//! counters. `GMS_ROUTER_SHUTDOWN=1` sends the final `shutdown`.
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_router
//! ```

use gms_router::{Router, RouterConfig, RouterHandle};
use gms_serve::{Client, Json, ServeConfig, Server, ServerHandle};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Graphs per run: enough that consistent hashing spreads them over
/// every fleet size tested.
const GRAPHS: usize = 8;
/// Closed-loop client threads.
const CLIENTS: usize = 8;
/// Requests per client thread per fleet size.
const REQUESTS_PER_CLIENT: usize = 30;

fn edge_list(graph: &gms_core::CsrGraph) -> String {
    let mut bytes = Vec::new();
    gms_graph::io::write_edge_list(graph, &mut bytes).unwrap();
    String::from_utf8(bytes).unwrap()
}

fn assert_ok(response: &Json, what: &str) {
    assert_eq!(
        response.get("ok"),
        Some(&Json::Bool(true)),
        "{what} failed: {}",
        response.render()
    );
}

fn graph_name(i: usize) -> String {
    format!("g{i}")
}

/// The benchmark graph set — distinct structures so fingerprints
/// (and therefore shard assignments) differ.
fn graphs() -> Vec<gms_core::CsrGraph> {
    // Same size, different seeds: distinct fingerprints (so the ring
    // spreads them) but near-uniform per-request cost, so the cold
    // batch's wall time tracks fleet capacity instead of the single
    // most expensive graph.
    (0..GRAPHS)
        .map(|i| gms_gen::gnp(800, 0.035, 9000 + i as u64))
        .collect()
}

fn load_all(client: &mut Client, graphs: &[gms_core::CsrGraph]) {
    for (i, graph) in graphs.iter().enumerate() {
        let response = client
            .load_inline(&graph_name(i), "edge-list", &edge_list(graph))
            .unwrap();
        assert_ok(&response, &format!("load {}", graph_name(i)));
    }
}

/// One request of the mix: kernel + graph + params, cycling so the
/// stream mixes cold executions (distinct keys) with cache hits.
fn mix_request(i: usize) -> (&'static str, String, Vec<(&'static str, Json)>) {
    let graph = graph_name(i % GRAPHS);
    // k varies per slot: most requests are distinct cache keys, so
    // the stream measures mining capacity, not just cache latency.
    match i % 4 {
        0 => ("triangle-count", graph, vec![]),
        1 => (
            "k-clique",
            graph,
            vec![("k", Json::Int(3 + ((i / 4) % 3) as i64))],
        ),
        2 => ("order-degree", graph, vec![]),
        _ => ("coloring", graph, vec![]),
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Closed-loop drive: `CLIENTS` threads, each with its own pooled
/// connection, issuing the mixed stream as fast as answers return.
/// Returns (sorted latencies ms, wall time).
fn drive(addr: std::net::SocketAddr) -> (Vec<f64>, Duration) {
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("dial router");
                for r in 0..REQUESTS_PER_CLIENT {
                    let (kernel, graph, params) = mix_request(c * REQUESTS_PER_CLIENT + r);
                    let sent = Instant::now();
                    let response = client.run(kernel, &graph, &params).unwrap();
                    let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
                    assert_ok(&response, &format!("{kernel} on {graph}"));
                    latencies.lock().unwrap().push(elapsed_ms);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }
    let wall = started.elapsed();
    let mut latencies = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (latencies, wall)
}

/// Shards actually holding graphs, from the router's fleet table.
fn shards_in_use(stats: &Json) -> usize {
    let mut shards: Vec<&str> = stats
        .get("graphs")
        .and_then(Json::as_array)
        .map(|graphs| {
            graphs
                .iter()
                .filter_map(|g| g.get("shard").and_then(Json::as_str))
                .collect()
        })
        .unwrap_or_default();
    shards.sort_unstable();
    shards.dedup();
    shards.len()
}

fn start_fleet(backends: usize) -> (Vec<ServerHandle>, RouterHandle) {
    let servers: Vec<ServerHandle> = (0..backends)
        .map(|_| {
            Server::start(ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            })
            .expect("start backend")
        })
        .collect();
    let router = Router::start(RouterConfig {
        backends: servers.iter().map(|s| s.addr().to_string()).collect(),
        probe_interval: Duration::ZERO,
        ..RouterConfig::default()
    })
    .expect("start router");
    (servers, router)
}

fn stop_backend(handle: ServerHandle) {
    if let Ok(mut client) = Client::connect(handle.addr()) {
        let _ = client.shutdown();
    }
    handle.join();
}

/// The cold phase: every distinct (kernel, graph, k) of the mix as
/// one batch. Each backend executes its sub-batch sequentially on
/// one worker, so the wall time of the scattered batch is where the
/// fleet's capacity scaling shows.
fn cold_batch() -> Json {
    let mut items = Vec::new();
    for i in 0..GRAPHS {
        let graph = graph_name(i);
        items.push(Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from("triangle-count")),
            ("graph", Json::from(graph.clone())),
        ]));
        for k in 3..=5i64 {
            items.push(Json::object([
                ("op", Json::from("run")),
                ("kernel", Json::from("k-clique")),
                ("graph", Json::from(graph.clone())),
                ("params", Json::object([("k", Json::Int(k))])),
            ]));
        }
        items.push(Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from("order-degree")),
            ("graph", Json::from(graph.clone())),
        ]));
        items.push(Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from("coloring")),
            ("graph", Json::from(graph)),
        ]));
    }
    Json::object([
        ("op", Json::from("batch")),
        ("requests", Json::Array(items)),
    ])
}

/// One point of the scaling curve.
fn run_fleet(backends: usize, graphs: &[gms_core::CsrGraph], probe_failover: bool) -> Json {
    let (servers, router) = start_fleet(backends);
    let mut control = Client::connect(router.addr()).expect("dial router");
    assert_ok(&control.health().unwrap(), "router health");
    load_all(&mut control, graphs);

    // Cold phase: one big scattered batch of distinct requests.
    let batch = cold_batch();
    let cold_count = batch
        .get("requests")
        .and_then(Json::as_array)
        .unwrap()
        .len();
    let cold_started = Instant::now();
    let cold_response = control.request(&batch).expect("cold batch");
    let cold_wall = cold_started.elapsed();
    assert_ok(&cold_response, "cold batch");
    for result in cold_response
        .get("results")
        .and_then(Json::as_array)
        .expect("cold results")
    {
        assert_ok(result, "cold batch item");
    }

    // Warm phase: closed-loop serving latency over the primed cache.
    let (latencies, wall) = drive(router.addr());
    let completed = latencies.len();
    let stats = control.stats().expect("router stats");
    assert_ok(&stats, "router stats");
    let shards = shards_in_use(&stats);
    let mean = latencies.iter().sum::<f64>() / completed.max(1) as f64;

    let mut failover = Json::Null;
    let mut survivors = servers;
    if probe_failover {
        // Kill one backend under the running fleet, then re-drive a
        // slice of the stream: every request must answer (the router
        // re-places the dead shard's graphs on the survivors).
        let victim = survivors.pop().expect("fleet has a backend to kill");
        stop_backend(victim);
        let probe_started = Instant::now();
        for i in 0..GRAPHS {
            let (kernel, graph, params) = mix_request(i);
            let response = control.run(kernel, &graph, &params).unwrap();
            assert_ok(&response, &format!("post-failover {kernel} on {graph}"));
        }
        let after = control.stats().expect("stats after failover");
        let router_block = after.get("router").expect("router counters");
        failover = Json::object([
            ("killed", Json::from(1usize)),
            (
                "probe_ms",
                Json::from(probe_started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "failovers",
                router_block.get("failovers").cloned().unwrap_or(Json::Null),
            ),
            (
                "graphs_replaced",
                router_block
                    .get("graphs_replaced")
                    .cloned()
                    .unwrap_or(Json::Null),
            ),
        ]);
    }

    router.shutdown();
    router.join();
    for server in survivors {
        stop_backend(server);
    }

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    eprintln!(
        "bench_router: {backends} backend(s): cold batch {cold_count} reqs in {:.0} ms \
         ({:.0} req/s), warm {completed}/{total} ok at {:.0} req/s, \
         p50 {:.2} ms, p99 {:.2} ms, {shards} shard(s) in use",
        cold_wall.as_secs_f64() * 1e3,
        cold_count as f64 / cold_wall.as_secs_f64(),
        completed as f64 / wall.as_secs_f64(),
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    Json::object([
        ("backends", Json::from(backends)),
        ("workers_per_backend", Json::from(2usize)),
        ("graphs", Json::from(GRAPHS)),
        ("shards_in_use", Json::from(shards)),
        (
            "cold_batch",
            Json::object([
                ("requests", Json::from(cold_count)),
                ("wall_ms", Json::from(cold_wall.as_secs_f64() * 1e3)),
                (
                    "throughput_rps",
                    Json::from(cold_count as f64 / cold_wall.as_secs_f64()),
                ),
            ]),
        ),
        (
            "warm_loop",
            Json::object([
                ("completed", Json::from(completed)),
                (
                    "throughput_rps",
                    Json::from(completed as f64 / wall.as_secs_f64()),
                ),
                ("wall_ms", Json::from(wall.as_secs_f64() * 1e3)),
                (
                    "latency_ms",
                    Json::object([
                        ("p50", Json::from(percentile(&latencies, 50.0))),
                        ("p90", Json::from(percentile(&latencies, 90.0))),
                        ("p99", Json::from(percentile(&latencies, 99.0))),
                        ("mean", Json::from(mean)),
                    ]),
                ),
            ]),
        ),
        ("failover", failover),
    ])
}

/// The standalone 1→4 scaling curve.
fn scaling_curve() -> Json {
    let graphs = graphs();
    let fleet_sizes = [1usize, 2, 4];
    let points: Vec<Json> = fleet_sizes
        .iter()
        .map(|&n| run_fleet(n, &graphs, n == 4))
        .collect();
    Json::object([
        ("bench", Json::from("router")),
        ("mode", Json::from("scaling-curve")),
        // The whole fleet shares this machine: cold-batch scaling is
        // bounded by the cores available, not just the fleet size.
        (
            "cpu_parallelism",
            Json::from(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        ),
        ("clients", Json::from(CLIENTS)),
        (
            "requests_per_point",
            Json::from(CLIENTS * REQUESTS_PER_CLIENT),
        ),
        ("fleets", Json::Array(points)),
    ])
}

/// CI smoke against an external `gms-router` (usually `--spawn 2`).
fn external_smoke(addr_text: &str) -> Json {
    let addr: std::net::SocketAddr = addr_text
        .parse()
        .expect("GMS_ROUTER_ADDR must be host:port");
    let mut control = Client::connect(addr).expect("dial external router");
    let health = control.health().expect("health");
    assert_ok(&health, "health");
    assert_eq!(
        health.get("role").and_then(Json::as_str),
        Some("router"),
        "GMS_ROUTER_ADDR must point at a router, got {}",
        health.render()
    );

    let graphs = graphs();
    load_all(&mut control, &graphs);

    // Singleton runs: each response names its serving shard.
    let mut served_by: Vec<String> = Vec::new();
    for i in 0..GRAPHS {
        let response = control.run("triangle-count", &graph_name(i), &[]).unwrap();
        assert_ok(&response, "routed run");
        let shard = response
            .get("shard")
            .and_then(Json::as_str)
            .expect("responses name their shard");
        if !served_by.iter().any(|s| s == shard) {
            served_by.push(shard.to_string());
        }
    }

    // Scatter-gather: one batch over every graph, answered per item
    // in request order.
    let batch = Json::object([
        ("op", Json::from("batch")),
        (
            "requests",
            Json::Array(
                (0..GRAPHS)
                    .map(|i| {
                        Json::object([
                            ("op", Json::from("run")),
                            ("kernel", Json::from("triangle-count")),
                            ("graph", Json::from(graph_name(i))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let sent = Instant::now();
    let response = control.request(&batch).expect("batch round trip");
    let batch_ms = sent.elapsed().as_secs_f64() * 1e3;
    assert_ok(&response, "batch");
    let results = response
        .get("results")
        .and_then(Json::as_array)
        .expect("batch results");
    assert_eq!(results.len(), GRAPHS, "one result per item, in order");
    for result in results {
        assert_ok(result, "batch item");
    }
    let batch_shards = response
        .get("shards")
        .and_then(Json::as_i64)
        .expect("batch reports shard fan-out");

    // Fleet stats: aggregates present and consistent with the
    // backend blocks.
    let stats = control.stats().expect("stats");
    assert_ok(&stats, "stats");
    let fleet = stats.get("fleet").expect("fleet aggregates");
    let healthy = fleet.get("healthy").and_then(Json::as_i64).unwrap_or(0);
    assert!(
        healthy >= 1,
        "fleet has healthy backends: {}",
        stats.render()
    );
    let completed: i64 = stats
        .get("backends")
        .and_then(Json::as_array)
        .map(|blocks| {
            blocks
                .iter()
                .filter_map(|b| {
                    b.get("server")
                        .and_then(|s| s.get("completed"))
                        .and_then(Json::as_i64)
                })
                .sum()
        })
        .unwrap_or(0);
    assert_eq!(
        fleet
            .get("server")
            .and_then(|s| s.get("completed"))
            .and_then(Json::as_i64),
        Some(completed),
        "fleet counters are the sum of the shards"
    );

    if std::env::var("GMS_ROUTER_SHUTDOWN").as_deref() == Ok("1") {
        let ack = control.shutdown().expect("shutdown ack");
        assert_eq!(
            ack.get("status").and_then(Json::as_str),
            Some("shutting-down"),
            "router acknowledges shutdown"
        );
    }
    eprintln!(
        "bench_router: external smoke ok — {} shard(s) served runs, batch over {} shard(s) in {:.1} ms",
        served_by.len(),
        batch_shards,
        batch_ms,
    );
    Json::object([
        ("bench", Json::from("router")),
        ("mode", Json::from("external-smoke")),
        ("router", Json::from(addr_text)),
        ("backends_healthy", Json::from(healthy)),
        ("graphs", Json::from(GRAPHS)),
        ("run_shards", Json::from(served_by.len())),
        ("batch_shards", Json::from(batch_shards)),
        ("batch_ms", Json::from(batch_ms)),
        ("fleet_completed", Json::from(completed)),
    ])
}

fn main() {
    let report = match std::env::var("GMS_ROUTER_ADDR") {
        Ok(addr) => external_smoke(&addr),
        Err(_) => scaling_curve(),
    };
    let rendered = report.render();
    std::fs::write("BENCH_router.json", format!("{rendered}\n")).expect("write BENCH_router.json");
    println!("{rendered}");
}
