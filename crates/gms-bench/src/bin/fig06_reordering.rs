//! Figure 6: reordering analysis — DGR vs DEG vs ADG(ε ∈ {0.5, 0.1,
//! 0.01}) on a sparse skewed ("Youtube-like") graph: the reordering
//! time itself plus its effect on a downstream Eppstein-style
//! Bron–Kerbosch (BK-E = BK with the precomputed order). Paper shape:
//! ADG reorders faster than exact DGR (>2×) while reducing the BK
//! runtime comparably; smaller ε gives slightly better downstream
//! time at slightly higher reorder cost.

use gms_bench::{print_csv, scale_from_env};
use gms_core::RoaringSet;
use gms_order::OrderingKind;
use gms_pattern::bk::SubgraphMode;
use gms_pattern::{bron_kerbosch, BkConfig};
use std::time::Instant;

fn main() {
    let s = scale_from_env() as u32;
    let graph = gms_gen::kronecker_default(12 + (s - 1).min(3), 4, 66); // sparse + skewed
    let orderings = [
        ("DGR", OrderingKind::Degeneracy),
        ("DEG", OrderingKind::Degree),
        ("ADG-0.5", OrderingKind::ApproxDegeneracy(0.5)),
        ("ADG-0.1", OrderingKind::ApproxDegeneracy(0.1)),
        ("ADG-0.01", OrderingKind::ApproxDegeneracy(0.01)),
    ];
    let mut rows = Vec::new();
    for (label, ordering) in orderings {
        // Time the reordering alone (the left bars of Fig. 6)...
        let t = Instant::now();
        let rank = ordering.compute(&graph);
        let reorder_time = t.elapsed();
        std::hint::black_box(&rank);
        // ...and the downstream BK-E run using it (the right bars).
        let outcome = bron_kerbosch::<RoaringSet>(
            &graph,
            &BkConfig {
                ordering,
                subgraph: SubgraphMode::None,
                collect: false,
                ..BkConfig::default()
            },
        );
        rows.push(format!(
            "{label},{:.4},{:.4},{}",
            reorder_time.as_secs_f64(),
            outcome.mine.as_secs_f64(),
            outcome.clique_count,
        ));
    }
    print_csv("ordering,reorder_s,bk_mine_s,maximal_cliques", &rows);
}
