//! Figure 7: subgraph isomorphism thread scaling — the baseline
//! static-split driver vs the GMS optimizations (work stealing,
//! galloping/"SIMD" membership, candidate precompute) on a labeled
//! Erdős–Rényi target (the §8.5 dataset, scaled down; the original is
//! n=10000, p=0.2 with induced queries). Paper shape: runtime falls
//! with threads; each optimization layer lowers the curve, with
//! stealing mattering most at high thread counts and the SIMD +
//! precompute layers giving constant-factor gains (≈1.1× and beyond).

use gms_bench::print_csv;
use gms_match::{count_embeddings_parallel, IsoMode, IsoOptions, LabeledGraph, ParallelIsoConfig};
use std::time::Instant;

fn main() {
    let scale = gms_bench::scale_from_env();
    let target = LabeledGraph::random_labels(gms_gen::gnp(400 * scale, 0.2, 5), 4, 5);
    let query = target.induced(&[3, 57, 101, 200, 311, 17]);

    let variants: [(&str, bool, bool, bool); 4] = [
        // (label, stealing, galloping, precompute)
        ("split", false, false, false),
        ("+stealing", true, false, false),
        ("+simd", true, true, false),
        ("+precompute", true, true, true),
    ];
    let mut rows = Vec::new();
    let mut expected = None;
    for threads in [1usize, 2, 4, 8] {
        for (label, stealing, galloping, precompute) in variants {
            let config = ParallelIsoConfig {
                threads,
                work_stealing: stealing,
                options: IsoOptions {
                    mode: IsoMode::Induced,
                    precompute,
                    galloping,
                    limit: u64::MAX,
                },
            };
            let t = Instant::now();
            let found = count_embeddings_parallel(&query, &target, &config);
            let elapsed = t.elapsed();
            match expected {
                None => expected = Some(found),
                Some(e) => assert_eq!(e, found, "configs must agree"),
            }
            rows.push(format!(
                "{threads},{label},{found},{:.4}",
                elapsed.as_secs_f64()
            ));
        }
    }
    print_csv("threads,variant,embeddings,time_s", &rows);
}
