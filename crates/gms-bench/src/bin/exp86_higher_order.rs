//! §8.6: subtleties of higher-order structure. Two graphs with
//! near-identical n, m, sparsity and degree profile — one with planted
//! true cliques ("Flickr-photos-like"), one with equally dense but
//! non-clique clusters ("Livemocha-like") — differ by orders of
//! magnitude in 4-clique counts, and that difference, not n/m/degree,
//! drives 4-clique mining time. Paper numbers: 9.58B vs 4.36M
//! 4-cliques on graphs of matched size.

use gms_bench::{print_csv, scale_from_env};

use gms_pattern::{k_clique_count, KcConfig};
use gms_platform::GraphStats;

fn main() {
    let s = scale_from_env();
    let n = 1_500 * s;
    let clique_rich = gms_gen::planted_cliques(n, 0.004, 12, 12, 103).0;
    let cluster_rich = gms_gen::planted_dense_groups(&gms_gen::PlantedConfig {
        n,
        background_p: 0.004,
        sizes: vec![17; 12], // matched edge budget at density 0.5
        density: 0.5,
        seed: 104,
    })
    .0;

    let mut rows = Vec::new();
    for (name, graph) in [
        ("clique-rich", &clique_rich),
        ("cluster-rich", &cluster_rich),
    ] {
        let stats = GraphStats::compute(name, graph);
        let outcome = k_clique_count(graph, 4, &KcConfig::default());
        rows.push(format!(
            "{name},{},{},{:.2},{},{},{},{:.4}",
            stats.n,
            stats.m,
            stats.sparsity,
            stats.max_degree,
            stats.triangles,
            outcome.count,
            (outcome.preprocess + outcome.mine).as_secs_f64(),
        ));
    }
    print_csv(
        "graph,n,m,m_over_n,max_degree,triangles,four_cliques,kclique_time_s",
        &rows,
    );

    let c1 = k_clique_count(&clique_rich, 4, &KcConfig::default()).count;
    let c2 = k_clique_count(&cluster_rich, 4, &KcConfig::default()).count;
    println!(
        "# 4-clique ratio (clique-rich / cluster-rich): {:.1}x",
        c1 as f64 / c2.max(1) as f64
    );
    assert!(
        c1 > 10 * c2,
        "higher-order contrast must be order-of-magnitude"
    );
}
