//! Figure 8c: memory consumption of the set-centric graph
//! representations — final representation sizes plus the peak
//! transient during construction, for SortedSet / RoaringSet /
//! HashSet, against a Das-et-al-style baseline (adjacency matrices of
//! per-vertex subgraphs, modeled as the dense-bitset build). Paper
//! shape: final sizes are similar across layouts; peak construction
//! memory is visibly highest for RoaringSet, and the Das baseline's
//! peak tops everything.

use gms_bench::{gallery, print_csv, scale_from_env};
use gms_core::{CsrGraph, DenseBitSet, HashVertexSet, RoaringSet, SetGraph, SortedVecSet};

fn measure(graph: &CsrGraph) -> Vec<(&'static str, usize, usize)> {
    // Peak ≈ CSR (still alive during conversion) + final size; the
    // roaring build additionally materializes per-chunk staging
    // buffers, modeled by its container overhead.
    let csr_bytes = graph.heap_bytes();
    let sorted: SetGraph<SortedVecSet> = SetGraph::from_csr(graph);
    let roaring: SetGraph<RoaringSet> = SetGraph::from_csr(graph);
    let hash: SetGraph<HashVertexSet> = SetGraph::from_csr(graph);
    let dense: SetGraph<DenseBitSet> = SetGraph::from_csr(graph);
    vec![
        (
            "SortedSet",
            sorted.heap_bytes(),
            csr_bytes + sorted.heap_bytes(),
        ),
        (
            "RoaringSet",
            roaring.heap_bytes(),
            csr_bytes + 2 * roaring.heap_bytes(),
        ),
        ("HashSet", hash.heap_bytes(), csr_bytes + hash.heap_bytes()),
        (
            "DasStyle(dense)",
            dense.heap_bytes(),
            csr_bytes + dense.heap_bytes(),
        ),
    ]
}

fn main() {
    let datasets = gallery(scale_from_env());
    let selected = ["social-kron", "clique-rich", "road-grid"];
    let mut rows = Vec::new();
    for dataset in datasets.iter().filter(|d| selected.contains(&d.name)) {
        for (repr, final_bytes, peak_bytes) in measure(&dataset.graph) {
            rows.push(format!(
                "{},{repr},{final_bytes},{peak_bytes}",
                dataset.name
            ));
        }
    }
    print_csv("graph,representation,final_bytes,peak_bytes", &rows);
}
