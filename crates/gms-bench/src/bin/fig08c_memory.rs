//! Figure 8c: memory consumption of the set-centric graph
//! representations — final representation sizes plus the peak
//! transient during construction, for SortedSet / RoaringSet /
//! HashSet, against a Das-et-al-style baseline (adjacency matrices of
//! per-vertex subgraphs, modeled as the dense-bitset build). Paper
//! shape: final sizes are similar across layouts; peak construction
//! memory is visibly highest for RoaringSet, and the Das baseline's
//! peak tops everything.
//!
//! Two extra rows per graph report the compressed serving backend:
//! `Gap(compressed)` is the gap+varint [`CompressedCsr`] in the
//! original vertex order, `GapReorder(compressed)` the same after a
//! BFS locality reordering — the representations the platform can now
//! hold resident instead of the raw CSR, sitting well below every
//! set-centric layout.

use gms_bench::{gallery, print_csv, scale_from_env};
use gms_core::{CsrGraph, DenseBitSet, HashVertexSet, RoaringSet, SetGraph, SortedVecSet};
use gms_graph::CompressedCsr;

fn measure(graph: &CsrGraph) -> Vec<(&'static str, usize, usize)> {
    // Peak ≈ CSR (still alive during conversion) + final size; the
    // roaring build additionally materializes per-chunk staging
    // buffers, modeled by its container overhead.
    let csr_bytes = graph.heap_bytes();
    let sorted: SetGraph<SortedVecSet> = SetGraph::from_csr(graph);
    let roaring: SetGraph<RoaringSet> = SetGraph::from_csr(graph);
    let hash: SetGraph<HashVertexSet> = SetGraph::from_csr(graph);
    let dense: SetGraph<DenseBitSet> = SetGraph::from_csr(graph);
    let gap = CompressedCsr::from_csr(graph);
    let rank = gms_order::bfs_order(graph, 0);
    let reordered = CompressedCsr::from_csr_ordered(graph, &rank);
    vec![
        (
            "SortedSet",
            sorted.heap_bytes(),
            csr_bytes + sorted.heap_bytes(),
        ),
        (
            "RoaringSet",
            roaring.heap_bytes(),
            csr_bytes + 2 * roaring.heap_bytes(),
        ),
        ("HashSet", hash.heap_bytes(), csr_bytes + hash.heap_bytes()),
        (
            "DasStyle(dense)",
            dense.heap_bytes(),
            csr_bytes + dense.heap_bytes(),
        ),
        (
            "Gap(compressed)",
            gap.heap_bytes(),
            csr_bytes + gap.heap_bytes(),
        ),
        (
            "GapReorder(compressed)",
            reordered.heap_bytes(),
            // The reordering rank (one NodeId per vertex) is alive
            // while the recompressed payload is built.
            csr_bytes + rank.len() * std::mem::size_of::<u32>() + reordered.heap_bytes(),
        ),
    ]
}

fn main() {
    let datasets = gallery(scale_from_env());
    let selected = ["social-kron", "clique-rich", "road-grid"];
    let mut rows = Vec::new();
    for dataset in datasets.iter().filter(|d| selected.contains(&d.name)) {
        for (repr, final_bytes, peak_bytes) in measure(&dataset.graph) {
            rows.push(format!(
                "{},{repr},{final_bytes},{peak_bytes}",
                dataset.name
            ));
        }
    }
    print_csv("graph,representation,final_bytes,peak_bytes", &rows);
}
