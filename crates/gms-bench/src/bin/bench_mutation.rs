//! Dynamic-graph mutation smoke and throughput probe: drives a
//! sequence of batched edge mutations through [`Session::mutate_edges`]
//! — CSR patching plus delta-aware cache migration — and prices the
//! payoff: after every batch, the triangle count is served from an
//! incrementally refreshed cache entry (a touched-wedge recount paid
//! during migration) and compared, for both correctness and cost,
//! against a from-scratch recount of the same content. The binary
//! asserts the oracle (mutated answers equal rebuilt answers, the
//! `order-random` entry survives every batch verbatim) and exits
//! nonzero on any mismatch. Writes `BENCH_mutation.json`.
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_mutation
//! ```

use gms_bench::scale_from_env;
use gms_core::{Graph, NodeId};
use gms_platform::kernel::{Params, Session};
use std::time::Instant;

/// Deterministic pseudo-random stream (splitmix64).
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn main() {
    let s = scale_from_env();
    let graph = gms_gen::planted_cliques(600 * s, 0.006, 4, 8, 42).0;
    let n = graph.num_vertices();
    let base_edges = graph.num_arcs() / 2;

    let mut session = Session::new();
    let handle = session.add_graph(graph);
    let params = Params::new();
    // Warm three entries with three delta sensitivities: refreshed
    // incrementally, survived verbatim, invalidated to recompute.
    session
        .run("triangle-count", handle, &params)
        .expect("warm triangle-count");
    let order_before = session
        .run("order-random", handle, &params)
        .expect("warm order-random");
    session.run("k-core", handle, &params).expect("warm k-core");

    let rounds = 8usize;
    let batch = 16usize;
    let mut state = 0xbeef_u64;
    let mut rows = Vec::new();
    let mut survived_total = 0usize;
    let mut refreshed_total = 0usize;
    let mut invalidated_total = 0usize;
    for round in 0..rounds {
        // Half removals sampled from the live edge set, half random
        // additions — the steady churn of a dynamic-graph workload.
        let current = session.graph(handle).expect("resident CSR").clone();
        let live: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|v| {
                current
                    .neighbors(v)
                    .filter(move |&u| u > v)
                    .map(move |u| (v, u))
            })
            .collect();
        let mut remove = Vec::new();
        let mut add = Vec::new();
        for _ in 0..batch / 2 {
            remove.push(live[(next_u64(&mut state) % live.len() as u64) as usize]);
            let u = (next_u64(&mut state) % n as u64) as NodeId;
            let v = (next_u64(&mut state) % n as u64) as NodeId;
            if u != v {
                add.push((u.min(v), u.max(v)));
            }
        }

        let t = Instant::now();
        let outcome = session
            .mutate_edges(handle, &add, &remove)
            .expect("mutation applies");
        let mutate_ms = t.elapsed().as_secs_f64() * 1e3;
        survived_total += outcome.cache.survived;
        refreshed_total += outcome.cache.refreshed;
        invalidated_total += outcome.cache.invalidated;

        // The migrated entry serves the post-mutation count...
        let t = Instant::now();
        let triangles = session
            .run("triangle-count", handle, &params)
            .expect("post-mutation run");
        let serve_ms = t.elapsed().as_secs_f64() * 1e3;
        // ...and must equal a from-scratch recount of the content.
        let rebuilt = session.graph(handle).expect("resident CSR");
        let t = Instant::now();
        let expected = gms_pattern::triangle_count_rank_merge(rebuilt);
        let recompute_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            triangles.patterns, expected,
            "round {round}: incremental maintenance diverged from rebuild"
        );
        assert!(
            triangles.cached,
            "round {round}: the refreshed entry must be a cache hit"
        );

        rows.push(format!(
            "{{\"round\":{round},\"added\":{},\"removed\":{},\"touched\":{},\"version\":{},\"mutate_ms\":{mutate_ms:.3},\"survived\":{},\"refreshed\":{},\"invalidated\":{},\"cached_serve_ms\":{serve_ms:.3},\"full_recompute_ms\":{recompute_ms:.3}}}",
            outcome.added,
            outcome.removed,
            outcome.touched,
            outcome.version,
            outcome.cache.survived,
            outcome.cache.refreshed,
            outcome.cache.invalidated,
        ));
    }

    // The order-random entry is a pure function of the vertex count
    // and seed: every batch must have migrated it verbatim, and it
    // must still be served without kernel time.
    let order_after = session
        .run("order-random", handle, &params)
        .expect("order-random after churn");
    assert!(order_after.cached, "the insensitive entry must survive");
    assert_eq!(order_after.patterns, order_before.patterns);
    assert_eq!(survived_total, rounds, "one survivor per batch");
    assert!(refreshed_total >= 1, "triangle refresh never ran");

    let lineage = session.graph_lineage(handle).expect("lineage");
    let cache = session.cache_stats();
    let json = format!(
        "{{\"bench\":\"mutation\",\"vertices\":{n},\"base_edges\":{base_edges},\"rounds\":{rounds},\"batch\":{batch},\"version\":{},\"rows\":[\n  {}\n],\n\"totals\":{{\"survived\":{survived_total},\"refreshed\":{refreshed_total},\"invalidated\":{invalidated_total},\"migrated\":{},\"stale_drops\":{}}}}}\n",
        lineage.version,
        rows.join(",\n  "),
        cache.migrated,
        cache.stale_drops,
    );
    print!("{json}");
    std::fs::write("BENCH_mutation.json", &json).expect("write BENCH_mutation.json");
    eprintln!(
        "{rounds} batches of {batch} on n={n} m={base_edges} | survived={survived_total} refreshed={refreshed_total} invalidated={invalidated_total}"
    );
}
