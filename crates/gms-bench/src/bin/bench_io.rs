//! Dataset I/O throughput probe and format smoke: generates a
//! Kronecker graph, round-trips it through **every** on-disk format
//! (SNAP edge list, METIS, `.gcsr` snapshot via both the buffered and
//! the mmap path), asserts all loads produce the same CSR
//! fingerprint, and pushes the snapshot through a `Session` kernel
//! run so the cache-across-formats contract is exercised end to end.
//! CI runs it in release: a format regression fails the pipeline.
//!
//! Output: one `{format, bytes, write_ms, read_ms, read_mb_s,
//! edges_per_s}` JSON row per format, then a summary line.
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_io
//! ```

use gms_core::{CsrGraph, Graph};
use gms_graph::io;
use gms_platform::kernel::{fingerprint, Params, Session};
use std::path::Path;
use std::time::Instant;

struct Row {
    format: &'static str,
    bytes: u64,
    write_ms: f64,
    read_ms: f64,
    edges: usize,
}

impl Row {
    fn json(&self) -> String {
        let secs = self.read_ms / 1e3;
        format!(
            "{{\"format\":\"{}\",\"bytes\":{},\"write_ms\":{:.3},\"read_ms\":{:.3},\
             \"read_mb_s\":{:.1},\"edges_per_s\":{:.0}}}",
            self.format,
            self.bytes,
            self.write_ms,
            self.read_ms,
            self.bytes as f64 / 1e6 / secs,
            self.edges as f64 / secs,
        )
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let value = f();
    (value, t.elapsed().as_secs_f64() * 1e3)
}

fn roundtrip(
    format: &'static str,
    graph: &CsrGraph,
    path: &Path,
    write: impl FnOnce(&CsrGraph, &Path),
    read: impl FnOnce(&Path) -> CsrGraph,
) -> Row {
    let ((), write_ms) = timed(|| write(graph, path));
    let bytes = std::fs::metadata(path).expect("written file").len();
    let (reloaded, read_ms) = timed(|| read(path));
    assert_eq!(
        fingerprint(&reloaded),
        fingerprint(graph),
        "{format}: reloaded CSR fingerprint differs from the source graph"
    );
    Row {
        format,
        bytes,
        write_ms,
        read_ms,
        edges: graph.num_edges_undirected(),
    }
}

fn main() {
    let s = gms_bench::scale_from_env();
    let levels = 12 + s.ilog2();
    let graph = gms_gen::kronecker_default(levels, 8, 21);
    eprintln!(
        "graph: 2^{levels} vertices ({}), {} edges",
        graph.num_vertices(),
        graph.num_edges_undirected()
    );

    let dir = std::env::temp_dir().join(format!("gms_bench_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let rows = [
        roundtrip(
            "edge-list",
            &graph,
            &dir.join("g.el"),
            |g, p| {
                let mut w = std::io::BufWriter::new(std::fs::File::create(p).unwrap());
                io::write_edge_list(g, &mut w).unwrap();
            },
            |p| io::load_undirected(p).unwrap(),
        ),
        roundtrip(
            "metis",
            &graph,
            &dir.join("g.metis"),
            |g, p| {
                let mut w = std::io::BufWriter::new(std::fs::File::create(p).unwrap());
                io::write_metis(g, &mut w).unwrap();
            },
            |p| io::load_metis(p).unwrap(),
        ),
        roundtrip(
            "gcsr-read",
            &graph,
            &dir.join("g.gcsr"),
            |g, p| io::save_snapshot(g, p).unwrap(),
            |p| io::read_snapshot(&std::fs::read(p).unwrap()).unwrap(),
        ),
        roundtrip(
            "gcsr-mmap",
            &graph,
            &dir.join("g_mmap.gcsr"),
            |g, p| io::save_snapshot(g, p).unwrap(),
            |p| io::load_snapshot(p).unwrap(),
        ),
    ];

    // Service-layer smoke: snapshot → mmap load → kernel run, then
    // the same graph as an edge list must be served from the cache.
    let mut session = Session::new();
    let from_snapshot = session.load_snapshot(dir.join("g.gcsr")).unwrap();
    let miss = session
        .run("triangle-count", from_snapshot, &Params::new())
        .unwrap();
    let from_text = session.load_edge_list(dir.join("g.el")).unwrap();
    let hit = session
        .run("triangle-count", from_text, &Params::new())
        .unwrap();
    assert!(
        hit.cached && hit.same_result(&miss),
        "edge-list reload must hit the snapshot-loaded cache line"
    );

    println!(
        "{{\"bench\":\"io\",\"rows\":[\n  {}\n]}}",
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n  ")
    );
    eprintln!(
        "all formats fingerprint-identical; triangle-count across formats cached ({} patterns)",
        miss.patterns
    );

    std::fs::remove_dir_all(&dir).ok();
}
