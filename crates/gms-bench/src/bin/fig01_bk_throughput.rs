//! Figure 1: algorithmic throughput (maximal cliques mined per
//! second) of the Bron–Kerbosch variants on four graphs of different
//! origins. Paper shape: every GMS variant beats BK-DAS; the margin
//! grows with clique density (up to >9×).

use gms_bench::{fig1_subset, print_csv, scale_from_env};
use gms_pattern::BkVariant;

fn main() {
    let datasets = fig1_subset(scale_from_env());
    let mut rows = Vec::new();
    for dataset in &datasets {
        for variant in BkVariant::ALL {
            let outcome = variant.run(&dataset.graph);
            rows.push(format!(
                "{},{},{},{:.0}",
                dataset.name,
                variant.label(),
                outcome.clique_count,
                outcome.throughput()
            ));
        }
    }
    print_csv("graph,variant,maximal_cliques,cliques_per_second", &rows);
}
