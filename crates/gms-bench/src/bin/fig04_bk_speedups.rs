//! Figure 4: runtimes and speedups over BK-DAS of every Bron–Kerbosch
//! variant across the dataset gallery, with the preprocessing
//! (reordering) fraction. Paper shape: GMS variants consistently beat
//! BK-DAS (often >50%, up to >9×); DGR shows a visibly larger
//! preprocessing fraction than ADG/DEG.

use gms_bench::{gallery, print_csv, scale_from_env};
use gms_pattern::BkVariant;

fn main() {
    let datasets = gallery(scale_from_env());
    let mut rows = Vec::new();
    for dataset in &datasets {
        let baseline = BkVariant::Das.run(&dataset.graph);
        let base_total = baseline.preprocess + baseline.mine;
        for variant in BkVariant::ALL {
            let outcome = variant.run(&dataset.graph);
            let total = outcome.preprocess + outcome.mine;
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.3},{:.2}",
                dataset.name,
                variant.label(),
                outcome.preprocess.as_secs_f64(),
                outcome.mine.as_secs_f64(),
                outcome.preprocess.as_secs_f64() / total.as_secs_f64().max(1e-12),
                base_total.as_secs_f64() / total.as_secs_f64().max(1e-12),
            ));
        }
    }
    print_csv(
        "graph,variant,preprocess_s,mine_s,reorder_fraction,speedup_vs_das",
        &rows,
    );
}
